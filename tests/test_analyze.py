"""Static labeling/DRF analyzer (repro.analyze).

Three layers of assurance:

* the 12-app corpus is properly labeled (zero findings) and the
  false-sharing predictor produces sane per-granularity cells;
* a planted-bug corpus of deliberately mislabeled micro-apps, each
  caught with the expected ANA code and both access sites named --
  the gate is proven able to fail;
* the CLI/report/concordance plumbing round-trips.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analyze.api import analyze_app, analyze_corpus
from repro.analyze.canary import MislabeledStencil, canary_analysis
from repro.analyze.footprint import IntervalSet, explore
from repro.apps.base import Application

NPROCS = 4


def codes(analysis):
    return sorted({f.code for f in analysis.findings})


# ======================================================================
# planted-bug corpus: each mislabeling caught with the expected code
# ======================================================================
class _PlantedBase(Application):
    tiny_params: dict = {}
    default_params: dict = {}
    full_params: dict = {}

    def _configure(self) -> None:
        pass

    def sequential_time_us(self) -> float:
        return 1.0

    def setup(self, machine) -> None:
        self.data = machine.alloc(8192, "data")


class MissingRelease(_PlantedBase):
    """Rank 0 exits its critical section without releasing."""

    name = "planted-missing-release"

    def program(self, dsm, rank, nprocs):
        yield from dsm.barrier(0)
        yield from dsm.acquire(7)
        yield from dsm.touch_write(self.data.addr(0), 64, pattern=1)
        if rank != 0:
            yield from dsm.release(7)


class PhaseSkew(_PlantedBase):
    """The last rank skips a barrier the others wait at."""

    name = "planted-phase-skew"

    def program(self, dsm, rank, nprocs):
        yield from dsm.barrier(0)
        if rank < nprocs - 1:
            yield from dsm.barrier(1)
        yield from dsm.touch_write(
            self.data.addr(rank * 64), 64, pattern=1)


class WrongLock(_PlantedBase):
    """Two lock 'domains' both guard the same byte range."""

    name = "planted-wrong-lock"

    def program(self, dsm, rank, nprocs):
        yield from dsm.barrier(0)
        if rank % 2 == 0:
            yield from dsm.acquire(10)
            yield from dsm.touch_write(self.data.addr(0), 256, pattern=1)
            yield from dsm.release(10)
        else:
            yield from dsm.acquire(11)
            yield from dsm.touch_write(self.data.addr(0), 256, pattern=2)
            yield from dsm.release(11)
        yield from dsm.barrier(1)


class StaleDisjoint(_PlantedBase):
    """An annotation left behind after the sharing pattern changed."""

    name = "planted-stale-disjoint"

    def program(self, dsm, rank, nprocs):
        yield from dsm.barrier(0)
        with dsm.assume_disjoint("leftover from an old sharing pattern"):
            yield from dsm.touch_write(
                self.data.addr(rank * 1024), 64, pattern=1)


class OverbroadDisjoint(_PlantedBase):
    """The scope covers a private access that needs no exemption."""

    name = "planted-overbroad-disjoint"

    def program(self, dsm, rank, nprocs):
        yield from dsm.barrier(0)
        with dsm.assume_disjoint("covers more than it must"):
            yield from dsm.touch_write(self.data.addr(0), 64, pattern=1)
            yield from dsm.touch_write(
                self.data.addr(2048 + rank * 256), 64, pattern=2)


class TestPlantedBugs:
    def test_missing_barrier_canary_is_caught_with_both_sites(self):
        a = canary_analysis(NPROCS)
        assert not a.ok
        assert codes(a) == ["ANA101"]
        (f,) = a.findings
        sites = f.extra["sites"]
        assert len(sites) == 2
        src = Path(MislabeledStencil.program.__code__.co_filename)
        lines = src.read_text().splitlines()
        read_line = next(i for i, ln in enumerate(lines, 1)
                         if "touch_read(self.grid.addr((lo - 1)" in ln)
        write_line = next(i for i, ln in enumerate(lines, 1)
                          if "yield from dsm.touch_write(" in ln)
        assert {s["line"] for s in sites} == {read_line, write_line}
        assert {s["kind"] for s in sites} == {"read", "write"}
        # the rendered finding names both sites too
        text = str(f)
        assert f"canary.py:{read_line}" in text
        assert f"canary.py:{write_line}" in text

    def test_missing_release_is_ana106(self):
        a = analyze_app(MissingRelease, nprocs=NPROCS)
        assert codes(a) == ["ANA106"]
        msgs = " | ".join(f.message for f in a.findings)
        assert "never released" in msgs or "still held" in msgs

    def test_phase_skew_is_ana102(self):
        a = analyze_app(PhaseSkew, nprocs=NPROCS)
        assert "ANA102" in codes(a)
        # both the CFG (rank-dependent barrier) and the exploration
        # (parked ranks) see it
        msgs = " | ".join(f.message for f in a.findings)
        assert "rank-dependent" in msgs
        assert "phase skew" in msgs

    def test_wrong_lock_is_ana103_with_both_sites(self):
        a = analyze_app(WrongLock, nprocs=NPROCS)
        assert codes(a) == ["ANA103"]
        f = a.findings[0]
        assert "DIFFERENT locks" in f.message
        sites = f.extra["sites"]
        assert len(sites) == 2
        assert sites[0]["line"] != sites[1]["line"]
        assert a.lock_protected_pairs > 0  # same-lock pairs stay clean

    def test_stale_disjoint_is_ana104(self):
        a = analyze_app(StaleDisjoint, nprocs=NPROCS)
        assert codes(a) == ["ANA104"]
        assert "unnecessary" in a.findings[0].message

    def test_overbroad_disjoint_is_ana105(self):
        a = analyze_app(OverbroadDisjoint, nprocs=NPROCS)
        assert codes(a) == ["ANA105"]
        (f,) = a.findings
        # the idle (never-conflicting) site is listed in the detail
        assert len(f.detail) == 1
        assert a.exempted_pairs > 0  # the contended site did need it


# ======================================================================
# the real corpus is clean
# ======================================================================
class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return analyze_corpus()

    def test_all_twelve_apps_properly_labeled(self, corpus):
        assert len(corpus.apps) == 12
        bad = {a.name: [str(f) for f in a.findings]
               for a in corpus.apps if not a.ok}
        assert corpus.ok, bad

    def test_no_suppressions_needed(self, corpus):
        assert all(not a.suppressed for a in corpus.apps)

    def test_barnes_family_analyzed_in_both_modes(self, corpus):
        by_name = {a.name: a for a in corpus.apps}
        for name in ("barnes-original", "barnes-parttree", "barnes-spatial"):
            assert [m.lrc_mode for m in by_name[name].modes] == [False, True]
        assert [m.lrc_mode for m in by_name["lu"].modes] == [False]

    def test_annotations_all_justified(self, corpus):
        """Every assume_disjoint in the corpus exempts real pairs
        (no ANA104/ANA105 -- checked implicitly by ok, asserted
        explicitly here)."""
        by_name = {a.name: a for a in corpus.apps}
        for name in ("ocean-original", "ocean-rowwise", "water-nsquared",
                     "water-spatial"):
            assert by_name[name].exempted_pairs > 0, name

    def test_false_sharing_prediction_sanity(self, corpus):
        fs = {a.name: a.false_sharing for a in corpus.apps}
        # lu: block-row partitioning is page-aligned; false sharing
        # appears only when blocks outgrow the 4 KB pages
        for g in (64, 256, 1024):
            assert fs["lu"][g]["bytes"] == 0
        assert fs["lu"][4096]["bytes"] > 0
        # fft: transpose reads are ordered by barriers on whole-row
        # ranges; nothing to false-share at any granularity
        assert all(v["bytes"] == 0 for v in fs["fft"].values())
        # water-spatial: fine-grained cells fragment badly
        assert fs["water-spatial"][4096]["bytes"] > 0
        # ranking is sorted worst-first
        ranked = corpus.ranking
        assert all(ranked[i]["bytes"] >= ranked[i + 1]["bytes"]
                   for i in range(len(ranked) - 1))


# ======================================================================
# noqa suppression of ANA findings
# ======================================================================
NOQA_APP = '''\
from repro.apps.base import Application


class NoqaApp(Application):
    name = "planted-noqa"
    tiny_params = {}

    def _configure(self):
        pass

    def sequential_time_us(self):
        return 1.0

    def setup(self, machine):
        self.data = machine.alloc(4096, "data")

    def program(self, dsm, rank, nprocs):
        yield from dsm.barrier(0)
        yield from dsm.touch_write(self.data.addr(0), 64, pattern=1)  # noqa: ANA101
'''


class TestNoqa:
    def test_noqa_moves_finding_to_suppressed(self, tmp_path):
        import importlib.util

        path = tmp_path / "noqa_app.py"
        path.write_text(NOQA_APP)
        spec = importlib.util.spec_from_file_location("noqa_app", path)
        mod = importlib.util.module_from_spec(spec)
        import sys

        sys.modules["noqa_app"] = mod
        try:
            spec.loader.exec_module(mod)
            a = analyze_app(mod.NoqaApp, nprocs=NPROCS)
        finally:
            del sys.modules["noqa_app"]
        assert a.ok
        assert [f.code for f in a.suppressed] == ["ANA101"]


# ======================================================================
# footprint primitives
# ======================================================================
class TestIntervalSet:
    def test_merge_and_count(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        s.add(5, 25)  # bridges both
        assert s.intervals() == [(0, 30)]
        assert s.nbytes == 30

    def test_intersect(self):
        a, b = IntervalSet(), IntervalSet()
        a.add(0, 100)
        b.add(50, 150)
        b.add(200, 300)
        assert a.intersect(b) == [(50, 100)]

    def test_blocks(self):
        s = IntervalSet()
        s.add(100, 300)
        assert s.blocks(256) == frozenset({0, 1})


class TestExploration:
    def test_canary_exploration_is_structurally_clean(self):
        # the canary's bug is a labeling bug, not a structural one
        e = explore(MislabeledStencil(scale="tiny"), NPROCS)
        assert not e.stalls and not e.lock_errors and not e.crashes
        assert e.n_ops > 0

    def test_missing_release_stalls_other_ranks(self):
        e = explore(MissingRelease(scale="tiny"), NPROCS)
        assert [s.kind for s in e.stalls] == ["lock"] * (NPROCS - 1)
        assert any("still held" in err.message for err in e.lock_errors)


# ======================================================================
# concordance
# ======================================================================
class TestConcordance:
    def test_judge_verdicts(self):
        from repro.analyze.concordance import CellConcordance, _judge

        def cell(**kw):
            base = dict(app="x", protocol="hlrc", granularity=1024,
                        static_findings=0, static_sites=set(),
                        dynamic_races=0, dynamic_race_sites=set(),
                        dynamic_false_sharing=0, predicted_fs_bytes=0)
            base.update(kw)
            c = CellConcordance(**base)
            _judge(c)
            return c

        assert cell().verdict == "concordant"
        assert cell(static_findings=1).verdict == "static_extra"
        assert cell(dynamic_races=1,
                    dynamic_race_sites={"a.py:1"}).verdict == "static_miss"
        both = cell(static_findings=1, static_sites={"a.py:1", "a.py:2"},
                    dynamic_races=1, dynamic_race_sites={"a.py:1"})
        assert both.verdict == "concordant"

    def test_lu_cell_concordant(self):
        from repro.analyze.concordance import run_concordance

        res = run_concordance(["lu"], protocols=("hlrc",),
                              granularities=(1024,), nprocs=NPROCS)
        assert res.ok
        (c,) = res.cells
        assert c.verdict == "concordant"
        assert c.dynamic_races == 0 and c.static_findings == 0
        d = res.to_dict()
        assert d["ok"] and d["verdicts"] == {"concordant": 1}


# ======================================================================
# CLI + report plumbing
# ======================================================================
class TestCli:
    def test_analyze_corpus_subset_clean(self, tmp_path, capsys):
        from repro.harness.cli import main

        out_json = tmp_path / "analysis.json"
        events = tmp_path / "events.jsonl"
        rc = main(["analyze", "--apps", "lu,fft",
                   "--json", str(out_json), "--events", str(events)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "properly labeled" in text
        data = json.loads(out_json.read_text())
        assert data["ok"] and len(data["apps"]) == 2
        etypes = [json.loads(line)["type"]
                  for line in events.read_text().splitlines()]
        assert etypes.count("analyze_app") == 2
        assert etypes[-1] == "analyze_finished"

    def test_analyze_canary_fails_naming_both_sites(self, capsys):
        from repro.harness.cli import main

        rc = main(["analyze", "--canary"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "ANA101" in out
        assert out.count("canary.py:") >= 2
        assert "read " in out and "write" in out
