"""Tests for the extensions beyond the paper's evaluation (its own
Section 7 future-work list): delayed consistency, block sizes beyond
4096 bytes, 32-node runs, all-software configurations, and memory
utilization accounting."""

import numpy as np
import pytest

from repro import Machine, MachineParams, SharedArray, run_program
from repro.cluster.config import EXTENDED_GRANULARITIES, PAGE_SIZE, switch_of
from repro.stats.counters import memory_utilization


class TestDelayedConsistency:
    def test_registered(self):
        from repro.core import PROTOCOLS

        assert "dc" in PROTOCOLS

    @pytest.mark.parametrize("g", [64, 4096])
    def test_coherent_across_barriers(self, g):
        m = Machine(MachineParams(n_nodes=4, granularity=g), protocol="dc")
        arr = SharedArray(m, "x", 256, dtype=np.float64)
        arr.init(np.zeros(256))

        def program(dsm, rank, nprocs):
            n = 256 // nprocs
            yield from arr.set_slice(
                dsm, rank * n, np.arange(rank * n, rank * n + n, dtype=float)
            )
            yield from dsm.barrier(0, participants=nprocs)
            v = yield from arr.get_slice(dsm, 0, 256)
            yield from dsm.barrier(0, participants=nprocs)
            return float(v.sum())

        r = run_program(m, program, nprocs=4)
        assert all(x == float(np.arange(256).sum()) for x in r.results)

    def test_no_lost_updates_under_locks(self):
        m = Machine(MachineParams(n_nodes=4, granularity=4096), protocol="dc")
        arr = SharedArray(m, "c", 1, dtype=np.int64)
        arr.init([0])

        def program(dsm, rank, nprocs):
            for _ in range(4):
                yield from dsm.acquire(1)
                v = yield from arr.get(dsm, 0)
                yield from arr.set(dsm, 0, int(v) + 1)
                yield from dsm.release(1)
            yield from dsm.barrier(0, participants=nprocs)
            final = yield from arr.get(dsm, 0)
            return int(final)

        r = run_program(m, program, nprocs=4)
        assert all(x == 16 for x in r.results)

    def test_delays_invalidations_while_computing(self):
        """A reader that is computing keeps its copy until the bounded
        delay expires; the writer's transaction completes afterwards."""
        m = Machine(MachineParams(n_nodes=2, granularity=4096), protocol="dc")
        seg = m.alloc(4096, "x")
        m.place(seg.base, 4096, 0)

        def program2(dsm, rank, nprocs):
            if rank == 1:
                yield from dsm.touch_read(seg.base, 64)
                yield from dsm.compute(5000.0)
                yield from dsm.barrier(0, participants=nprocs)
                return 0.0
            # Long enough that the reader's (slow, 4KB) reply has
            # arrived and it is genuinely computing when the
            # invalidation lands.
            yield from dsm.compute(2000.0)
            t0 = dsm.now
            yield from dsm.touch_write(seg.base, 64, pattern=1)
            elapsed = dsm.now - t0
            yield from dsm.barrier(0, participants=nprocs)
            return elapsed

        r = run_program(m, program2, nprocs=2)
        assert m.protocol.delayed_actions >= 1
        # The write stalled on the deferred invalidation (~DELAY_US).
        assert r.results[0] > 100.0

    def test_reduces_ping_pong_misses_vs_sc(self):
        """On a write-write false-sharing workload, DC takes no more
        misses than plain SC (usually fewer)."""
        misses = {}
        for proto in ("sc", "dc"):
            m = Machine(MachineParams(n_nodes=4, granularity=4096),
                        protocol=proto)
            seg = m.alloc(4096, "x")
            m.place(seg.base, 4096, 0)

            def program(dsm, rank, nprocs):
                for it in range(20):
                    yield from dsm.touch_write(
                        seg.base + rank * 1024, 64,
                        pattern=(it + rank) & 0xFF,
                    )
                    yield from dsm.compute(30.0)
                yield from dsm.barrier(0, participants=nprocs)

            r = run_program(m, program, nprocs=4)
            misses[proto] = r.stats.read_faults + r.stats.write_faults
        assert misses["dc"] <= misses["sc"]


class TestExtendedGranularities:
    @pytest.mark.parametrize("g", EXTENDED_GRANULARITIES)
    @pytest.mark.parametrize("protocol", ["sc", "hlrc"])
    def test_runs_coherently(self, g, protocol):
        m = Machine(MachineParams(n_nodes=4, granularity=g), protocol=protocol)
        arr = SharedArray(m, "x", 4096, dtype=np.float64)  # 32 KB
        arr.init(np.zeros(4096))

        def program(dsm, rank, nprocs):
            n = 4096 // nprocs
            yield from arr.set_slice(
                dsm, rank * n, np.arange(rank * n, rank * n + n, dtype=float)
            )
            yield from dsm.barrier(0, participants=nprocs)
            v = yield from arr.get_slice(dsm, 0, 4096)
            yield from dsm.barrier(0, participants=nprocs)
            return float(v.sum())

        r = run_program(m, program, nprocs=4)
        assert all(x == float(np.arange(4096).sum()) for x in r.results)

    def test_bigger_blocks_fragment_worse_for_fine_reads(self):
        """An 8-byte read costs a 16 KB transfer at the largest block."""
        from repro.memory.blocks import BlockSpace

        assert BlockSpace(16384).fragmentation(8, 1) > 0.999


class TestThirtyTwoNodes:
    def test_topology_extends(self):
        switches = {switch_of(i) for i in range(32)}
        assert switches == {0, 1, 2, 3, 4, 5}

    def test_run_on_32_nodes(self):
        m = Machine(MachineParams(n_nodes=32, granularity=1024),
                    protocol="hlrc")
        arr = SharedArray(m, "x", 1024, dtype=np.float64)
        arr.init(np.zeros(1024))

        def program(dsm, rank, nprocs):
            n = 1024 // nprocs
            yield from arr.set_slice(
                dsm, rank * n, np.arange(rank * n, rank * n + n, dtype=float)
            )
            yield from dsm.barrier(0, participants=nprocs)
            v = yield from arr.get_slice(dsm, 0, 1024)
            yield from dsm.barrier(0, participants=nprocs)
            return float(v.sum())

        r = run_program(m, program, nprocs=32)
        assert all(x == float(np.arange(1024).sum()) for x in r.results)

    def test_app_scales_to_32_nodes(self):
        from repro.apps import make_app
        from repro.runtime.program import run_program as rp

        app = make_app("water-nsquared", "tiny")
        m = Machine(MachineParams(n_nodes=32, granularity=1024),
                    protocol="hlrc", poll_dilation=app.poll_dilation)
        app.setup(m)
        r = rp(m, app.program, nprocs=32,
               sequential_time_us=app.sequential_time_us())
        assert r.stats.parallel_time_us > 0


class TestAllSoftwarePresets:
    def test_svm_preset_values(self):
        p = MachineParams.svm()
        assert p.granularity == PAGE_SIZE
        assert p.fault_exception_us > 50.0
        p.validate()

    def test_svm_overrides(self):
        p = MachineParams.svm(n_nodes=8)
        assert p.n_nodes == 8

    def test_fine_grain_software_preset(self):
        p = MachineParams.fine_grain_software(granularity=64)
        assert p.granularity == 64
        p.validate()

    def test_svm_faults_cost_more(self):
        """The same program takes longer when faults cost SVM prices --
        the paper's 'differences would be larger on real SVM systems'."""
        times = {}
        for name, params in (
            ("t0", MachineParams(n_nodes=4, granularity=4096)),
            ("svm", MachineParams.svm(n_nodes=4)),
        ):
            m = Machine(params, protocol="sc")
            seg = m.alloc(64 * 1024, "x")
            m.place(seg.base, 64 * 1024, 0)

            def program(dsm, rank, nprocs):
                if rank == 1:
                    yield from dsm.touch_read(seg.base, 64 * 1024)
                yield from dsm.barrier(0, participants=nprocs)

            r = run_program(m, program, nprocs=2)
            times[name] = r.stats.parallel_time_us
        assert times["svm"] > times["t0"]


class TestMemoryUtilization:
    def test_replication_factor_reflects_sharing(self):
        m = Machine(MachineParams(n_nodes=4, granularity=1024), protocol="sc")
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))
        arr.place(0, 512, 0)

        def program(dsm, rank, nprocs):
            if rank == 0:
                yield from arr.set_slice(dsm, 0, np.ones(512))
            yield from dsm.barrier(0, participants=nprocs)
            yield from arr.get_slice(dsm, 0, 512)
            yield from dsm.barrier(1, participants=nprocs)

        run_program(m, program, nprocs=4)
        util = memory_utilization(m)
        # All four nodes cached the whole array: ~4x replication.
        assert util["replication_factor"] > 3.0
        assert util["cached_bytes"] >= util["distinct_bytes"]

    def test_hlrc_twin_bytes_counted(self):
        m = Machine(MachineParams(n_nodes=2, granularity=1024), protocol="hlrc")
        seg = m.alloc(4096, "x")
        m.place(seg.base, 4096, 0)
        snapshot = {}

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from dsm.touch_write(seg.base, 2048, pattern=3)
                snapshot.update(memory_utilization(m))  # twins live now
                yield from dsm.acquire(1)
                yield from dsm.release(1)
            yield from dsm.barrier(0, participants=nprocs)

        run_program(m, program, nprocs=2)
        assert snapshot["twin_bytes"] == 2048.0
        # After the release the twins are gone.
        assert memory_utilization(m)["twin_bytes"] == 0.0
