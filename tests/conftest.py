"""Shared fixtures: the checked-execution harness for repro.check."""

import pytest

from repro import Machine, MachineParams, run_program
from repro.check import install_checkers


@pytest.fixture
def checked_run():
    """Run a program under the race detector and invariant sanitizer.

    Usage::

        def build(machine):
            seg = machine.alloc(1024, "x")
            def program(dsm, rank, nprocs):
                yield from dsm.touch_write(seg.base, 64)
            return program

        report = checked_run(build, protocol="hlrc", nprocs=2)

    ``build(machine)`` does the allocation/placement and returns the
    program; the checkers are installed before the program runs.
    Returns the :class:`~repro.check.CheckReport`.
    """

    def _run(
        build,
        *,
        protocol="hlrc",
        granularity=256,
        nprocs=2,
        race_granularity="word",
        **machine_kw,
    ):
        machine = Machine(
            MachineParams(n_nodes=nprocs, granularity=granularity),
            protocol=protocol,
            **machine_kw,
        )
        program = build(machine)
        checkers = install_checkers(machine, race_granularity=race_granularity)
        run_program(machine, program, nprocs=nprocs)
        return checkers.report()

    return _run
