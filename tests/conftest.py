"""Shared fixtures: the checked-execution harness for repro.check,
plus collection gating for the numpy-free CI leg."""

import pytest

from repro import Machine, MachineParams, run_program
from repro.check import install_checkers

try:
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:
    _HAVE_NUMPY = False

#: Test modules that exercise numpy-specific surfaces (typed views via
#: np dtypes, np.array_equal oracles, random data generation).  The CI
#: fallback leg that uninstalls numpy outright cannot import them; the
#: simcore kernels they cover are exercised on that leg by
#: test_simcore.py's oracle-model tests instead.
_NUMPY_TEST_MODULES = [
    "test_check.py",
    "test_classify.py",
    "test_diff.py",
    "test_erc.py",
    "test_extensions.py",
    "test_lrc_semantics.py",
    "test_memory.py",
    "test_protocol_correctness.py",
    "test_protocol_internals.py",
    "test_random_programs.py",
    "test_runtime.py",
    "test_timeline.py",
]

collect_ignore = [] if _HAVE_NUMPY else _NUMPY_TEST_MODULES


@pytest.fixture
def checked_run():
    """Run a program under the race detector and invariant sanitizer.

    Usage::

        def build(machine):
            seg = machine.alloc(1024, "x")
            def program(dsm, rank, nprocs):
                yield from dsm.touch_write(seg.base, 64)
            return program

        report = checked_run(build, protocol="hlrc", nprocs=2)

    ``build(machine)`` does the allocation/placement and returns the
    program; the checkers are installed before the program runs.
    Returns the :class:`~repro.check.CheckReport`.
    """

    def _run(
        build,
        *,
        protocol="hlrc",
        granularity=256,
        nprocs=2,
        race_granularity="word",
        **machine_kw,
    ):
        machine = Machine(
            MachineParams(n_nodes=nprocs, granularity=granularity),
            protocol=protocol,
            **machine_kw,
        )
        program = build(machine)
        checkers = install_checkers(machine, race_granularity=race_granularity)
        run_program(machine, program, nprocs=nprocs)
        return checkers.report()

    return _run
