"""Tests for the memory substrate: blocks, address space, access
control, node stores, home table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import PAGE_SIZE
from repro.memory import (
    INV,
    RO,
    RW,
    AccessControl,
    AddressSpace,
    BlockSpace,
    HomeTable,
    NodeStore,
    tag_name,
)


class TestBlockSpace:
    def test_block_of(self):
        bs = BlockSpace(256)
        assert bs.block_of(0) == 0
        assert bs.block_of(255) == 0
        assert bs.block_of(256) == 1

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            BlockSpace(64).block_of(-1)

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            BlockSpace(100)

    def test_blocks_in_region_spanning(self):
        bs = BlockSpace(64)
        assert list(bs.blocks_in_region(60, 10)) == [0, 1]
        assert list(bs.blocks_in_region(0, 64)) == [0]
        assert list(bs.blocks_in_region(64, 64)) == [1]

    def test_blocks_in_region_empty(self):
        assert list(BlockSpace(64).blocks_in_region(10, 0)) == []

    def test_block_slices_cover_region_exactly(self):
        bs = BlockSpace(64)
        pieces = list(bs.block_slices(100, 200))
        # Contiguous coverage
        assert sum(p[3] for p in pieces) == 200
        assert pieces[0][2] == 0
        for (b1, o1, r1, l1), (b2, o2, r2, l2) in zip(pieces, pieces[1:]):
            assert r2 == r1 + l1
            assert b2 == b1 + 1
            assert o2 == 0

    @given(
        addr=st.integers(min_value=0, max_value=100_000),
        size=st.integers(min_value=1, max_value=20_000),
        g=st.sampled_from([64, 256, 1024, 4096]),
    )
    @settings(max_examples=200, deadline=None)
    def test_block_slices_consistent_with_blocks_in_region(self, addr, size, g):
        bs = BlockSpace(g)
        pieces = list(bs.block_slices(addr, size))
        assert [p[0] for p in pieces] == list(bs.blocks_in_region(addr, size))
        assert sum(p[3] for p in pieces) == size
        for b, off, roff, length in pieces:
            assert 0 <= off < g
            assert off + length <= g
            assert bs.block_of(addr + roff) == b

    def test_fragmentation_metric(self):
        bs = BlockSpace(4096)
        # Paper Section 5.2.2: an 8-byte read fetching a page is >99%.
        assert bs.fragmentation(8, 1) > 0.99
        assert bs.fragmentation(4096, 1) == 0.0
        assert bs.fragmentation(0, 0) == 0.0

    def test_page_of_block(self):
        bs = BlockSpace(1024)
        assert bs.page_of_block(0) == 0
        assert bs.page_of_block(3) == 0
        assert bs.page_of_block(4) == 1


class TestAddressSpace:
    def test_alloc_page_aligned(self):
        space = AddressSpace()
        seg = space.alloc(100, "a")
        assert seg.base % PAGE_SIZE == 0

    def test_segments_do_not_overlap(self):
        space = AddressSpace()
        a = space.alloc(5000, "a")
        b = space.alloc(5000, "b")
        assert b.base >= a.end

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc(10, "x")
        with pytest.raises(ValueError):
            space.alloc(10, "x")

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc(0, "x")

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc(10, "x", align=3)

    def test_segment_addr_bounds_checked(self):
        seg = AddressSpace().alloc(10, "x")
        assert seg.addr(0) == seg.base
        assert seg.addr(9) == seg.base + 9
        with pytest.raises(IndexError):
            seg.addr(10)

    def test_segment_lookup(self):
        space = AddressSpace()
        a = space.alloc(100, "a")
        assert space.segment("a") is a
        assert space.segment_at(a.base + 50) is a
        assert space.segment_at(a.base - 1) is None

    def test_custom_alignment(self):
        space = AddressSpace()
        seg = space.alloc(10, "x", align=64)
        assert seg.base % 64 == 0


class TestAccessControl:
    def test_default_invalid(self):
        ac = AccessControl()
        assert ac.tag(42) == INV
        assert not ac.permits(42, write=False)
        assert not ac.permits(42, write=True)

    def test_ro_permits_reads_only(self):
        ac = AccessControl()
        ac.set_tag(1, RO)
        assert ac.permits(1, write=False)
        assert not ac.permits(1, write=True)

    def test_rw_permits_everything(self):
        ac = AccessControl()
        ac.set_tag(1, RW)
        assert ac.permits(1, write=False)
        assert ac.permits(1, write=True)

    def test_invalidate_returns_whether_present(self):
        ac = AccessControl()
        ac.set_tag(1, RO)
        assert ac.invalidate(1)
        assert not ac.invalidate(1)
        assert ac.tag(1) == INV

    def test_downgrade_only_from_rw(self):
        ac = AccessControl()
        ac.set_tag(1, RW)
        assert ac.downgrade(1)
        assert ac.tag(1) == RO
        assert not ac.downgrade(1)

    def test_set_inv_keeps_table_sparse(self):
        ac = AccessControl()
        ac.set_tag(1, RW)
        ac.set_tag(1, INV)
        assert len(ac) == 0

    def test_bad_tag_rejected(self):
        with pytest.raises(ValueError):
            AccessControl().set_tag(1, 5)

    def test_tag_names(self):
        assert tag_name(INV) == "INV"
        assert tag_name(RO) == "RO"
        assert tag_name(RW) == "RW"


class TestNodeStore:
    def test_blocks_materialize_zeroed(self):
        store = NodeStore(64)
        assert not store.has_block(3)
        blk = store.block(3)
        assert len(blk) == 64
        assert bytes(blk) == bytes(64)
        assert store.has_block(3)

    def test_install_and_snapshot_independent(self):
        store = NodeStore(64)
        data = np.arange(64, dtype=np.uint8)
        store.install(0, data)
        snap = store.snapshot(0)
        store.block(0)[0] = 255
        assert snap[0] == 0

    def test_install_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            NodeStore(64).install(0, np.zeros(32, dtype=np.uint8))

    def test_region_roundtrip_across_blocks(self):
        store = NodeStore(64)
        data = np.arange(200, dtype=np.uint8)
        store.write_region(30, data)
        out = store.read_region(30, 200)
        assert np.array_equal(out, data)

    @given(
        addr=st.integers(min_value=0, max_value=1000),
        size=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_region_roundtrip_property(self, addr, size):
        store = NodeStore(256)
        data = np.random.default_rng(addr * 1000 + size).integers(
            0, 256, size, dtype=np.uint8
        )
        store.write_region(addr, data)
        assert np.array_equal(store.read_region(addr, size), data)

    def test_drop_frees_block(self):
        store = NodeStore(64)
        store.block(1)
        store.drop(1)
        assert not store.has_block(1)


class TestHomeTable:
    def test_static_home_round_robin_by_page(self):
        ht = HomeTable(4, 1024)
        # 4 blocks per page; all blocks of page p have static home p%4.
        for blk in range(16):
            page = blk // 4
            assert ht.static_home(blk) == page % 4

    def test_first_touch_claims_once(self):
        ht = HomeTable(4, 1024)
        assert ht.claim_first_touch(5, 2)
        assert not ht.claim_first_touch(5, 3)
        assert ht.home(5) == 2

    def test_migration_counted_only_when_moving(self):
        ht = HomeTable(4, 4096)
        static = ht.static_home(7)
        ht.claim_first_touch(7, static)
        assert ht.migrations == 0
        other = (static + 1) % 4
        ht.claim_first_touch(8, other) if ht.static_home(8) != other else None

    def test_place_region(self):
        ht = HomeTable(4, 1024)
        ht.place_region(0, 4096, 3)
        for blk in range(4):
            assert ht.home(blk) == 3

    def test_route_target_uses_cache(self):
        ht = HomeTable(4, 4096)
        blk = 9
        assert ht.route_target(0, blk) == ht.static_home(blk)
        ht.learn(0, blk, 2)
        assert ht.route_target(0, blk) == 2

    def test_home_or_static(self):
        ht = HomeTable(4, 4096)
        assert ht.home(3) is None
        assert ht.home_or_static(3) == ht.static_home(3)
        ht.place(3, 1)
        assert ht.home_or_static(3) == 1

    def test_place_bad_node_rejected(self):
        with pytest.raises(ValueError):
            HomeTable(4, 4096).place(0, 7)
