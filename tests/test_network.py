"""Tests for the network model and message plumbing."""

import pytest

from repro.cluster.config import MachineParams
from repro.net.message import (
    CONTROL_BYTES,
    HEADER_BYTES,
    Message,
    control_size,
    data_size,
    notice_size,
)
from repro.net.myrinet import LOCAL_DELIVERY_US, Network
from repro.sim.engine import Engine
from repro.stats.counters import Stats


def make_net(n=4):
    eng = Engine()
    params = MachineParams(n_nodes=n)
    stats = Stats(n)
    delivered = []
    net = Network(eng, params, stats, delivered.append)
    return eng, params, stats, net, delivered


class TestMessage:
    def test_minimum_size_is_header(self):
        msg = Message(src=0, dst=1, mtype="x", size_bytes=2)
        assert msg.size_bytes == HEADER_BYTES

    def test_size_helpers(self):
        assert control_size() == HEADER_BYTES + CONTROL_BYTES
        assert data_size(4096) == HEADER_BYTES + 4096
        assert notice_size(3) == HEADER_BYTES + 24
        assert notice_size(0) == HEADER_BYTES


class TestNetwork:
    def test_delivery_latency_matches_model(self):
        eng, params, stats, net, delivered = make_net()
        msg = Message(src=0, dst=1, mtype="t", size_bytes=64)
        net.send(msg)
        eng.run()
        expected = params.one_way_latency_us(64)
        assert eng.now == pytest.approx(expected)
        assert delivered == [msg]

    def test_switch_hops_add_latency(self):
        eng, params, stats, net, delivered = make_net(n=16)
        # Distinct senders so NIC occupancy does not skew the compare.
        near = Message(src=0, dst=2, mtype="t", size_bytes=64)
        far = Message(src=1, dst=15, mtype="t", size_bytes=64)
        times = {}
        net._deliver = lambda m: times.__setitem__(m.dst, eng.now)
        net.send(near)
        net.send(far)
        eng.run()
        # Two inter-switch hops for switch 0 -> switch 2.
        assert times[15] > times[2]
        assert times[15] - times[2] == pytest.approx(2 * params.switch_hop_us)

    def test_sender_nic_serializes_back_to_back(self):
        eng, params, stats, net, delivered = make_net()
        times = []
        net._deliver = lambda m: times.append(eng.now)
        for _ in range(3):
            net.send(Message(src=0, dst=1, mtype="t", size_bytes=4096))
        eng.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Consecutive big messages are spaced by NIC occupancy.
        for gap in gaps:
            assert gap == pytest.approx(params.nic_occupancy_us(4096))

    def test_local_message_bypasses_wire(self):
        eng, params, stats, net, delivered = make_net()
        msg = Message(src=2, dst=2, mtype="t", size_bytes=4096)
        net.send(msg)
        eng.run()
        assert eng.now == pytest.approx(LOCAL_DELIVERY_US)
        assert stats.local_msgs == 1
        assert stats.total_messages == 0

    def test_traffic_accounting(self):
        eng, params, stats, net, delivered = make_net()
        net.send(Message(src=0, dst=1, mtype="data", size_bytes=100))
        net.send(Message(src=0, dst=1, mtype="ctrl", size_bytes=24))
        eng.run()
        assert stats.msg_count["data"] == 1
        assert stats.msg_bytes["data"] == 100
        assert stats.total_traffic_bytes == 124

    def test_bad_destination_rejected(self):
        eng, params, stats, net, delivered = make_net()
        with pytest.raises(ValueError):
            net.send(Message(src=0, dst=99, mtype="t", size_bytes=24))
        with pytest.raises(ValueError):
            net.send(Message(src=-1, dst=0, mtype="t", size_bytes=24))

    def test_small_messages_faster_than_big(self):
        eng, params, stats, net, _ = make_net()
        times = {}
        net._deliver = lambda m: times.__setitem__(m.mtype, eng.now)
        net.send(Message(src=0, dst=1, mtype="big", size_bytes=4096))
        net.send(Message(src=2, dst=1, mtype="small", size_bytes=24))
        eng.run()
        assert times["small"] < times["big"]
