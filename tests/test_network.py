"""Tests for the network model and message plumbing."""

import pytest

from repro.cluster.config import MachineParams
from repro.net.message import (
    CONTROL_BYTES,
    HEADER_BYTES,
    Message,
    control_size,
    data_size,
    notice_size,
)
from repro.net.myrinet import LOCAL_DELIVERY_US, Network
from repro.sim.engine import Engine
from repro.stats.counters import Stats


def make_net(n=4):
    eng = Engine()
    params = MachineParams(n_nodes=n)
    stats = Stats(n)
    delivered = []
    net = Network(eng, params, stats, delivered.append)
    return eng, params, stats, net, delivered


class TestMessage:
    def test_minimum_size_is_header(self):
        msg = Message(src=0, dst=1, mtype="x", size_bytes=2)
        assert msg.size_bytes == HEADER_BYTES

    def test_size_helpers(self):
        assert control_size() == HEADER_BYTES + CONTROL_BYTES
        assert data_size(4096) == HEADER_BYTES + 4096
        assert notice_size(3) == HEADER_BYTES + 24
        assert notice_size(0) == HEADER_BYTES


class TestNetwork:
    def test_delivery_latency_matches_model(self):
        eng, params, stats, net, delivered = make_net()
        msg = Message(src=0, dst=1, mtype="t", size_bytes=64)
        net.send(msg)
        eng.run()
        expected = params.one_way_latency_us(64)
        assert eng.now == pytest.approx(expected)
        assert delivered == [msg]

    def test_switch_hops_add_latency(self):
        eng, params, stats, net, delivered = make_net(n=16)
        # Distinct senders so NIC occupancy does not skew the compare.
        near = Message(src=0, dst=2, mtype="t", size_bytes=64)
        far = Message(src=1, dst=15, mtype="t", size_bytes=64)
        times = {}
        net._deliver = lambda m: times.__setitem__(m.dst, eng.now)
        net.send(near)
        net.send(far)
        eng.run()
        # Two inter-switch hops for switch 0 -> switch 2.
        assert times[15] > times[2]
        assert times[15] - times[2] == pytest.approx(2 * params.switch_hop_us)

    def test_sender_nic_serializes_back_to_back(self):
        eng, params, stats, net, delivered = make_net()
        times = []
        net._deliver = lambda m: times.append(eng.now)
        for _ in range(3):
            net.send(Message(src=0, dst=1, mtype="t", size_bytes=4096))
        eng.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Consecutive big messages are spaced by NIC occupancy.
        for gap in gaps:
            assert gap == pytest.approx(params.nic_occupancy_us(4096))

    def test_local_message_bypasses_wire(self):
        eng, params, stats, net, delivered = make_net()
        msg = Message(src=2, dst=2, mtype="t", size_bytes=4096)
        net.send(msg)
        eng.run()
        assert eng.now == pytest.approx(LOCAL_DELIVERY_US)
        assert stats.local_msgs == 1
        assert stats.total_messages == 0

    def test_traffic_accounting(self):
        eng, params, stats, net, delivered = make_net()
        net.send(Message(src=0, dst=1, mtype="data", size_bytes=100))
        net.send(Message(src=0, dst=1, mtype="ctrl", size_bytes=24))
        eng.run()
        assert stats.msg_count["data"] == 1
        assert stats.msg_bytes["data"] == 100
        assert stats.total_traffic_bytes == 124

    def test_bad_destination_rejected(self):
        eng, params, stats, net, delivered = make_net()
        with pytest.raises(ValueError):
            net.send(Message(src=0, dst=99, mtype="t", size_bytes=24))
        with pytest.raises(ValueError):
            net.send(Message(src=-1, dst=0, mtype="t", size_bytes=24))

    def test_small_messages_faster_than_big(self):
        eng, params, stats, net, _ = make_net()
        times = {}
        net._deliver = lambda m: times.__setitem__(m.mtype, eng.now)
        net.send(Message(src=0, dst=1, mtype="big", size_bytes=4096))
        net.send(Message(src=2, dst=1, mtype="small", size_bytes=24))
        eng.run()
        assert times["small"] < times["big"]


class TestOrderingSemantics:
    """Pin the audited raw-wire (non-)ordering guarantees.

    These behaviors are *intended* (see the myrinet module docstring):
    the protocols tolerate them on the trusted wire, and per-link FIFO
    only exists under the reliable transport.  If one of these tests
    starts failing, the wire's ordering contract changed -- audit every
    protocol handler before accepting it.
    """

    def test_small_overtakes_large_on_same_link(self):
        # NIC-serialized departures, size-dependent latency: a control
        # message injected right behind a 4 KB transfer on the SAME
        # (src, dst) link arrives first.
        eng, params, stats, net, _ = make_net()
        order = []
        net._deliver = lambda m: order.append(m.mtype)
        net.send(Message(src=0, dst=1, mtype="big", size_bytes=4096))
        net.send(Message(src=0, dst=1, mtype="small", size_bytes=24))
        eng.run()
        assert order == ["small", "big"]
        # ... which is exactly what the latency model predicts.
        assert params.nic_occupancy_us(4096) + params.one_way_latency_us(
            24
        ) < params.one_way_latency_us(4096)

    def test_local_overtakes_in_flight_remote(self):
        # A node-local message is a function call, not a wire crossing:
        # it skips the NIC queue and beats remote messages the same
        # sender injected earlier.
        eng, params, stats, net, _ = make_net()
        order = []
        net._deliver = lambda m: order.append(m.mtype)
        net.send(Message(src=0, dst=1, mtype="remote", size_bytes=24))
        net.send(Message(src=0, dst=0, mtype="local", size_bytes=4096))
        eng.run()
        assert order == ["local", "remote"]

    def test_local_messages_fifo_among_themselves(self):
        eng, params, stats, net, _ = make_net()
        order = []
        net._deliver = lambda m: order.append(m.mtype)
        for k in range(4):
            net.send(Message(src=2, dst=2, mtype=f"l{k}", size_bytes=24))
        eng.run()
        assert order == ["l0", "l1", "l2", "l3"]

    def test_equal_size_messages_fifo_on_one_link(self):
        # Same size, same link: NIC serialization + fixed latency keeps
        # send order (the only FIFO the raw wire does provide).
        eng, params, stats, net, _ = make_net()
        order = []
        net._deliver = lambda m: order.append(m.mtype)
        for k in range(4):
            net.send(Message(src=0, dst=1, mtype=f"m{k}", size_bytes=256))
        eng.run()
        assert order == ["m0", "m1", "m2", "m3"]
