"""Tests for the Eager Release Consistency extension protocol."""

import numpy as np
import pytest

from repro import Machine, MachineParams, SharedArray, run_program
from repro.simcore import dtype, typed_view


def make(g=4096, n=4):
    return Machine(MachineParams(n_nodes=n, granularity=g), protocol="erc")


def test_registered():
    from repro.core import PROTOCOLS

    assert "erc" in PROTOCOLS
    assert not PROTOCOLS["erc"].uses_notices  # acquires carry nothing


@pytest.mark.parametrize("g", [64, 256, 1024, 4096])
def test_barrier_coherence(g):
    m = make(g=g, n=8)
    arr = SharedArray(m, "x", 512, dtype=np.float64)
    arr.init(np.zeros(512))

    def program(dsm, rank, nprocs):
        n = 512 // nprocs
        yield from arr.set_slice(
            dsm, rank * n, np.arange(rank * n, rank * n + n, dtype=float)
        )
        yield from dsm.barrier(0, participants=nprocs)
        v = yield from arr.get_slice(dsm, 0, 512)
        yield from dsm.barrier(0, participants=nprocs)
        return float(v.sum())

    r = run_program(m, program, nprocs=8)
    assert all(x == float(np.arange(512).sum()) for x in r.results)


def test_release_publishes_before_any_acquire():
    """The eager property: once the writer's release returns, the home
    holds the data and every other cached copy is invalid -- no acquire
    needed anywhere."""
    m = make()
    arr = SharedArray(m, "x", 512, dtype=np.float64)
    arr.init(np.zeros(512))
    arr.place(0, 512, 3)
    block = arr.segment.base // 4096
    state = {}

    def program(dsm, rank, nprocs):
        if rank == 0:
            yield from dsm.touch_read(arr.segment.base, 64)  # cache a copy
            yield from dsm.barrier(0, participants=nprocs)
            yield from dsm.barrier(1, participants=nprocs)
            return 0.0
        elif rank == 1:
            yield from dsm.barrier(0, participants=nprocs)
            yield from dsm.acquire(5)
            yield from arr.set(dsm, 0, 42.0)
            yield from dsm.release(5)
            # Immediately after the release: home current, reader dead.
            state["home_val"] = float(
                typed_view(m.nodes[3].store.block(block), dtype(np.float64))[0]
            )
            state["reader_tag"] = m.nodes[0].access.tag(block)
            yield from dsm.barrier(1, participants=nprocs)
            return 0.0
        else:
            yield from dsm.barrier(0, participants=nprocs)
            yield from dsm.barrier(1, participants=nprocs)
            return 0.0

    run_program(m, program, nprocs=3)
    from repro.memory.access_control import INV

    assert state["home_val"] == 42.0
    assert state["reader_tag"] == INV


def test_no_lost_updates_with_locks():
    m = make()
    arr = SharedArray(m, "c", 1, dtype=np.int64)
    arr.init([0])

    def program(dsm, rank, nprocs):
        for _ in range(5):
            yield from dsm.acquire(1)
            v = yield from arr.get(dsm, 0)
            yield from arr.set(dsm, 0, int(v) + 1)
            yield from dsm.release(1)
        yield from dsm.barrier(0, participants=nprocs)
        v = yield from arr.get(dsm, 0)
        return int(v)

    r = run_program(m, program, nprocs=4)
    assert all(x == 20 for x in r.results)


def test_concurrent_writers_merge_via_piggyback():
    """Two writers under different locks, one block: the eager
    invalidation of the second writer's copy carries its diff along."""
    m = make()
    arr = SharedArray(m, "x", 512, dtype=np.float64)
    arr.init(np.zeros(512))
    arr.place(0, 512, 3)

    def program(dsm, rank, nprocs):
        if rank < 2:
            yield from dsm.acquire(rank + 1)
            yield from arr.set_slice(dsm, rank * 256,
                                     np.full(256, float(rank + 1)))
            yield from dsm.release(rank + 1)
        yield from dsm.barrier(0, participants=nprocs)
        v = yield from arr.get_slice(dsm, 0, 512)
        return float(v.sum())

    r = run_program(m, program, nprocs=3)
    assert all(x == 256.0 * 3 for x in r.results)


def test_eager_release_is_expensive_lazy_acquire_is_cheap():
    """The protocol's signature cost profile versus HLRC: more release
    work (invalidation round trips) but zero acquire-side notices."""
    times = {}
    for proto in ("erc", "hlrc"):
        m = Machine(MachineParams(n_nodes=8, granularity=4096), protocol=proto)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))
        arr.place(0, 512, 7)
        rel = {}

        def program(dsm, rank, nprocs):
            # Everyone caches the block first.
            yield from dsm.touch_read(arr.segment.base, 64)
            yield from dsm.barrier(0, participants=nprocs)
            if rank == 0:
                yield from dsm.acquire(3)
                yield from arr.set(dsm, 0, 1.0)
                t0 = dsm.now
                yield from dsm.release(3)
                rel["us"] = dsm.now - t0
            yield from dsm.barrier(1, participants=nprocs)

        run_program(m, program, nprocs=8)
        times[proto] = rel["us"]
    # ERC's release must invalidate 6 remote copies; HLRC just flushes
    # one diff to the home.
    assert times["erc"] > times["hlrc"]


def test_copyset_tracks_fetchers():
    m = make()
    arr = SharedArray(m, "x", 512, dtype=np.float64)
    arr.init(np.zeros(512))
    arr.place(0, 512, 0)
    block = arr.segment.base // 4096

    def program(dsm, rank, nprocs):
        if rank > 0:
            yield from dsm.touch_read(arr.segment.base, 64)
        yield from dsm.barrier(0, participants=nprocs)

    run_program(m, program, nprocs=4)
    assert m.protocol.copyset[block] == {1, 2, 3}


def test_quiescent_state_clean():
    m = make(g=1024)
    arr = SharedArray(m, "x", 512, dtype=np.float64)
    arr.init(np.zeros(512))

    def program(dsm, rank, nprocs):
        yield from arr.set(dsm, rank, float(rank))
        yield from dsm.barrier(0, participants=nprocs)

    run_program(m, program, nprocs=4)
    assert m.protocol._inflight == set()
    assert m.protocol._poisoned == set()
    assert all(not t for t in m.protocol.twins)
    assert all(not d for d in m.protocol.dirty)


def test_fetch_parked_during_invalidation_storm():
    """Regression: a fetch serviced while a release's invalidation
    transaction is open can hand out a snapshot missing a concurrent
    writer's piggybacked diff, leaving the requester a stale cached
    copy that nothing ever invalidates.

    The shape (found by hypothesis): three writers share a 64-byte
    block; the reader's poisoned-retry refetch races the slowest
    writer's piggybacked diff at the home.
    """
    m = Machine(MachineParams(n_nodes=3, granularity=64), protocol="erc")
    arr = SharedArray(m, "x", 9, dtype=np.float64)
    arr.init(np.zeros(9))
    arr.place(0, 9, 1)
    bounds = [0, 1, 2, 9]

    def value(rank, rnd, idx):
        return float(rnd * 1_000_000 + rank * 10_000 + idx)

    reads = [(0, 3), (0, 1), (0, 1)]
    failures = []

    def program(dsm, rank, nprocs):
        for rnd in range(2):
            lo, hi = bounds[rank], bounds[rank + 1]
            vals = np.array([value(rank, rnd, i) for i in range(lo, hi)])
            yield from arr.set_slice(dsm, lo, vals)
            yield from dsm.barrier(0, participants=nprocs)
            rlo, rlen = reads[rank]
            rhi = min(9, rlo + rlen)
            got = yield from arr.get_slice(dsm, rlo, rhi)
            expect = np.array([
                value(w, rnd, i)
                for i in range(rlo, rhi)
                for w in [next(r for r in range(nprocs)
                               if bounds[r] <= i < bounds[r + 1])]
            ])
            if not np.array_equal(got, expect):
                failures.append((rank, rnd, got.copy(), expect))
            yield from dsm.barrier(1, participants=nprocs)

    run_program(m, program, nprocs=3)
    assert not failures, failures
    # every storm closed, nothing left parked
    assert m.protocol._storms == {}
    assert m.protocol._parked == {}
