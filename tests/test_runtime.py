"""Tests for the DSM runtime layer: region ops, shared arrays, the
program runner, and the machine assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Machine,
    MachineParams,
    SharedArray,
    SharedMatrix,
    run_program,
)
from repro.runtime.dsm import Dsm


def make(protocol="sc", g=256, n=4):
    return Machine(MachineParams(n_nodes=n, granularity=g), protocol=protocol)


class TestRegionOps:
    def test_write_then_read_roundtrip(self):
        m = make()
        seg = m.alloc(1000, "x")
        data = np.arange(100, dtype=np.uint8)

        def program(dsm, rank, nprocs):
            yield from dsm.write(seg.base + 123, data)
            out = yield from dsm.read(seg.base + 123, 100)
            return out

        r = run_program(m, program, nprocs=1)
        assert np.array_equal(r.results[0], data)

    def test_write_accepts_bytes(self):
        m = make()
        seg = m.alloc(64, "x")

        def program(dsm, rank, nprocs):
            yield from dsm.write(seg.base, b"hello")
            out = yield from dsm.read(seg.base, 5)
            return bytes(out)

        r = run_program(m, program, nprocs=1)
        assert r.results[0] == b"hello"

    def test_touch_write_pattern_fills(self):
        m = make()
        seg = m.alloc(512, "x")

        def program(dsm, rank, nprocs):
            yield from dsm.touch_write(seg.base, 512, pattern=0xAB)
            out = yield from dsm.read(seg.base, 512)
            return out

        r = run_program(m, program, nprocs=1)
        assert bytes(r.results[0]) == bytes([0xAB]) * 512

    def test_touch_read_faults_without_copying(self):
        m = make()
        seg = m.alloc(4096, "x")
        m.place(seg.base, 4096, 1)

        def program(dsm, rank, nprocs):
            if rank == 0:
                yield from dsm.touch_read(seg.base, 4096)
            yield from dsm.barrier(0, participants=nprocs)

        r = run_program(m, program, nprocs=2)
        assert r.stats.read_faults == 4096 // 256

    @given(
        offset=st.integers(min_value=0, max_value=2000),
        size=st.integers(min_value=1, max_value=1500),
        g=st.sampled_from([64, 256, 1024, 4096]),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property_across_granularities(self, offset, size, g):
        m = make(g=g)
        seg = m.alloc(4096, "x")
        rng = np.random.default_rng(offset * 7 + size)
        data = rng.integers(0, 256, size, dtype=np.uint8)
        addr = seg.base + offset

        def program(dsm, rank, nprocs):
            yield from dsm.write(addr, data)
            out = yield from dsm.read(addr, size)
            return out

        r = run_program(m, program, nprocs=1)
        assert np.array_equal(r.results[0], data)


class TestSharedArray:
    def test_index_bounds(self):
        m = make()
        arr = SharedArray(m, "a", 10)
        with pytest.raises(IndexError):
            arr.addr(10)
        with pytest.raises(IndexError):
            arr.addr(-1)

    def test_init_requires_matching_length(self):
        m = make()
        arr = SharedArray(m, "a", 10)
        with pytest.raises(ValueError):
            arr.init(np.zeros(9))

    def test_dtype_preserved(self):
        m = make()
        arr = SharedArray(m, "a", 8, dtype=np.int32)
        arr.init(np.arange(8, dtype=np.int32))

        def program(dsm, rank, nprocs):
            v = yield from arr.get(dsm, 3)
            yield from arr.set(dsm, 3, v * 10)
            v2 = yield from arr.get(dsm, 3)
            return int(v2)

        r = run_program(m, program, nprocs=1)
        assert r.results[0] == 30

    def test_empty_slice_ok(self):
        m = make()
        arr = SharedArray(m, "a", 8)

        def program(dsm, rank, nprocs):
            yield from arr.set_slice(dsm, 4, np.array([]))
            out = yield from arr.get_slice(dsm, 2, 2)
            return len(out)

        r = run_program(m, program, nprocs=1)
        assert r.results[0] == 0


class TestSharedMatrix:
    def test_row_roundtrip(self):
        m = make()
        mat = SharedMatrix(m, "m", (4, 8))
        mat.init(np.zeros((4, 8)))

        def program(dsm, rank, nprocs):
            yield from mat.set_row(dsm, 2, np.arange(8, dtype=np.float64))
            row = yield from mat.get_row(dsm, 2)
            v = yield from mat.get(dsm, 2, 5)
            return float(row.sum()), float(v)

        r = run_program(m, program, nprocs=1)
        assert r.results[0] == (28.0, 5.0)

    def test_bounds(self):
        m = make()
        mat = SharedMatrix(m, "m", (4, 8))
        with pytest.raises(IndexError):
            mat.addr(4, 0)
        with pytest.raises(IndexError):
            mat.addr(0, 8)


class TestRunProgram:
    def test_results_in_rank_order(self):
        m = make()

        def program(dsm, rank, nprocs):
            yield from dsm.compute(10.0 * (nprocs - rank))
            return rank

        r = run_program(m, program, nprocs=4)
        assert r.results == [0, 1, 2, 3]

    def test_deadlock_detected(self):
        m = make()

        def program(dsm, rank, nprocs):
            # Only one of two arrives at the barrier.
            if rank == 0:
                yield from dsm.barrier(0, participants=2)
            else:
                yield from dsm.compute(1.0)

        with pytest.raises(RuntimeError, match="deadlock"):
            run_program(m, program, nprocs=2)

    def test_bad_nprocs_rejected(self):
        m = make()
        with pytest.raises(ValueError):
            run_program(m, lambda dsm, r, n: iter(()), nprocs=9)

    def test_speedup_definition(self):
        m = make()

        def program(dsm, rank, nprocs):
            yield from dsm.compute(1000.0)

        r = run_program(m, program, nprocs=4, sequential_time_us=4000.0)
        assert r.speedup == pytest.approx(4000.0 / r.elapsed_us)


class TestMachine:
    def test_place_segment_and_init_data(self):
        m = make()
        seg = m.alloc(1024, "x")
        m.place_segment(seg, 2)
        m.init_data(seg.base, np.full(1024, 7, dtype=np.uint8))
        block = seg.base // 256
        assert m.home.home(block) == 2
        assert bytes(m.nodes[2].store.block(block)) == bytes([7]) * 256

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            Machine(MachineParams(n_nodes=2), protocol="mesi")

    def test_message_dispatch_routes_by_prefix(self):
        m = make()
        # All three families are registered through one dispatcher.
        assert m.locks.handles("lock_req")
        assert m.barriers.handles("barrier_arrive")
        assert not m.locks.handles("read_req")
