"""Tests for repro.check: the data-race detector, the
protocol-invariant sanitizer, the execution-layer wiring, and the
simulator lint (tools/lint_sim.py)."""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro import Machine, MachineParams, run_program
from repro.apps import APP_NAMES
from repro.check import CheckFailure, install_checkers
from repro.check.race import resolve_unit
from repro.exec.pool import _cache_extra
from repro.exec.serialize import RunRecord
from repro.harness.experiment import RunConfig, run_experiment

PROTOCOLS = ("sc", "swlrc", "hlrc")


def _machine(protocol="hlrc", g=256, n=2):
    return Machine(MachineParams(n_nodes=n, granularity=g), protocol=protocol)


# ======================================================================
# race detector
# ======================================================================
class TestRaceDetector:
    def test_racy_program_flagged_with_both_sites(self, checked_run):
        def build(machine):
            seg = machine.alloc(1024, "x")

            def racy_writer(dsm, rank, nprocs):
                yield from dsm.touch_write(seg.base, 64, pattern=rank)

            return racy_writer

        report = checked_run(build, protocol="sc", nprocs=2)
        assert report.races_total >= 1
        assert not report.ok
        race = report.races[0]
        # Both access sites point at the racy program's source line.
        assert "test_check.py" in race.earlier.location
        assert "test_check.py" in race.later.location
        assert "racy_writer" in race.earlier.location
        assert "racy_writer" in race.later.location
        assert race.earlier.node != race.later.node
        assert race.true_race
        # Each side carries its synchronization context.
        assert "synchronization" in race.earlier.sync_context or \
            "@t=" in race.earlier.sync_context
        assert "data race" in race.describe()

    def test_drf_sibling_with_locks_is_clean(self, checked_run):
        def build(machine):
            seg = machine.alloc(1024, "x")

            def drf_writer(dsm, rank, nprocs):
                yield from dsm.acquire(7)
                yield from dsm.touch_write(seg.base, 64, pattern=rank)
                yield from dsm.release(7)

            return drf_writer

        report = checked_run(build, protocol="sc", nprocs=2)
        assert report.races_total == 0
        assert report.ok

    def test_barrier_orders_accesses(self, checked_run):
        def build(machine):
            seg = machine.alloc(1024, "x")

            def program(dsm, rank, nprocs):
                if rank == 0:
                    yield from dsm.touch_write(seg.base, 64, pattern=1)
                yield from dsm.barrier(0, participants=nprocs)
                if rank == 1:
                    yield from dsm.touch_read(seg.base, 64)

            return program

        report = checked_run(build, protocol="hlrc", nprocs=2)
        assert report.races_total == 0

    def test_unordered_read_write_flagged(self, checked_run):
        def build(machine):
            seg = machine.alloc(1024, "x")

            def program(dsm, rank, nprocs):
                if rank == 0:
                    yield from dsm.touch_write(seg.base, 64, pattern=1)
                else:
                    yield from dsm.touch_read(seg.base, 64)

            return program

        report = checked_run(build, protocol="sc", nprocs=2)
        assert report.races_total >= 1
        kinds = {report.races[0].earlier.write, report.races[0].later.write}
        assert kinds == {True, False}

    def test_lock_chain_transitivity(self, checked_run):
        """0 -> (release L) -> 1 -> (release L) -> 2 orders 0's write
        before 2's read even though they never synchronize directly."""

        def build(machine):
            seg = machine.alloc(1024, "x")

            def program(dsm, rank, nprocs):
                # Serialize the lock hand-off with barriers so the
                # acquisition ORDER is deterministic; data accesses stay
                # ordered only by the lock chain itself.
                if rank == 0:
                    yield from dsm.touch_write(seg.base, 32, pattern=1)
                    yield from dsm.acquire(9)
                    yield from dsm.release(9)
                yield from dsm.barrier(0, participants=nprocs)
                if rank == 1:
                    yield from dsm.acquire(9)
                    yield from dsm.release(9)
                yield from dsm.barrier(1, participants=nprocs)
                if rank == 2:
                    yield from dsm.acquire(9)
                    yield from dsm.touch_read(seg.base, 32)
                    yield from dsm.release(9)

            return program

        report = checked_run(build, protocol="swlrc", nprocs=3)
        # The barriers alone also order the accesses here, but a broken
        # lock-clock merge would already have failed the DRF smoke.
        assert report.races_total == 0

    def test_false_sharing_distinguished_at_block_granularity(self, checked_run):
        def build(machine):
            seg = machine.alloc(1024, "x")

            def program(dsm, rank, nprocs):
                # Disjoint bytes of one 256-byte coherence block.
                yield from dsm.touch_write(seg.base + rank * 128, 8,
                                           pattern=rank)

            return program

        report = checked_run(
            build, protocol="sc", nprocs=2, race_granularity="block"
        )
        assert report.races_total == 0
        assert report.false_sharing_total >= 1
        assert report.ok  # false sharing is not a correctness failure
        assert not report.false_sharing[0].true_race
        assert "false sharing" in report.false_sharing[0].describe()

    def test_same_bytes_at_block_granularity_is_true_race(self, checked_run):
        def build(machine):
            seg = machine.alloc(1024, "x")

            def program(dsm, rank, nprocs):
                yield from dsm.touch_write(seg.base, 8, pattern=rank)

            return program

        report = checked_run(
            build, protocol="sc", nprocs=2, race_granularity="block"
        )
        assert report.races_total >= 1

    def test_assume_disjoint_suppresses_and_counts(self, checked_run):
        def build(machine):
            seg = machine.alloc(1024, "x")

            def program(dsm, rank, nprocs):
                with dsm.assume_disjoint("element-disjoint by construction"):
                    yield from dsm.touch_write(seg.base, 64, pattern=rank)

            return program

        report = checked_run(build, protocol="sc", nprocs=2)
        assert report.races_total == 0
        assert report.ok

    def test_assume_disjoint_one_side_suffices(self):
        m = _machine(protocol="sc", n=2)
        seg = m.alloc(1024, "x")
        checkers = install_checkers(m)

        def program(dsm, rank, nprocs):
            if rank == 0:
                yield from dsm.touch_write(seg.base, 64, pattern=1)
            else:
                with dsm.assume_disjoint("reads the other colour"):
                    yield from dsm.touch_read(seg.base, 64)

        run_program(m, program, nprocs=2)
        report = checkers.report()
        assert report.races_total == 0
        assert checkers.race.exempted_total >= 1

    def test_resolve_unit(self):
        assert resolve_unit("byte", 4096) == 1
        assert resolve_unit("word", 4096) == 4
        assert resolve_unit("block", 4096) == 4096
        assert resolve_unit(128, 4096) == 128
        with pytest.raises(ValueError):
            resolve_unit("page", 4096)
        with pytest.raises(ValueError):
            resolve_unit(0, 4096)


# ======================================================================
# invariant sanitizer (violation injection per protocol)
# ======================================================================
class TestInvariantInjection:
    def _run_app_cell(self, protocol):
        m = _machine(protocol=protocol, g=256, n=2)
        seg = m.alloc(2048, "x")
        checkers = install_checkers(m, races=False)

        def program(dsm, rank, nprocs):
            yield from dsm.acquire(3)
            yield from dsm.touch_write(seg.base, 256, pattern=rank)
            yield from dsm.release(3)
            yield from dsm.barrier(0, participants=nprocs)

        run_program(m, program, nprocs=2)
        return m, checkers

    def test_sc_single_writer_violation(self):
        m, checkers = self._run_app_cell("sc")
        from repro.memory.access_control import RW

        block = 0
        m.nodes[0].access.set_tag(block, RW)
        m.nodes[1].access.set_tag(block, RW)
        checkers.invariants._msg_sc(block)
        rules = {v.rule for v in checkers.invariants.violations}
        assert "single-writer" in rules

    def test_sc_owner_tag_agreement_violation(self):
        m, checkers = self._run_app_cell("sc")
        from repro.memory.access_control import RW

        # RW copy on a node the directory does not register as owner.
        block = 1
        m.nodes[1].access.set_tag(block, RW)
        e = m.protocol.dir.get(block)
        if e is not None:
            e.owner = 0
        checkers.invariants._msg_sc(block)
        rules = {v.rule for v in checkers.invariants.violations}
        assert "owner-tag-agreement" in rules

    def test_swlrc_duplicate_writer_violation(self):
        m, checkers = self._run_app_cell("swlrc")
        from repro.memory.access_control import RW

        block = 0
        m.nodes[0].access.set_tag(block, RW)
        m.nodes[1].access.set_tag(block, RW)
        m.protocol.owned[0].add(block)
        m.protocol.owned[1].add(block)
        checkers.invariants._msg_swlrc(block)
        rules = {v.rule for v in checkers.invariants.violations}
        assert "single-writable-copy" in rules
        assert "unique-owner" in rules

    def test_swlrc_rw_without_ownership_violation(self):
        m, checkers = self._run_app_cell("swlrc")
        from repro.memory.access_control import RW

        block = 2
        m.protocol.owned[0].discard(block)
        m.protocol.owned[1].discard(block)
        m.nodes[0].access.set_tag(block, RW)
        checkers.invariants._msg_swlrc(block)
        rules = {v.rule for v in checkers.invariants.violations}
        assert "rw-implies-owned" in rules

    def test_hlrc_twin_survives_release_violation(self):
        m, checkers = self._run_app_cell("hlrc")
        m.protocol.twins[0][5] = np.zeros(256, dtype=np.uint8)
        checkers.invariants._release_hlrc(0)
        rules = {v.rule for v in checkers.invariants.violations}
        assert "twin-survives-release" in rules

    def test_lrc_dirty_survives_release_violation(self):
        m, checkers = self._run_app_cell("hlrc")
        m.protocol.dirty[1].add(7)
        checkers.invariants._release_common(1)
        rules = {v.rule for v in checkers.invariants.violations}
        assert "dirty-survives-release" in rules

    def test_clean_cells_report_nothing(self):
        for protocol in PROTOCOLS:
            _, checkers = self._run_app_cell(protocol)
            report = checkers.report()
            assert report.violations_total == 0, protocol


# ======================================================================
# whole-app smoke: every app x protocol is race- and invariant-clean
# ======================================================================
class TestAppSmoke:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_all_apps_clean_under_check(self, protocol):
        failures = []
        for app in APP_NAMES:
            cfg = RunConfig(
                app=app, protocol=protocol, granularity=4096,
                nprocs=4, scale="tiny",
            )
            result = run_experiment(cfg, check=True)
            rep = result.check
            if not rep.ok:
                failures.append(f"{app}: {rep.describe()[:500]}")
        assert not failures, "\n".join(failures)

    def test_checked_run_bit_identical(self):
        cfg = RunConfig(
            app="ocean-original", protocol="hlrc", granularity=1024,
            nprocs=4, scale="tiny",
        )
        plain = run_experiment(cfg)
        checked = run_experiment(cfg, check=True)
        assert plain.check is None
        assert checked.check is not None and checked.check.ok
        assert plain.stats.to_dict() == checked.stats.to_dict()


# ======================================================================
# execution-layer wiring
# ======================================================================
class TestExecWiring:
    def test_cache_extra_unchanged_without_check(self):
        # The unchecked keys are exactly the pre-checker behaviour:
        # a sweep without --check reuses existing cache entries.
        assert _cache_extra(None) is None
        assert _cache_extra(5000) == {"max_events": 5000}

    def test_cache_extra_partitions_checked_runs(self):
        assert _cache_extra(None, True) == {"check": True}
        assert _cache_extra(5000, True) == {"max_events": 5000, "check": True}

    def test_execute_attaches_check_counters(self):
        from repro.exec.pool import execute

        cfg = RunConfig(app="lu", protocol="sc", granularity=1024,
                        nprocs=2, scale="tiny")
        rec = execute(cfg, check=True)
        assert rec.ok
        assert rec.check == {
            "races": 0, "false_sharing": 0, "violations": 0,
        }
        plain = execute(cfg)
        assert plain.check is None

    def test_run_record_check_roundtrip(self):
        cfg = RunConfig(app="lu", protocol="sc", granularity=1024,
                        nprocs=2, scale="tiny")
        rec = RunRecord(config=cfg, ok=True,
                        check={"races": 1, "false_sharing": 0,
                               "violations": 2})
        back = RunRecord.from_json_dict(rec.to_json_dict())
        assert back.check == rec.check

    def test_sweep_check_bypasses_memo(self):
        from repro.harness import matrix

        matrix.clear_cache()
        results = matrix.sweep(
            ["lu"], protocols=("sc",), granularities=(1024,),
            scale="tiny", nprocs=2, check=True,
        )
        (rec,) = results.values()
        assert rec.ok and rec.check is not None
        assert not matrix._CACHE  # checked records never enter the memo

    def test_check_failure_message_carries_report(self):
        from repro.check.api import CheckReport

        rep = CheckReport(races_total=2, violations_total=1)
        exc = CheckFailure(rep, "lu/sc-64")
        assert "lu/sc-64" in str(exc)
        assert "2 race(s)" in str(exc)

    def test_cli_check_subcommand(self, capsys):
        from repro.harness.cli import main

        rc = main([
            "check", "--apps", "lu", "--protocols", "sc",
            "--scale", "tiny", "--nprocs", "2", "--granularity", "1024",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all cells clean" in out


# ======================================================================
# the simulator lint
# ======================================================================
def _load_lint():
    path = Path(__file__).resolve().parent.parent / "tools" / "lint_sim.py"
    spec = importlib.util.spec_from_file_location("lint_sim", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestLintSim:
    BAD = '''\
import random
import time


class P:
    def _h_msg(self, node, msg):
        yield 1.0

    def helper(self):
        return 2

    def stub(self):
        raise NotImplementedError

    def run(self):
        t = time.time()
        x = random.random()
        r = random.Random()
        seeded = random.Random(42)
        yield from self.helper()
        yield from self.stub()
        q = self.engine._queue
        quiet = time.monotonic()  # noqa: SIM001
        return t, x, r, seeded, q, quiet
'''

    def _lint_bad(self, tmp_path):
        lint = _load_lint()
        # The determinism rules key off the path, so place the file
        # inside a simulated sim-package directory.
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        f = pkg / "bad.py"
        f.write_text(self.BAD)
        return lint, lint.lint_file(f)

    def test_lint_flags_each_rule_once(self, tmp_path):
        _, findings = self._lint_bad(tmp_path)
        codes = sorted(f.code for f in findings)
        assert codes == ["SIM001", "SIM002", "SIM002", "SIM003",
                         "SIM004", "SIM005"]

    def test_lint_noqa_and_abstract_stub_exemptions(self, tmp_path):
        _, findings = self._lint_bad(tmp_path)
        lines = {f.line for f in findings}
        text = self.BAD.splitlines()
        # noqa'd wall-clock line not flagged
        noqa_line = next(i for i, l in enumerate(text, 1) if "noqa" in l)
        assert noqa_line not in lines
        # yield from self.stub() exempt: abstract raise-only stub
        stub_line = next(i for i, l in enumerate(text, 1) if "self.stub()" in l)
        assert stub_line not in lines
        # seeded Random(42) not flagged
        seeded_line = next(i for i, l in enumerate(text, 1) if "Random(42)" in l)
        assert seeded_line not in lines

    def test_lint_ignores_host_side_packages(self, tmp_path):
        lint = _load_lint()
        pkg = tmp_path / "repro" / "exec"
        pkg.mkdir(parents=True)
        f = pkg / "host.py"
        f.write_text("import time\n\nT = time.monotonic()\n")
        assert lint.lint_file(f) == []

    DROPPED = '''\
class App:
    def helper(self, dsm):
        yield from dsm.read(0, 4)

    def plain(self, dsm):
        return 7

    def program(self, dsm, rank, nprocs):
        self.helper(dsm)
        dsm.touch_write(0, 8)
        def local_gen():
            yield from dsm.barrier(0)
        local_gen()
        yield from self.helper(dsm)
        g = self.helper(dsm)
        self.plain(dsm)
        dsm.read(0, 4)  # noqa: SIM007
'''

    def test_lint_flags_dropped_generators(self, tmp_path):
        lint = _load_lint()
        f = tmp_path / "dropped.py"
        f.write_text(self.DROPPED)
        findings = lint.lint_file(f)
        assert [x.code for x in findings] == ["SIM007"] * 3
        text = self.DROPPED.splitlines()
        flagged = {x.line for x in findings}
        assert flagged == {
            next(i for i, l in enumerate(text, 1) if l.strip() == "self.helper(dsm)"),
            next(i for i, l in enumerate(text, 1) if "dsm.touch_write" in l),
            next(i for i, l in enumerate(text, 1) if l.strip() == "local_gen()"),
        }
        # driven, assigned, non-generator, and noqa'd calls stay clean
        assert all("yield from" not in text[x.line - 1] for x in findings)

    def test_source_tree_is_clean(self):
        lint = _load_lint()
        root = Path(__file__).resolve().parent.parent
        findings = []
        for base in ("src/repro", "tools"):
            for f in sorted((root / base).rglob("*.py")):
                findings.extend(lint.lint_file(f))
        assert not findings, "\n".join(str(f) for f in findings)
