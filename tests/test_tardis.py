"""The tardis timestamp-lease protocol: clean checked runs, the
no-invalidation-message property, timestamp invariants, registry
metadata, metadata accounting, and exhaustive model checking."""

import pytest

from repro.core.registry import memory_model_of, protocol_info
from repro.core.tardis import TS_BYTES, TardisProtocol
from repro.harness.experiment import RunConfig, run_experiment
from repro.stats.counters import protocol_metadata

#: message types sc-style protocols use that tardis must never send --
#: leases expire, nobody gets invalidated
SC_COHERENCE_MSGS = {"inval", "inval_ack", "recall_ro", "recall_inv"}


def _run(app="lu", protocol="tardis", granularity=1024, nprocs=16,
         check=True):
    return run_experiment(
        RunConfig(app=app, protocol=protocol, granularity=granularity,
                  nprocs=nprocs, scale="tiny"),
        check=check,
    )


class TestTardisRuns:
    @pytest.mark.parametrize("app", ["lu", "fft", "ocean-rowwise",
                                     "water-nsquared"])
    @pytest.mark.parametrize("granularity", [1024, 4096])
    def test_checked_run_clean(self, app, granularity):
        result = _run(app=app, granularity=granularity)
        rep = result.check
        assert rep.ok, rep.describe()
        assert result.stats.parallel_time_us > 0

    def test_no_invalidation_messages(self):
        result = _run(app="ocean-rowwise")
        sent = set(result.stats.msg_count)
        assert not (sent & SC_COHERENCE_MSGS), sent
        # Only tardis's own message vocabulary goes on the wire.
        assert sent <= {
            "t_read_req", "t_read_reply", "t_write_req", "t_write_reply",
            "t_wb_req", "t_wb_data", "t_own_ack",
            "lock_acq", "lock_rel", "lock_grant",
            "barrier_arrive", "barrier_release",
        }, sent

    def test_timestamp_invariants_at_end(self):
        result = _run(app="lu")
        p = result.machine.protocol
        assert p.entries, "run never created tardis entries"
        for block, e in p.entries.items():
            assert e.wts <= e.rts, (block, e.wts, e.rts)
            assert not e.busy and not e.pending
        # Leases never exceed their block's rts.
        for node_leases in p.lease:
            for block, lease in node_leases.items():
                assert lease <= p.entries[block].rts

    def test_interrupt_mechanism_also_clean(self):
        result = run_experiment(
            RunConfig(app="lu", protocol="tardis", granularity=1024,
                      nprocs=16, scale="tiny", mechanism="interrupt"),
            check=True,
        )
        assert result.check.ok, result.check.describe()


class TestTardisRegistry:
    def test_registered_with_lrc_model(self):
        info = protocol_info("tardis")
        assert info.cls is TardisProtocol
        assert info.memory_model == "lrc"
        assert info.uses_notices is False
        assert memory_model_of("tardis") == "lrc"


class TestTardisMetadata:
    def test_per_block_metadata_flat_in_n(self):
        per_entry = TS_BYTES + 4  # wts + rts + owner
        for n in (16, 128):
            result = _run(nprocs=n, check=False)
            m = protocol_metadata(result.machine)
            entries = len(result.machine.protocol.entries)
            assert m.components["timestamps"] == per_entry * entries
            assert m.per_block == per_entry  # flat: independent of n
            # pts/leases are O(1)-width per node/copy, reported aside.
            assert set(m.node_components) == {"pts", "leases"}

    def test_smaller_than_sc_at_128(self):
        """The scale-smoke CI assertion, pinned as a test."""
        tardis = protocol_metadata(_run(nprocs=128, check=False).machine)
        sc = protocol_metadata(
            _run(protocol="sc", nprocs=128, check=False).machine
        )
        assert tardis.meta_bytes < sc.meta_bytes


class TestTardisModelChecking:
    @pytest.mark.parametrize("litmus", ["sb", "mp", "lb"])
    def test_exhaustive_litmus(self, litmus):
        from repro.mc import Explorer, get_litmus

        r = Explorer(get_litmus(litmus), "tardis", 64,
                     max_schedules=3000).run()
        assert r.complete, f"{litmus} did not exhaust in budget"
        assert not r.forbidden, r.forbidden
        assert r.check_failures == 0
