"""Tests for the barrier service."""

import pytest

from repro import Machine, MachineParams, run_program

PROTOCOLS = ["sc", "swlrc", "hlrc", "dc", "erc"]


def make(protocol="sc", n=4):
    return Machine(MachineParams(n_nodes=n, granularity=1024), protocol=protocol)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_barrier_waits_for_all(protocol):
    m = make(protocol)
    release_times = []

    def program(dsm, rank, nprocs):
        yield from dsm.compute(100.0 * (rank + 1))
        yield from dsm.barrier(0, participants=nprocs)
        release_times.append(dsm.now)

    run_program(m, program, nprocs=4)
    # Nobody is released before the slowest arrival (rank 3 at ~400us).
    assert min(release_times) > 400.0
    # All released within a short broadcast window of each other.
    assert max(release_times) - min(release_times) < 200.0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_barrier_reusable_across_episodes(protocol):
    m = make(protocol)
    counts = []

    def program(dsm, rank, nprocs):
        for it in range(5):
            yield from dsm.barrier(7, participants=nprocs)
        counts.append(1)

    r = run_program(m, program, nprocs=4)
    assert len(counts) == 4
    assert all(n.barriers == 5 for n in r.stats.nodes[:4])


def test_two_distinct_barriers_do_not_interfere():
    m = make()
    log = []

    def program(dsm, rank, nprocs):
        if rank < 2:
            yield from dsm.barrier(1, participants=2)
            log.append(("b1", rank, dsm.now))
        else:
            yield from dsm.compute(1000.0)
            yield from dsm.barrier(2, participants=2)
            log.append(("b2", rank, dsm.now))

    run_program(m, program, nprocs=4)
    b1 = [t for tag, _, t in log if tag == "b1"]
    b2 = [t for tag, _, t in log if tag == "b2"]
    assert max(b1) < min(b2)


def test_subset_barrier():
    m = make(n=8)

    def program(dsm, rank, nprocs):
        yield from dsm.barrier(0, participants=nprocs)
        return rank

    r = run_program(m, program, nprocs=3)
    assert r.results == [0, 1, 2]


def test_barrier_manager_distribution():
    m = make(n=4)
    assert m.barriers.manager_of(0) == 0
    assert m.barriers.manager_of(6) == 2


def test_lrc_barrier_carries_notices():
    """Under HLRC a barrier release propagates write notices; under SC
    it does not."""
    applied = {}
    for proto in ("sc", "hlrc"):
        m = Machine(MachineParams(n_nodes=4, granularity=256), protocol=proto)
        seg = m.alloc(4096, "x")
        m.place(seg.base, 4096, 0)

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from dsm.touch_write(seg.base, 1024, pattern=7)
            yield from dsm.barrier(0, participants=nprocs)
            yield from dsm.touch_read(seg.base, 1024)
            yield from dsm.barrier(0, participants=nprocs)

        r = run_program(m, program, nprocs=4)
        applied[proto] = r.stats.write_notices_applied
    assert applied["hlrc"] > 0
    assert applied["sc"] == 0


def test_barrier_wait_time_accounted():
    m = make()

    def program(dsm, rank, nprocs):
        if rank == 0:
            yield from dsm.compute(10_000.0)
        yield from dsm.barrier(0, participants=nprocs)

    r = run_program(m, program, nprocs=2)
    # Rank 1 waited ~10ms for rank 0.
    assert r.stats.nodes[1].barrier_wait_us > 8000.0
    assert r.stats.nodes[0].barrier_wait_us < 2000.0
