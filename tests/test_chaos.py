"""Tests for the chaos layer: seeded fault plans, the reliable
transport, and the degradation-sweep harness.

The contract under test, end to end: with a :class:`FaultSpec` in the
config the interconnect drops/duplicates/reorders messages, the
transport recovers losses by ack/retransmit and restores per-link FIFO
exactly-once delivery to the protocols, and the whole thing is
bit-reproducible from the seed.  Without a spec, nothing changes --
fault-free runs must stay byte-identical to pre-chaos builds.
"""

import json
import hashlib

import pytest

from repro.cluster.config import MachineParams
from repro.cluster.machine import Machine
from repro.exec import ResultCache, config_from_dict, config_to_dict, execute
from repro.harness.experiment import RunConfig, run_experiment
from repro.net.faultplan import FaultPlan, FaultSpec
from repro.net.reliable import ACK_MTYPE, TransportError
from repro.sim.engine import SimulationError

CHAOS = FaultSpec(seed=0, drop_prob=0.05, dup_prob=0.01, reorder_prob=0.02)


def chaos_cfg(app="lu", protocol="hlrc", granularity=1024, spec=CHAOS, **kw):
    return RunConfig(app=app, protocol=protocol, granularity=granularity,
                     nprocs=kw.pop("nprocs", 4), scale=kw.pop("scale", "tiny"),
                     faults=spec, **kw)


def stats_sha(stats) -> str:
    payload = json.dumps(stats.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_prob=-0.1).validate()
        with pytest.raises(ValueError):
            FaultSpec(drop_prob=1.5).validate()
        with pytest.raises(ValueError):
            FaultSpec(max_retransmits=0).validate()
        FaultSpec().validate()  # all-zero spec is legal (untrusted wire)

    def test_label_names_active_axes(self):
        label = FaultSpec(seed=7, drop_prob=0.05).label()
        assert "s7" in label and "drop0.05" in label
        assert "dup" not in label

    def test_dict_round_trip(self):
        spec = FaultSpec(seed=3, drop_prob=0.1, dup_prob=0.02,
                         stall_nodes=2, stall_period_us=500.0,
                         stall_duration_us=50.0)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_frozen_and_hashable(self):
        spec = FaultSpec(drop_prob=0.1)
        assert hash(spec) == hash(FaultSpec(drop_prob=0.1))
        with pytest.raises(Exception):
            spec.drop_prob = 0.2


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(CHAOS, 4)
        b = FaultPlan(CHAOS, 4)
        for _ in range(200):
            assert a.decide(0, 1) == b.decide(0, 1)
            assert a.decide(2, 3) == b.decide(2, 3)

    def test_link_factor_bounds_and_stability(self):
        spec = FaultSpec(seed=1, link_inflation_max=0.5)
        plan = FaultPlan(spec, 4)
        for s in range(4):
            for d in range(4):
                f = plan.link_factor(s, d)
                assert 1.0 <= f <= 1.5
                assert plan.link_factor(s, d) == f  # fixed per link

    def test_inactive_axes_draw_nothing(self):
        plan = FaultPlan(FaultSpec(seed=0), 4)
        assert plan.decide(0, 1) is None
        assert plan.link_factor(0, 1) == 1.0
        assert plan.stall_delay(1, 1234.5) == 0.0

    def test_stall_windows(self):
        spec = FaultSpec(seed=0, stall_nodes=4, stall_period_us=1000.0,
                         stall_duration_us=100.0)
        plan = FaultPlan(spec, 4)
        phase = plan._stall_phase[0]
        # Arrival right at the window start waits out the whole window;
        # arrival just past the window's end is untouched.
        assert plan.stall_delay(0, phase) == pytest.approx(100.0)
        assert plan.stall_delay(0, phase + 100.0) == 0.0


class TestMachineWiring:
    def test_fault_free_machine_has_no_transport(self):
        m = Machine(MachineParams(n_nodes=2, granularity=1024))
        assert m.transport is None and m.fault_plan is None
        assert m.send == m.network.send
        assert "transport" not in m.stats.to_dict()

    def test_chaos_machine_routes_through_transport(self):
        m = Machine(MachineParams(n_nodes=2, granularity=1024), faults=CHAOS)
        assert m.transport is not None
        assert m.send == m.transport.send
        assert m.network._deliver == m.transport.on_wire
        assert "transport" in m.stats.to_dict()


class TestReliableTransport:
    def test_fifo_restored_under_heavy_reorder(self):
        # Per-link sequence numbers must reach the nodes in order even
        # when nearly every transmission gets a random extra delay.
        spec = FaultSpec(seed=2, reorder_prob=0.9, reorder_max_us=5000.0,
                         dup_prob=0.1)
        cfg = chaos_cfg(spec=spec)
        seen = {}
        orders_checked = 0

        machine = Machine(
            MachineParams(n_nodes=cfg.nprocs, granularity=cfg.granularity),
            protocol=cfg.protocol, faults=spec,
        )
        orig = machine.deliver_to_node

        def watching(msg):
            nonlocal orders_checked
            if msg.seq >= 0:
                last = seen.get((msg.src, msg.dst), -1)
                assert msg.seq == last + 1, "per-link FIFO violated"
                seen[(msg.src, msg.dst)] = msg.seq
                orders_checked += 1
            orig(msg)

        machine.deliver_to_node = watching
        from repro.apps import make_app
        from repro.runtime.program import run_program

        app = make_app(cfg.app, scale=cfg.scale)
        app.setup(machine)
        run_program(machine, app.program, nprocs=cfg.nprocs,
                    sequential_time_us=app.sequential_time_us())
        assert orders_checked > 50
        assert machine.stats.transport.reorder_buffered > 0

    def test_drop_recovery_and_counters(self):
        r = run_experiment(chaos_cfg())
        t = r.stats.transport
        assert r.stats.speedup > 0
        assert t.drops > 0
        assert t.timeouts >= t.drops  # every lost copy timed out
        assert t.retransmits >= 1
        assert t.dup_suppressed >= t.dup_injected - t.drops
        # Acks are real wire messages, counted as traffic.
        assert r.stats.msg_count[ACK_MTYPE] == t.acks_sent
        assert t.acks_sent > 0

    def test_retransmit_exhaustion_raises(self):
        spec = FaultSpec(seed=0, drop_prob=1.0, max_retransmits=2,
                         rto_us=100.0)
        with pytest.raises(TransportError):
            run_experiment(chaos_cfg(spec=spec))

    def test_transport_error_is_simulation_error(self):
        # Deterministic outcome: the exec layer records and caches it.
        assert issubclass(TransportError, SimulationError)

    def test_exhaustion_recorded_and_cached(self, tmp_path):
        spec = FaultSpec(seed=0, drop_prob=1.0, max_retransmits=2,
                         rto_us=100.0)
        cfg = chaos_cfg(spec=spec)
        cache = ResultCache(tmp_path)
        rec = execute(cfg, cache=cache)
        assert not rec.ok and rec.error_type == "TransportError"
        hit = cache.get(cfg)
        assert hit is not None and hit.error_type == "TransportError"


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        a = run_experiment(chaos_cfg())
        b = run_experiment(chaos_cfg())
        assert stats_sha(a.stats) == stats_sha(b.stats)

    def test_different_seed_differs(self):
        a = run_experiment(chaos_cfg())
        b = run_experiment(
            chaos_cfg(spec=FaultSpec(seed=99, drop_prob=0.05,
                                     dup_prob=0.01, reorder_prob=0.02))
        )
        assert stats_sha(a.stats) != stats_sha(b.stats)

    def test_fault_free_stats_have_no_chaos_keys(self):
        r = run_experiment(chaos_cfg(spec=None))
        d = r.stats.to_dict()
        assert "transport" not in d
        assert "drops" not in r.stats.summary()


class TestConfigPlumbing:
    def test_label_carries_chaos_suffix(self):
        assert "chaos[" in chaos_cfg().label()
        assert "chaos[" not in chaos_cfg(spec=None).label()

    def test_serialize_round_trip_with_faults(self):
        cfg = chaos_cfg()
        clone = config_from_dict(json.loads(json.dumps(config_to_dict(cfg))))
        assert clone == cfg
        assert isinstance(clone.faults, FaultSpec)

    def test_fault_free_payload_unchanged(self):
        # Pre-chaos cache keys stay valid: no 'faults' key at all.
        d = config_to_dict(chaos_cfg(spec=None))
        assert "faults" not in d

    def test_cache_keys_partition_on_spec(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        base = chaos_cfg(spec=None)
        k0 = cache.key(base)
        k1 = cache.key(chaos_cfg())
        k2 = cache.key(chaos_cfg(spec=FaultSpec(seed=1, drop_prob=0.05,
                                                dup_prob=0.01,
                                                reorder_prob=0.02)))
        assert len({k0, k1, k2}) == 3


class TestChaosHarness:
    def test_degradation_table_marks_failures(self):
        from repro.exec.serialize import RunRecord
        from repro.harness.chaos import (
            chaos_spec,
            degradation_table,
            failure_rows,
        )

        ok_cfg = chaos_cfg(spec=None)
        bad_cfg = chaos_cfg()
        ok = execute(ok_cfg)
        bad = RunRecord.from_failure(bad_cfg, TransportError("budget"))
        results = {ok_cfg: ok, bad_cfg: bad}
        text = degradation_table(
            results, ["lu"], ["hlrc"], [1024], [0.0, 0.05]
        )
        assert "FAIL" in text and "base" in text
        rows = failure_rows(results)
        assert len(rows) == 1 and rows[0][1] == "TransportError"
        assert chaos_spec(0.0) is None
        assert chaos_spec(0.05, seed=4).drop_prob == 0.05

    def test_chaos_section_lists_failures(self):
        from repro.exec.serialize import RunRecord
        from repro.harness.chaos import chaos_section

        bad_cfg = chaos_cfg()
        section = chaos_section(
            {bad_cfg: RunRecord.from_failure(bad_cfg, TransportError("x"))},
            ["lu"], ["hlrc"], [1024], [0.05],
        )
        assert "FAIL" in section and "TransportError" in section

    def test_acceptance_matrix_checker_clean_at_5pct(self):
        # The PR's acceptance criterion: all three protocols complete
        # lu and ocean-rowwise at a 5% drop rate with zero findings
        # from the race detector and invariant sanitizer.
        for app in ("lu", "ocean-rowwise"):
            for proto in ("sc", "swlrc", "hlrc"):
                cfg = chaos_cfg(app=app, protocol=proto)
                r = run_experiment(cfg, check=True)
                rep = r.check
                assert rep.ok, f"{cfg.label()}: {rep.describe()}"
                assert r.stats.transport.drops > 0
                assert r.stats.speedup > 0
