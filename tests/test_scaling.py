"""The scaling redesign: protocol registry, Clock representations,
sharded copysets, tiered hop distances, the scale sweep, and the
bit-identity contract at paper scale (48-cell stats-sha fingerprint)."""

import hashlib
import json
import random

import pytest

from repro.cluster.config import LINE_TOPOLOGY_MAX_NODES, hops_between
from repro.core import registry
from repro.core.sc import (
    PLAIN_COPYSET_MAX,
    ShardedCopyset,
    copyset_bytes,
    make_copyset,
)
from repro.core.timestamps import (
    DENSE_CLOCK_MAX,
    SparseClock,
    VectorClock,
    make_clock,
)
from repro.harness.experiment import RunConfig, run_experiment


# ---------------------------------------------------------------------------
# protocol registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_paper_trio_plus_extensions_available(self):
        names = registry.available_protocols()
        for name in ("sc", "swlrc", "hlrc", "dc", "erc", "tardis"):
            assert name in names

    def test_get_protocol_returns_classes(self):
        from repro.core.hlrc import HLRCProtocol
        from repro.core.sc import SCProtocol

        assert registry.get_protocol("sc") is SCProtocol
        assert registry.get_protocol("hlrc") is HLRCProtocol

    def test_memory_models(self):
        assert registry.memory_model_of("sc") == "sc"
        for name in ("swlrc", "hlrc", "dc", "erc", "tardis"):
            assert registry.memory_model_of(name) == "lrc"

    def test_unknown_protocol_raises(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            registry.get_protocol("nope")

    def test_protocol_orderings(self):
        assert registry.evaluated_protocols() == ("sc", "swlrc", "hlrc")
        assert registry.scaling_protocols() == ("sc", "swlrc", "hlrc",
                                                "tardis")

    def test_canary_registers_through_registry(self):
        import repro.mc.broken  # noqa: F401 -- import-time registration

        info = registry.protocol_info("swlrc-broken")
        assert info.memory_model == "lrc"
        assert "swlrc-broken" in registry.available_protocols()
        # ...but the canary never leaks into the evaluation sets.
        assert "swlrc-broken" not in registry.evaluated_protocols()
        assert "swlrc-broken" not in registry.scaling_protocols()

    def test_machine_dispatches_through_registry(self):
        from repro import Machine, MachineParams

        with pytest.raises(ValueError, match="unknown protocol"):
            Machine(MachineParams(n_nodes=2), protocol="bogus")

    def test_registry_in_fingerprint_scope(self):
        from repro.exec.cache import _fingerprint_relevant

        assert _fingerprint_relevant("core/registry.py")
        assert _fingerprint_relevant("core/tardis.py")
        assert _fingerprint_relevant("core/timestamps.py")


# ---------------------------------------------------------------------------
# Clock representations
# ---------------------------------------------------------------------------
def _random_ops(n, seed, steps=300):
    """One seeded op trace, applied to both representations in
    lockstep; any divergence fails immediately."""
    rng = random.Random(seed)
    dense = [VectorClock(n) for _ in range(3)]
    sparse = [SparseClock(n) for _ in range(3)]
    for step in range(steps):
        i = rng.randrange(3)
        op = rng.randrange(4)
        if op == 0:
            node = rng.randrange(n)
            assert dense[i].tick(node) == sparse[i].tick(node)
        elif op == 1:
            j = rng.randrange(3)
            dense[i].merge(dense[j])
            sparse[i].merge(sparse[j])
        elif op == 2:
            j = rng.randrange(3)
            assert dense[i].dominates(dense[j]) == \
                sparse[i].dominates(sparse[j]), (step, i, j)
        else:
            node = rng.randrange(n)
            assert dense[i][node] == sparse[i][node]
        assert dense[i].as_tuple() == sparse[i].as_tuple(), step


class TestClockDifferential:
    @pytest.mark.parametrize("n", [16, 64, 1024])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sparse_matches_dense_op_by_op(self, n, seed):
        _random_ops(n, seed)

    def test_cross_representation_merge(self):
        dense, sparse = VectorClock(8), SparseClock(8)
        dense.tick(3)
        sparse.tick(5)
        sparse.merge(dense)   # sparse absorbs a dense operand
        dense.merge(sparse)   # and vice versa
        assert dense.as_tuple() == sparse.as_tuple()

    def test_sparse_sublinear_single_writer(self):
        """A single-writer clock costs O(1) sparse, O(N) dense."""
        for n in (64, 1024):
            dense, sparse = VectorClock(n), SparseClock(n)
            for _ in range(50):
                dense.tick(0)
                sparse.tick(0)
            assert sparse.bytes_used() < dense.bytes_used() / 8
        # ...and the footprint does not grow with n at all
        assert SparseClock(1024).bytes_used() == SparseClock(64).bytes_used()

    def test_make_clock_threshold(self):
        assert isinstance(make_clock(DENSE_CLOCK_MAX), VectorClock)
        assert isinstance(make_clock(DENSE_CLOCK_MAX + 1), SparseClock)
        assert isinstance(make_clock(16), VectorClock)


# ---------------------------------------------------------------------------
# sharded copysets
# ---------------------------------------------------------------------------
class TestShardedCopyset:
    def test_set_semantics(self):
        cs = ShardedCopyset()
        for node in (5, 70, 5, 300, 64):
            cs.add(node)
        assert len(cs) == 4
        assert 70 in cs and 6 not in cs
        assert sorted(cs) == [5, 64, 70, 300]
        cs.discard(70)
        cs.discard(70)  # idempotent
        assert len(cs) == 3 and 70 not in cs
        assert cs == {5, 64, 300}
        assert cs - {5} == {64, 300}
        cs.clear()
        assert len(cs) == 0 and list(cs) == []

    def test_iteration_order_is_sorted(self):
        cs = ShardedCopyset()
        for node in (900, 3, 450, 64, 65):
            cs.add(node)
        assert list(cs) == sorted(cs)

    def test_make_copyset_threshold(self):
        assert isinstance(make_copyset(PLAIN_COPYSET_MAX), set)
        assert isinstance(make_copyset(PLAIN_COPYSET_MAX + 1),
                          ShardedCopyset)

    def test_bytes_used_sparse(self):
        cs = make_copyset(1024)
        for node in range(0, 1024, 128):  # 8 sharers across 8 shards
            cs.add(node)
        # o(N): bounded by sharers, not by the 1024-node bitmap
        assert copyset_bytes(cs) < 1024 // 8
        assert copyset_bytes({1, 2, 3}) == 12


# ---------------------------------------------------------------------------
# hop distances
# ---------------------------------------------------------------------------
class TestHopDistances:
    def test_16_nodes_unchanged(self):
        # The paper's line of three switches: nodes 0-5, 6-11, 12-15.
        assert hops_between(0, 5, 16) == 0
        assert hops_between(0, 6, 16) == 1
        assert hops_between(0, 12, 16) == 2
        assert hops_between(11, 12, 16) == 1
        # Legacy call sites omit n_nodes and get the same line.
        assert hops_between(0, 12) == 2

    def test_32_nodes_still_a_line(self):
        assert LINE_TOPOLOGY_MAX_NODES == 32
        assert hops_between(0, 31, 32) == 5

    def test_128_nodes_tiered(self):
        assert hops_between(0, 5, 128) == 0     # same leaf
        assert hops_between(0, 7, 128) == 2     # same spine group
        assert hops_between(0, 47, 128) == 2    # leaf 7, last in group
        assert hops_between(0, 48, 128) == 4    # leaf 8, next spine
        assert hops_between(0, 127, 128) == 4   # all within one core

    def test_1024_nodes_constant_diameter(self):
        assert hops_between(0, 5, 1024) == 0
        assert hops_between(0, 47, 1024) == 2
        assert hops_between(0, 300, 1024) == 4      # same core group
        assert hops_between(0, 1023, 1024) == 6     # across core groups
        # Diameter is 6 no matter how far apart the nodes are.
        assert max(hops_between(0, b, 1024) for b in range(0, 1024, 97)) == 6

    def test_network_hop_table_matches_helper(self):
        from repro.cluster.config import MachineParams, switch_of
        from repro.net.myrinet import Network
        from repro.sim.engine import Engine
        from repro.stats.counters import Stats

        for n in (16, 128):
            params = MachineParams(n_nodes=n)
            net = Network(Engine(), params, Stats(n), lambda m: None)
            for a, b in ((0, n - 1), (1, n // 2), (7, 13)):
                expect = hops_between(a, b, n) * params.switch_hop_us
                assert net._hop_us[switch_of(a)][switch_of(b)] == expect


# ---------------------------------------------------------------------------
# scale sweep
# ---------------------------------------------------------------------------
class TestScaleSweep:
    def test_smoke_with_checkers(self):
        from repro.harness.scale import render_scale_report, scale_sweep

        report = scale_sweep(
            apps=("lu",),
            protocols=("sc", "tardis"),
            granularities=(1024,),
            node_counts=(16, 64),
            check=True,
        )
        assert len(report.cells) == 4
        assert report.ok
        assert all(c.check_ok for c in report.cells)
        assert all(c.speedup > 0 for c in report.cells)

        text = render_scale_report(report)
        assert "### Speedup" in text
        assert "### Metadata bytes per block" in text
        assert "zero findings" in text

        data = json.loads(report.to_json())
        assert len(data["cells"]) == 4
        assert data["cells"][0]["metadata"]["per_block"] > 0

    def test_metadata_growth_separation(self):
        """The acceptance curve: per-block metadata flat in N for
        tardis, growing for the dense equivalents of the paper trio."""
        from repro.harness.scale import scale_sweep

        report = scale_sweep(
            apps=("lu",),
            granularities=(1024,),
            node_counts=(16, 128),
        )
        for proto in ("sc", "swlrc", "hlrc"):
            small = report.cell("lu", proto, 1024, 16).metadata
            big = report.cell("lu", proto, 1024, 128).metadata
            assert big.per_block_dense > small.per_block_dense, proto
        t16 = report.cell("lu", "tardis", 1024, 16).metadata
        t128 = report.cell("lu", "tardis", 1024, 128).metadata
        assert t16.per_block == t128.per_block


# ---------------------------------------------------------------------------
# bit-identity at paper scale
# ---------------------------------------------------------------------------
#: stats-shas of the 48-cell (4 apps x 3 protocols x 4 granularities)
#: matrix at 16 nodes, captured on the pre-refactor seed.  The registry,
#: Clock, copyset, and hop-table redesigns are representation-only at
#: paper scale: these must never change.
BASELINE_SHAS = {
    "fft/hlrc/1024": "bfa73a016739de33", "fft/hlrc/256": "afaab7ccdac0037c",
    "fft/hlrc/4096": "40f5a5f2bfcbe470", "fft/hlrc/64": "ae0421e381d49e38",
    "fft/sc/1024": "ae98e16d12d5c2d5", "fft/sc/256": "c9d25a9b3cdeabe0",
    "fft/sc/4096": "b4b0908ea93b1c2f", "fft/sc/64": "08aeb2f585b70a34",
    "fft/swlrc/1024": "2ed52ce486c4b291", "fft/swlrc/256": "f5f6f62372d170a5",
    "fft/swlrc/4096": "bee09c65904a468f", "fft/swlrc/64": "734c45eca22c5d72",
    "lu/hlrc/1024": "ff62a23ec4f4666b", "lu/hlrc/256": "3d08460a328e6d50",
    "lu/hlrc/4096": "d739a26b340774a1", "lu/hlrc/64": "1a0390d3a1b1caa1",
    "lu/sc/1024": "b1f41edd822f5fdd", "lu/sc/256": "1cc04aef7ec9a2cb",
    "lu/sc/4096": "e4d1c3f3ab57afcf", "lu/sc/64": "c38a74cf30777a19",
    "lu/swlrc/1024": "3e59b93ac9c851bf", "lu/swlrc/256": "3f3383ea9916086b",
    "lu/swlrc/4096": "1c82e637b9acac7d", "lu/swlrc/64": "915dcc79e1fb4b1a",
    "ocean-rowwise/hlrc/1024": "6aca90442c59080c",
    "ocean-rowwise/hlrc/256": "ebc31e1bac8cf603",
    "ocean-rowwise/hlrc/4096": "70b627cc85638d3b",
    "ocean-rowwise/hlrc/64": "e293a75e5a4b1a2d",
    "ocean-rowwise/sc/1024": "927fc00aa228d850",
    "ocean-rowwise/sc/256": "68113f1760d6b147",
    "ocean-rowwise/sc/4096": "eaefbff107dfd997",
    "ocean-rowwise/sc/64": "99f5756e956de678",
    "ocean-rowwise/swlrc/1024": "35eb4d4f1d03bb70",
    "ocean-rowwise/swlrc/256": "c6b25949ab1a1fb0",
    "ocean-rowwise/swlrc/4096": "477a53fb80fbc901",
    "ocean-rowwise/swlrc/64": "ba01a12bbe052897",
    "water-nsquared/hlrc/1024": "b8cd20d7af7d2489",
    "water-nsquared/hlrc/256": "cf5f54127d855031",
    "water-nsquared/hlrc/4096": "e30e4dfb98b2b0b5",
    "water-nsquared/hlrc/64": "fa806468c9f2e019",
    "water-nsquared/sc/1024": "482eeb9f8f4908fd",
    "water-nsquared/sc/256": "22cbaabe444346cb",
    "water-nsquared/sc/4096": "4b948cc642c4a5ed",
    "water-nsquared/sc/64": "8511414547e7b8b2",
    "water-nsquared/swlrc/1024": "0f256a70218bc6b4",
    "water-nsquared/swlrc/256": "5e7039329e4b45bf",
    "water-nsquared/swlrc/4096": "10cfcb7b3e9d8bc8",
    "water-nsquared/swlrc/64": "71e6d2f41dddcf85",
}


def stats_sha(stats) -> str:
    payload = json.dumps(stats.to_dict(), sort_keys=True, default=float)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@pytest.mark.parametrize("app", ["lu", "fft", "ocean-rowwise",
                                 "water-nsquared"])
def test_fingerprint_matrix_bit_identical(app):
    """12 cells per app (3 protocols x 4 granularities), 16 nodes."""
    mismatches = []
    for protocol in ("sc", "swlrc", "hlrc"):
        for granularity in (64, 256, 1024, 4096):
            result = run_experiment(RunConfig(
                app=app, protocol=protocol, granularity=granularity,
                nprocs=16, scale="tiny",
            ))
            key = f"{app}/{protocol}/{granularity}"
            got = stats_sha(result.stats)
            if got != BASELINE_SHAS[key]:
                mismatches.append(f"{key}: {got} != {BASELINE_SHAS[key]}")
    assert not mismatches, "\n".join(mismatches)
