"""Tests for the execution-time breakdown reporting."""

import pytest

from repro.stats.breakdown import CATEGORIES, Breakdown, breakdown, breakdown_table
from repro.stats.counters import Stats


def make_stats(n=2, parallel=1000.0, compute=600.0, fault=100.0, lock=50.0,
               barrier=150.0, handler=20.0):
    stats = Stats(n)
    stats.parallel_time_us = parallel
    for node in stats.nodes:
        node.compute_us = compute
        node.fault_wait_us = fault
        node.lock_wait_us = lock
        node.barrier_wait_us = barrier
        node.handler_us = handler
    return stats


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        bd = breakdown(make_stats())
        assert sum(bd.fractions.values()) == pytest.approx(1.0)

    def test_fractions_match_inputs(self):
        bd = breakdown(make_stats())
        assert bd["compute"] == pytest.approx(0.6)
        assert bd["fault"] == pytest.approx(0.1)
        assert bd["barrier"] == pytest.approx(0.15)
        assert bd["other"] == pytest.approx(0.08)

    def test_dominant(self):
        assert breakdown(make_stats()).dominant() == "compute"
        assert breakdown(
            make_stats(compute=10.0, barrier=900.0)
        ).dominant() == "barrier"

    def test_zero_parallel_time_rejected(self):
        with pytest.raises(ValueError):
            breakdown(make_stats(parallel=0.0))

    def test_oversubscribed_counters_normalize(self):
        """If counters exceed wall time (overlap), fractions still sum
        to <= 1 via renormalization."""
        bd = breakdown(make_stats(compute=2000.0))
        assert sum(bd.fractions.values()) <= 1.0 + 1e-9

    def test_subset_of_nodes(self):
        stats = make_stats(n=4)
        stats.nodes[3].compute_us = 0.0
        bd = breakdown(stats, nprocs=2)
        assert bd.total_us == 2000.0

    def test_bar_render(self):
        bar = breakdown(make_stats()).bar(width=20)
        assert len(bar) <= 20
        assert "=" in bar

    def test_table_render(self):
        bd = breakdown(make_stats())
        txt = breakdown_table([("lu/sc-64", bd)])
        assert "lu/sc-64" in txt
        for cat in CATEGORIES:
            assert cat in txt


class TestBreakdownOnRealRun:
    def test_compute_bound_program(self):
        from repro import Machine, MachineParams, run_program

        m = Machine(MachineParams(n_nodes=2, granularity=1024), protocol="sc")

        def program(dsm, rank, nprocs):
            yield from dsm.compute(10_000.0)
            yield from dsm.barrier(0, participants=nprocs)

        r = run_program(m, program, nprocs=2)
        bd = breakdown(r.stats, nprocs=2)
        assert bd.dominant() == "compute"
        assert bd["compute"] > 0.9
