"""Tests for the application suite: registry, cost models, partition
helpers, determinism, and cross-protocol runnability at tiny scale."""

import pytest

from repro.apps import APP_NAMES, ORIGINAL_8, VERSION_GROUPS, make_app
from repro.apps.base import Application
from repro.cluster.config import MachineParams
from repro.cluster.machine import Machine
from repro.harness.calibration import TABLE1
from repro.runtime.program import run_program


class TestRegistry:
    def test_all_twelve_applications_registered(self):
        assert len(APP_NAMES) == 12
        for name in APP_NAMES:
            app = make_app(name, "tiny")
            assert app.name == name

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            make_app("nonesuch")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            make_app("lu", scale="gigantic")

    def test_version_groups_cover_all_names(self):
        listed = [v for vs in VERSION_GROUPS.values() for v in vs]
        assert sorted(listed) == sorted(APP_NAMES)

    def test_original_8_subset(self):
        assert len(ORIGINAL_8) == 8
        assert set(ORIGINAL_8) <= set(APP_NAMES)

    def test_overrides_apply(self):
        app = make_app("lu", "tiny", n=128)
        assert app.n == 128


class TestCostModels:
    @pytest.mark.parametrize("name,_size,paper_s", TABLE1)
    def test_full_scale_matches_table1(self, name, _size, paper_s):
        app = make_app(name, "full")
        model_s = app.sequential_time_us() / 1e6
        assert abs(model_s / paper_s - 1.0) < 0.05, (name, model_s, paper_s)

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_scales_are_ordered(self, name):
        tiny = make_app(name, "tiny").sequential_time_us()
        default = make_app(name, "default").sequential_time_us()
        full = make_app(name, "full").sequential_time_us()
        assert 0 < tiny < default < full

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_classification_attributes_present(self, name):
        app = make_app(name, "tiny")
        assert app.writers in ("single", "multiple")
        assert app.access_grain in ("coarse", "fine")
        assert app.sync_grain in ("coarse", "fine")
        assert app.poll_dilation >= 0


class TestSplit:
    def test_even_split(self):
        assert Application.split(16, 4, 0) == (0, 4)
        assert Application.split(16, 4, 3) == (12, 16)

    def test_uneven_split_covers_all(self):
        n, p = 13, 4
        pieces = [Application.split(n, p, r) for r in range(p)]
        assert pieces[0][0] == 0
        assert pieces[-1][1] == n
        for (a, b), (c, d) in zip(pieces, pieces[1:]):
            assert b == c
        sizes = [hi - lo for lo, hi in pieces]
        assert max(sizes) - min(sizes) <= 1

    def test_pattern_varies_and_nonzero(self):
        a = Application.pattern(1, 2)
        b = Application.pattern(1, 3)
        assert a != 0 and b != 0
        assert 0 <= a <= 255


class TestRunnability:
    """Each app must run to completion under each protocol at tiny
    scale; the per-rank compute totals must match the cost model."""

    @pytest.mark.parametrize("name", APP_NAMES)
    @pytest.mark.parametrize("protocol", ["sc", "swlrc", "hlrc"])
    def test_runs_to_completion(self, name, protocol):
        app = make_app(name, "tiny")
        m = Machine(
            MachineParams(n_nodes=4, granularity=1024),
            protocol=protocol,
            poll_dilation=app.poll_dilation,
        )
        m.engine._max_events = 5_000_000
        app.setup(m)
        r = run_program(m, app.program, nprocs=4,
                        sequential_time_us=app.sequential_time_us())
        assert r.stats.parallel_time_us > 0
        assert 0 < r.speedup < 4.5  # never superlinear beyond nprocs

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_compute_totals_match_sequential_model(self, name):
        """Sum of per-rank compute ~ the sequential cost model (so
        speedups are meaningful).  Polling dilation distorts this, so
        measure under interrupts."""
        from repro.cluster.config import NotificationMechanism

        app = make_app(name, "tiny")
        m = Machine(
            MachineParams(n_nodes=4, granularity=1024,
                          mechanism=NotificationMechanism.INTERRUPT),
            protocol="sc",
        )
        m.engine._max_events = 5_000_000
        app.setup(m)
        r = run_program(m, app.program, nprocs=4,
                        sequential_time_us=app.sequential_time_us())
        total = r.stats.total_compute_us
        seq = app.sequential_time_us()
        assert total == pytest.approx(seq, rel=0.30), (name, total, seq)

    def test_deterministic_across_runs(self):
        def run_once():
            app = make_app("volrend-original", "tiny")
            m = Machine(MachineParams(n_nodes=4, granularity=1024),
                        protocol="hlrc", poll_dilation=app.poll_dilation)
            app.setup(m)
            r = run_program(m, app.program, nprocs=4,
                            sequential_time_us=app.sequential_time_us())
            return (r.stats.parallel_time_us, r.stats.read_faults,
                    r.stats.write_faults, r.stats.total_messages)

        assert run_once() == run_once()


class TestLUStructure:
    def test_owner_scatter_is_balanced(self):
        app = make_app("lu", "tiny")
        from collections import Counter

        owners = Counter(
            app.owner(i, j, 16) for i in range(app.nb) for j in range(app.nb)
        )
        assert len(owners) == min(16, app.nb * app.nb)
        assert max(owners.values()) - min(owners.values()) <= app.nb

    def test_blocks_grouped_per_owner_no_page_sharing(self):
        """No two owners' blocks share a 4096-byte page."""
        app = make_app("lu", "tiny")
        m = Machine(MachineParams(n_nodes=4, granularity=4096), protocol="sc")
        app.setup(m)
        page_owner = {}
        for (bi, bj), addr in app._addr.items():
            owner = app.owner(bi, bj, 4)
            for page in range(addr // 4096, (addr + app.block_bytes - 1) // 4096 + 1):
                prev = page_owner.setdefault(page, owner)
                assert prev == owner, f"page {page} shared by {prev} and {owner}"

    def test_work_units_match_formula(self):
        app = make_app("lu", "tiny")
        nb = app.nb
        expected = sum(
            0.5 + 2 * (nb - k - 1) + 2 * (nb - k - 1) ** 2 for k in range(nb)
        )
        assert app.work_units() == expected


class TestBarnesVersions:
    def test_original_uses_more_locks_under_lrc(self):
        counts = {}
        for proto in ("sc", "hlrc"):
            app = make_app("barnes-original", "tiny")
            m = Machine(MachineParams(n_nodes=4, granularity=1024),
                        protocol=proto)
            app.setup(m)
            r = run_program(m, app.program, nprocs=4,
                            sequential_time_us=app.sequential_time_us())
            counts[proto] = r.stats.total_lock_acquires
        assert counts["hlrc"] > 3 * counts["sc"]

    def test_spatial_uses_no_locks(self):
        app = make_app("barnes-spatial", "tiny")
        m = Machine(MachineParams(n_nodes=4, granularity=1024), protocol="hlrc")
        app.setup(m)
        r = run_program(m, app.program, nprocs=4,
                        sequential_time_us=app.sequential_time_us())
        assert r.stats.total_lock_acquires == 0

    def test_parttree_locks_between_the_two(self):
        results = {}
        for name in ("barnes-original", "barnes-parttree", "barnes-spatial"):
            app = make_app(name, "tiny")
            m = Machine(MachineParams(n_nodes=4, granularity=1024),
                        protocol="hlrc")
            app.setup(m)
            r = run_program(m, app.program, nprocs=4,
                            sequential_time_us=app.sequential_time_us())
            results[name] = r.stats.total_lock_acquires
        assert results["barnes-original"] > results["barnes-parttree"]
        assert results["barnes-parttree"] > results["barnes-spatial"]

    def test_spatial_cell_ownership_scatters(self):
        app = make_app("barnes-spatial", "tiny")
        owners = [app.spatial_cell_owner(c, 0, 16) for c in range(64)]
        # Not a contiguous slab: adjacent cells often differ in owner.
        changes = sum(1 for a, b in zip(owners, owners[1:]) if a != b)
        assert changes > 16


class TestOceanVersions:
    def test_rowwise_rows_misalign_with_pages_at_full_scale(self):
        app = make_app("ocean-rowwise", "full")
        assert app.row_bytes == 4112  # 514 * 8: the paper's misfit
        assert app.row_bytes % 4096 != 0

    def test_original_column_reads_are_element_sized(self):
        """The fine-grain column-border pattern: 8-byte reads."""
        from repro.stats import install_trace

        app = make_app("ocean-original", "tiny")
        m = Machine(MachineParams(n_nodes=4, granularity=1024), protocol="sc")
        app.setup(m)
        tr = install_trace(m)
        run_program(m, app.program, nprocs=4,
                    sequential_time_us=app.sequential_time_us())
        assert tr.read_sizes.get(8, 0) > 0
        assert tr.median_read_bytes <= 64
