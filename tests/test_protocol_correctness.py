"""Cross-protocol correctness tests.

These drive small programs through real data movement and assert DSM
semantics:

* values written before a barrier are read after it (all protocols);
* lock-protected updates are never lost (all protocols);
* multiple concurrent writers to one block merge correctly (the
  false-sharing case that distinguishes the protocols);
* SC additionally keeps racy accesses coherent (single-writer-or-
  readers invariant), which the LRC protocols do not promise.
"""

import numpy as np
import pytest

from repro import Machine, MachineParams, SharedArray, run_program

#: all five registered protocols: the paper's three plus the two
#: extension protocols, which must satisfy the same DSM semantics
PROTOCOLS = ["sc", "swlrc", "hlrc", "dc", "erc"]
GRANS = [64, 256, 1024, 4096]


def make_machine(protocol, granularity, n_nodes=4):
    return Machine(
        MachineParams(n_nodes=n_nodes, granularity=granularity), protocol=protocol
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("granularity", GRANS)
class TestProducerConsumer:
    def test_barrier_publishes_writes(self, protocol, granularity):
        m = make_machine(protocol, granularity)
        arr = SharedArray(m, "a", 256, dtype=np.float64)
        arr.init(np.zeros(256))

        def program(dsm, rank, nprocs):
            n = 256 // nprocs
            lo = rank * n
            yield from arr.set_slice(
                dsm, lo, np.arange(lo, lo + n, dtype=np.float64)
            )
            yield from dsm.barrier(0, participants=nprocs)
            vals = yield from arr.get_slice(dsm, 0, 256)
            return float(vals.sum())

        r = run_program(m, program, nprocs=4)
        expect = float(np.arange(256).sum())
        assert all(x == expect for x in r.results)

    def test_multiple_rounds_of_updates(self, protocol, granularity):
        """Iterative stencil-like exchange: each round reads the
        neighbour's value written in the previous round."""
        m = make_machine(protocol, granularity)
        arr = SharedArray(m, "a", 4, dtype=np.float64)
        arr.init(np.zeros(4))
        rounds = 4

        def program(dsm, rank, nprocs):
            val = float(rank)
            for it in range(rounds):
                yield from arr.set(dsm, rank, val)
                yield from dsm.barrier(0, participants=nprocs)
                left = yield from arr.get(dsm, (rank - 1) % nprocs)
                yield from dsm.barrier(1, participants=nprocs)
                val = left + 1.0
            return val

        r = run_program(m, program, nprocs=4)
        # Each value chases its left neighbour, +1 per round.
        expected = [((rank - rounds) % 4) + rounds for rank in range(4)]
        assert r.results == [float(e) for e in expected]


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("granularity", [64, 4096])
class TestLockProtectedCounter:
    def test_no_lost_updates(self, protocol, granularity):
        m = make_machine(protocol, granularity)
        arr = SharedArray(m, "counter", 1, dtype=np.int64)
        arr.init([0])
        increments = 5

        def program(dsm, rank, nprocs):
            for _ in range(increments):
                yield from dsm.acquire(1)
                v = yield from arr.get(dsm, 0)
                yield from dsm.compute(3.0)
                yield from arr.set(dsm, 0, int(v) + 1)
                yield from dsm.release(1)
            yield from dsm.barrier(0, participants=nprocs)
            final = yield from arr.get(dsm, 0)
            return int(final)

        r = run_program(m, program, nprocs=4)
        assert all(x == 4 * increments for x in r.results)

    def test_lock_passes_latest_value_without_barrier(self, protocol, granularity):
        """Acquire alone must make the previous holder's writes
        visible (release consistency's core guarantee)."""
        m = make_machine(protocol, granularity)
        arr = SharedArray(m, "chain", 1, dtype=np.int64)
        arr.init([0])

        def program(dsm, rank, nprocs):
            # Rank k waits its turn via the lock-ordered counter.
            while True:
                yield from dsm.acquire(7)
                v = yield from arr.get(dsm, 0)
                if v == rank:
                    yield from arr.set(dsm, 0, int(v) + 1)
                    yield from dsm.release(7)
                    return int(v)
                yield from dsm.release(7)
                yield from dsm.compute(20.0)

        r = run_program(m, program, nprocs=3)
        assert r.results == [0, 1, 2]


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestFalseSharingMerge:
    def test_concurrent_writers_same_block_disjoint_bytes(self, protocol):
        """Four writers interleave in one 4096-byte block; after a
        barrier everyone sees all writes (HLRC merges diffs; SC and
        SW-LRC serialize through ownership)."""
        m = make_machine(protocol, 4096)
        arr = SharedArray(m, "x", 512, dtype=np.float64)  # exactly 1 block
        arr.init(np.zeros(512))

        def program(dsm, rank, nprocs):
            # Strided, interleaved writes: rank, rank+4, rank+8 ...
            for i in range(rank, 512, nprocs):
                yield from arr.set(dsm, i, float(i))
            yield from dsm.barrier(0, participants=nprocs)
            vals = yield from arr.get_slice(dsm, 0, 512)
            return float(vals.sum())

        r = run_program(m, program, nprocs=4)
        expect = float(np.arange(512).sum())
        assert all(x == expect for x in r.results), r.results

    def test_writers_under_different_locks(self, protocol):
        """Two nodes write disjoint halves of one block, each under its
        own lock (no common synchronization between them); a reader
        that acquires both locks sees both halves."""
        m = make_machine(protocol, 4096)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))

        def program(dsm, rank, nprocs):
            if rank < 2:
                lock = rank + 1
                lo = rank * 256
                yield from dsm.acquire(lock)
                yield from arr.set_slice(
                    dsm, lo, np.full(256, float(rank + 1))
                )
                yield from dsm.release(lock)
                yield from dsm.barrier(0, participants=nprocs)
                return 0.0
            else:
                yield from dsm.barrier(0, participants=nprocs)
                yield from dsm.acquire(1)
                yield from dsm.release(1)
                yield from dsm.acquire(2)
                yield from dsm.release(2)
                vals = yield from arr.get_slice(dsm, 0, 512)
                return float(vals.sum())

        r = run_program(m, program, nprocs=3)
        assert r.results[2] == 256.0 * 1 + 256.0 * 2


class TestSCSpecific:
    """Invariants only sequential consistency provides."""

    def test_single_writer_or_readers_invariant(self):
        """Sampled continuously: never a writer co-existing with any
        other copy of the same block."""
        m = make_machine("sc", 256)
        from repro.memory.access_control import RO, RW

        violations = []

        def check():
            blocks = set()
            for node in m.nodes:
                for b, t in node.access.blocks_with_access():
                    blocks.add(b)
            for b in blocks:
                tags = [node.access.tag(b) for node in m.nodes]
                writers = sum(1 for t in tags if t == RW)
                readers = sum(1 for t in tags if t == RO)
                if writers > 1 or (writers == 1 and readers > 0):
                    violations.append((m.engine.now, b, tags))

        arr = SharedArray(m, "x", 128, dtype=np.float64)
        arr.init(np.zeros(128))

        def program(dsm, rank, nprocs):
            for i in range(rank, 128, nprocs):
                yield from arr.set(dsm, i, float(i))
                check()
                v = yield from arr.get(dsm, (i + 7) % 128)
                check()
            yield from dsm.barrier(0, participants=nprocs)
            return 0.0

        run_program(m, program, nprocs=4)
        assert violations == []

    def test_read_sees_latest_write_through_directory(self):
        """Without any user synchronization, SC still serializes: a
        read that faults after a write completed returns that write."""
        m = make_machine("sc", 64)
        arr = SharedArray(m, "x", 8, dtype=np.float64)
        arr.init(np.zeros(8))

        def writer(dsm, rank, nprocs):
            if rank == 0:
                yield from arr.set(dsm, 0, 42.0)
                yield from dsm.compute(1.0)
                yield from dsm.barrier(0, participants=nprocs)
                return 0.0
            else:
                # Poll until the write is visible; SC must converge.
                while True:
                    v = yield from arr.get(dsm, 0)
                    if v == 42.0:
                        break
                    yield from dsm.compute(50.0)
                yield from dsm.barrier(0, participants=nprocs)
                return float(v)

        r = run_program(m, writer, nprocs=2)
        assert r.results[1] == 42.0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_subset_of_nodes_runs(protocol):
    m = make_machine(protocol, 1024, n_nodes=8)
    arr = SharedArray(m, "x", 64, dtype=np.float64)
    arr.init(np.zeros(64))

    def program(dsm, rank, nprocs):
        yield from arr.set(dsm, rank, 1.0)
        yield from dsm.barrier(0, participants=nprocs)
        vals = yield from arr.get_slice(dsm, 0, nprocs)
        return float(vals.sum())

    r = run_program(m, program, nprocs=3)
    assert all(x == 3.0 for x in r.results)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fault_counters_populate(protocol):
    m = make_machine(protocol, 256)
    arr = SharedArray(m, "x", 512, dtype=np.float64)
    arr.init(np.zeros(512))
    # Home the data on node 0; node 1's writes are then real protocol
    # write faults (node-0 writes would be cheap local re-opens, which
    # the paper's fault tables exclude).
    arr.place(0, 512, 0)

    def program(dsm, rank, nprocs):
        if rank == 1:
            yield from arr.set_slice(dsm, 0, np.ones(512))
        yield from dsm.barrier(0, participants=nprocs)
        if rank == 2:
            # A third node reading remote data must take read faults
            # (the home reads locally; the writer kept valid copies).
            yield from arr.get_slice(dsm, 0, 512)
        return 0.0

    r = run_program(m, program, nprocs=3)
    assert r.stats.write_faults > 0
    assert r.stats.read_faults > 0
    assert r.stats.total_messages > 0
    assert r.stats.parallel_time_us > 0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_home_local_writes_are_reopens_not_faults(protocol):
    """Placed data written by its own home node produces zero counted
    write faults (paper Table 3: LU has none at any granularity)."""
    m = make_machine(protocol, 256)
    arr = SharedArray(m, "x", 512, dtype=np.float64)
    arr.init(np.zeros(512))
    arr.place(0, 512, 0)

    def program(dsm, rank, nprocs):
        if rank == 0:
            yield from arr.set_slice(dsm, 0, np.ones(512))
        yield from dsm.barrier(0, participants=nprocs)
        return 0.0

    r = run_program(m, program, nprocs=2)
    assert r.stats.write_faults == 0
