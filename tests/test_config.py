"""Tests for the machine cost model and topology (paper Section 3)."""

import pytest

from repro.cluster.config import (
    GRANULARITIES,
    PAGE_SIZE,
    MachineParams,
    NotificationMechanism,
    hops_between,
    switch_of,
)


def test_default_params_validate():
    MachineParams().validate()


@pytest.mark.parametrize("g", GRANULARITIES)
def test_all_paper_granularities_validate(g):
    MachineParams(granularity=g).validate()


def test_bad_granularity_rejected():
    with pytest.raises(ValueError):
        MachineParams(granularity=100).validate()


def test_zero_nodes_rejected():
    with pytest.raises(ValueError):
        MachineParams(n_nodes=0).validate()


def test_granularities_divide_page():
    for g in GRANULARITIES:
        assert PAGE_SIZE % g == 0


class TestMicrobenchmarkFit:
    """The latency model must reproduce the paper's measured round
    trips (40/61/100/256/876 us for 4/64/256/1024/4096 bytes) within
    ~10%."""

    PAPER_ROUND_TRIPS = {4: 40.0, 64: 61.0, 256: 100.0, 1024: 256.0, 4096: 876.0}

    @pytest.mark.parametrize("size,rt", sorted(PAPER_ROUND_TRIPS.items()))
    def test_round_trip_within_10_percent(self, size, rt):
        p = MachineParams()
        model_rt = 2 * p.one_way_latency_us(size)
        assert abs(model_rt - rt) / rt < 0.10, (size, model_rt, rt)

    def test_latency_monotonic_in_size(self):
        p = MachineParams()
        lats = [p.one_way_latency_us(s) for s in (4, 64, 256, 1024, 4096)]
        assert lats == sorted(lats)

    def test_large_message_bandwidth_about_17MBps(self):
        # NIC streaming occupancy models the paper's ~17 MB/s.
        p = MachineParams()
        bw = 1.0 / p.nic_occupancy_per_byte_us  # bytes/us == MB/s
        assert 15.0 < bw < 19.0


class TestTopology:
    def test_sixteen_nodes_on_three_switches(self):
        switches = {switch_of(i) for i in range(16)}
        assert switches == {0, 1, 2}

    def test_at_most_six_hosts_per_switch(self):
        from collections import Counter

        counts = Counter(switch_of(i) for i in range(16))
        assert max(counts.values()) <= 6

    def test_hops_symmetric(self):
        for a in range(16):
            for b in range(16):
                assert hops_between(a, b) == hops_between(b, a)

    def test_hops_zero_same_switch(self):
        assert hops_between(0, 5) == 0

    def test_hops_two_for_extreme_switches(self):
        assert hops_between(0, 15) == 2


class TestCostRelations:
    """Sanity relations between cost constants the analysis relies on."""

    def test_interrupt_much_more_expensive_than_poll(self):
        p = MachineParams()
        assert p.interrupt_us > 10 * p.poll_round_trip_us

    def test_fault_exception_is_5us(self):
        assert MachineParams().fault_exception_us == 5.0

    def test_small_control_message_cheaper(self):
        p = MachineParams()
        assert p.one_way_latency_us(8) < p.one_way_latency_us(64)

    def test_mechanism_enum_values(self):
        assert NotificationMechanism.POLLING.value == "polling"
        assert NotificationMechanism.INTERRUPT.value == "interrupt"
