"""White-box tests of protocol internals: home routing and forwarding,
runtime first-touch migration, the SC recall/poison machinery, and the
HLRC/SW-LRC state tables."""

import numpy as np
import pytest

from repro import Machine, MachineParams, run_program
from repro.memory.access_control import INV, RO, RW


def make(protocol, g=1024, n=4):
    return Machine(MachineParams(n_nodes=n, granularity=g), protocol=protocol)


class TestFirstTouchMigration:
    @pytest.mark.parametrize("protocol", ["sc", "swlrc", "hlrc"])
    def test_store_claims_home_for_toucher(self, protocol):
        """An unplaced block's home migrates to the first storer."""
        m = make(protocol)
        seg = m.alloc(8192, "x")
        block = seg.base // 1024
        # Pick a writer that is NOT the static home so the migration
        # actually moves the block.
        static = m.home.static_home(block)
        writer = (static + 1) % 4

        def program(dsm, rank, nprocs):
            if rank == writer:
                yield from dsm.touch_write(seg.base, 64, pattern=1)
            yield from dsm.barrier(0, participants=nprocs)

        run_program(m, program, nprocs=4)
        assert m.home.home(block) == writer
        assert m.home.migrations >= 1

    def test_sc_load_claims_home(self):
        """Under SC a load is a touch (Section 2)."""
        m = make("sc")
        seg = m.alloc(8192, "x")
        block = seg.base // 1024
        static = m.home.static_home(block)
        reader = (static + 2) % 4

        def program(dsm, rank, nprocs):
            if rank == reader:
                yield from dsm.touch_read(seg.base, 64)
            yield from dsm.barrier(0, participants=nprocs)

        run_program(m, program, nprocs=4)
        assert m.home.home(block) == reader

    def test_hlrc_load_does_not_claim_for_reader(self):
        """Under HLRC only a store migrates; a load leaves the block at
        its static home."""
        m = make("hlrc")
        seg = m.alloc(8192, "x")
        block = seg.base // 1024
        static = m.home.static_home(block)
        reader = (static + 2) % 4

        def program(dsm, rank, nprocs):
            if rank == reader:
                yield from dsm.touch_read(seg.base, 64)
            yield from dsm.barrier(0, participants=nprocs)

        run_program(m, program, nprocs=4)
        assert m.home.home(block) == static

    def test_claim_from_remote_static_home_costs_messages(self):
        m = make("hlrc")
        seg = m.alloc(8192, "x")
        block = seg.base // 1024
        static = m.home.static_home(block)
        writer = (static + 1) % 4

        def program(dsm, rank, nprocs):
            if rank == writer:
                yield from dsm.touch_write(seg.base, 64, pattern=1)
            yield from dsm.barrier(0, participants=nprocs)

        r = run_program(m, program, nprocs=4)
        assert r.stats.msg_count["home_claim"] == 1


class TestForwarding:
    @pytest.mark.parametrize("protocol", ["sc", "swlrc", "hlrc"])
    def test_stale_route_forwarded_and_learned(self, protocol):
        """A requester without a cached home hint sends to the static
        home; if the block migrated, the request is forwarded once and
        the requester learns the real home."""
        m = make(protocol)
        seg = m.alloc(8192, "x")
        block = seg.base // 1024
        static = m.home.static_home(block)
        owner = (static + 1) % 4
        reader = (static + 2) % 4
        m.place(seg.base, 1024, owner)  # migrated away from static

        def program(dsm, rank, nprocs):
            if rank == reader:
                yield from dsm.touch_read(seg.base, 64)
            yield from dsm.barrier(0, participants=nprocs)

        r = run_program(m, program, nprocs=4)
        assert r.stats.forwarded_requests >= 1
        assert m.home.cached_home(reader, block) == owner

    def test_second_request_goes_direct(self):
        m = make("hlrc")
        seg = m.alloc(8192, "x")
        block = seg.base // 1024
        static = m.home.static_home(block)
        owner = (static + 1) % 4
        reader = (static + 2) % 4
        m.place(seg.base, 1024, owner)

        def program(dsm, rank, nprocs):
            if rank == reader:
                yield from dsm.touch_read(seg.base, 64)
                # Invalidate locally, then re-fetch: no second forward.
                m.nodes[reader].access.invalidate(block)
                yield from dsm.touch_read(seg.base, 64)
            yield from dsm.barrier(0, participants=nprocs)

        r = run_program(m, program, nprocs=4)
        assert r.stats.forwarded_requests == 1


class TestSCInternals:
    def test_directory_tracks_owner_and_sharers(self):
        m = make("sc", g=4096)
        seg = m.alloc(4096, "x")
        m.place(seg.base, 4096, 0)
        block = seg.base // 4096

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from dsm.touch_read(seg.base, 64)
            yield from dsm.barrier(0, participants=nprocs)
            if rank == 2:
                yield from dsm.touch_write(seg.base, 64, pattern=1)
            yield from dsm.barrier(1, participants=nprocs)

        run_program(m, program, nprocs=4)
        e = m.protocol.dir[block]
        assert e.owner == 2
        assert e.sharers == set()
        # The old reader's tag was invalidated.
        assert m.nodes[1].access.tag(block) == INV
        assert m.nodes[2].access.tag(block) == RW

    def test_recall_downgrades_owner_on_remote_read(self):
        m = make("sc", g=4096)
        seg = m.alloc(4096, "x")
        m.place(seg.base, 4096, 0)
        block = seg.base // 4096

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from dsm.touch_write(seg.base, 64, pattern=1)
            yield from dsm.barrier(0, participants=nprocs)
            if rank == 2:
                yield from dsm.touch_read(seg.base, 64)
            yield from dsm.barrier(1, participants=nprocs)

        r = run_program(m, program, nprocs=4)
        # Owner 1 was recalled to read-only; both are sharers now.
        assert m.nodes[1].access.tag(block) == RO
        assert m.nodes[2].access.tag(block) == RO
        assert m.protocol.dir[block].owner is None
        assert {1, 2} <= m.protocol.dir[block].sharers
        assert r.stats.writebacks >= 1

    def test_no_stale_protocol_state_leaks(self):
        """After a quiescent run, no in-flight or deferred entries
        remain in the SC bookkeeping."""
        m = make("sc", g=256)
        seg = m.alloc(4096, "x")

        def program(dsm, rank, nprocs):
            yield from dsm.touch_write(seg.base + rank * 1024, 512,
                                       pattern=rank + 1)
            yield from dsm.barrier(0, participants=nprocs)
            yield from dsm.touch_read(seg.base, 4096)
            yield from dsm.barrier(1, participants=nprocs)

        run_program(m, program, nprocs=4)
        assert m.protocol._inflight == set()
        assert m.protocol._poisoned == set()
        assert m.protocol._deferred_recalls == {}
        for e in m.protocol.dir.values():
            assert not e.busy
            assert not e.pending


class TestSWLRCInternals:
    def test_hint_points_at_freshest_writer(self):
        m = make("swlrc", g=4096)
        seg = m.alloc(4096, "x")
        m.place(seg.base, 4096, 0)
        block = seg.base // 4096

        def program(dsm, rank, nprocs):
            # Writers 1 then 2, serialized by the lock.
            if rank in (1, 2):
                yield from dsm.compute(100.0 * rank)
                yield from dsm.acquire(9)
                yield from dsm.touch_write(seg.base, 64, pattern=rank)
                yield from dsm.release(9)
            yield from dsm.barrier(0, participants=nprocs)
            if rank == 3:
                yield from dsm.acquire(9)
                yield from dsm.release(9)
                yield from dsm.touch_read(seg.base, 64)
            yield from dsm.barrier(1, participants=nprocs)

        run_program(m, program, nprocs=4)
        proto = m.protocol
        # Rank 3's hint names the last writer (2) with the top version.
        hint = proto.hint[3].get(block)
        assert hint is not None and hint[1] == 2

    def test_owner_set_consistent_with_directory(self):
        m = make("swlrc", g=4096)
        seg = m.alloc(4096, "x")
        m.place(seg.base, 4096, 0)
        block = seg.base // 4096

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from dsm.touch_write(seg.base, 64, pattern=1)
            yield from dsm.barrier(0, participants=nprocs)
            if rank == 2:
                yield from dsm.touch_write(seg.base + 100, 64, pattern=2)
            yield from dsm.barrier(1, participants=nprocs)

        run_program(m, program, nprocs=4)
        proto = m.protocol
        assert proto.owners[block].owner == 2
        assert block in proto.owned[2]
        assert block not in proto.owned[1]


class TestHLRCInternals:
    def test_no_twins_left_after_quiescence(self):
        m = make("hlrc", g=1024)
        seg = m.alloc(4096, "x")
        m.place(seg.base, 4096, 0)

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from dsm.touch_write(seg.base, 2048, pattern=7)
            yield from dsm.barrier(0, participants=nprocs)

        run_program(m, program, nprocs=4)
        assert all(not t for t in m.protocol.twins)
        assert all(not d for d in m.protocol.dirty)

    def test_vector_clocks_converge_at_barrier(self):
        m = make("hlrc", g=1024)
        seg = m.alloc(8192, "x")

        def program(dsm, rank, nprocs):
            yield from dsm.touch_write(seg.base + rank * 2048, 128,
                                       pattern=rank + 1)
            yield from dsm.barrier(0, participants=nprocs)

        run_program(m, program, nprocs=4)
        vts = {m.protocol.vt[i].as_tuple() for i in range(4)}
        assert len(vts) == 1  # everyone merged to the same clock
