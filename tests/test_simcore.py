"""Differential tests for the two simcore backends.

The fast (numpy) backend and the pure-python fallback must be
observable-state twins: every kernel returns the same values, iterates
in the same order, and extracts the same diff runs, down to the byte.
These tests drive seeded randomized operation sequences through both
backends side by side and assert identical state after every step --
the unit-level counterpart of the full-cell stats-sha parity check.

When numpy is not importable (the CI no-numpy leg) the differential
classes skip and the fallback is instead checked against plain oracle
models, so the pure-python kernels are still covered on a bare install.
"""

import os
import random
import subprocess
import sys
from array import array

import pytest

from repro.simcore import BACKEND, dtypes, pycore
from repro.simcore.ring import SeqRing

try:
    from repro.simcore import fastcore
except ImportError:  # numpy absent: fallback-only environment
    fastcore = None

needs_fast = pytest.mark.skipif(
    fastcore is None, reason="numpy unavailable; fast backend cannot load"
)

SEEDS = [0, 1, 2, 7, 1997]


# ----------------------------------------------------------------------
# tag arrays
# ----------------------------------------------------------------------
def _drive_tags(ta, rng: random.Random, trace: list) -> None:
    """One seeded op sequence; every observable return lands in trace."""
    for _ in range(400):
        op = rng.randrange(6)
        block = rng.randrange(200)
        if op == 0:
            ta.set_tag(block, rng.choice([0, 1, 2]))
        elif op == 1:
            trace.append(("inv", ta.invalidate(block)))
        elif op == 2:
            trace.append(("down", ta.downgrade(block)))
        elif op == 3:
            trace.append(("tag", ta.tag(block)))
        elif op == 4:
            trace.append(("perm", ta.permits(block, rng.random() < 0.5)))
        else:
            trace.append(("read", ta.permits_read(block)))
    trace.append(("len", len(ta)))
    trace.append(("bulk", list(ta.blocks_with_access())))


@needs_fast
@pytest.mark.parametrize("seed", SEEDS)
def test_tag_arrays_identical(seed):
    fast, slow = fastcore.TagArray(), pycore.TagArray()
    tf, ts = [], []
    _drive_tags(fast, random.Random(seed), tf)
    _drive_tags(slow, random.Random(seed), ts)
    assert tf == ts
    assert bytes(fast._tags) == bytes(slow._tags)
    assert fast._readable == slow._readable


@pytest.mark.parametrize("seed", SEEDS)
def test_fallback_tags_match_dict_model(seed):
    """Oracle check that runs even without numpy installed."""
    ta = pycore.TagArray()
    model = {}
    rng = random.Random(seed)
    for _ in range(400):
        block = rng.randrange(200)
        tag = rng.choice([0, 1, 2])
        ta.set_tag(block, tag)
        if tag:
            model[block] = tag
        else:
            model.pop(block, None)
        probe = rng.randrange(200)
        assert ta.tag(probe) == model.get(probe, 0)
        assert ta.permits_read(probe) == (probe in model)
    assert list(ta.blocks_with_access()) == sorted(model.items())


# ----------------------------------------------------------------------
# vector clocks -- cross the fastcore vectorization threshold both ways
# ----------------------------------------------------------------------
@needs_fast
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n", [4, 16, 63, 64, 128])
def test_vector_clock_kernels_identical(seed, n):
    rng = random.Random(seed * 1000 + n)
    vf = array("q", (rng.randrange(100) for _ in range(n)))
    vs = array("q", vf)
    for _ in range(50):
        other = array("q", (rng.randrange(120) for _ in range(n)))
        fastcore.vc_merge_into(vf, other)
        pycore.vc_merge_into(vs, other)
        assert vf == vs
        probe = array("q", (rng.randrange(130) for _ in range(n)))
        assert fastcore.vc_dominates(vf, probe) == pycore.vc_dominates(vs, probe)


def test_fallback_vc_matches_builtin_max():
    rng = random.Random(3)
    v = array("q", (rng.randrange(50) for _ in range(32)))
    other = array("q", (rng.randrange(50) for _ in range(32)))
    expect = [max(a, b) for a, b in zip(v, other)]
    pycore.vc_merge_into(v, other)
    assert list(v) == expect
    assert pycore.vc_dominates(v, other)
    assert pycore.vc_dominates(v, v)


# ----------------------------------------------------------------------
# twin/diff run extraction
# ----------------------------------------------------------------------
def _mutate(rng: random.Random, base: bytearray) -> bytearray:
    """One of the real-world dirty-block shapes, randomized."""
    dirty = bytearray(base)
    shape = rng.randrange(5)
    n = len(dirty)
    if shape == 0:
        pass  # unchanged
    elif shape == 1:  # one contiguous run
        start = rng.randrange(n)
        stop = min(n, start + rng.randrange(1, 64))
        for i in range(start, stop):
            dirty[i] ^= 0x5A
    elif shape == 2:  # scattered single bytes
        for _ in range(rng.randrange(1, 20)):
            dirty[rng.randrange(n)] ^= 0xFF
    elif shape == 3:  # word-aligned strided writes
        for i in range(0, n, 8 * rng.randrange(1, 5)):
            dirty[i] = (dirty[i] + 1) & 0xFF
    else:  # tail bytes (exercises the residual-byte scan)
        for i in range(max(0, n - rng.randrange(1, 9)), n):
            dirty[i] ^= 0x01
    return dirty


def _norm(runs):
    return [(off, bytes(data)) for off, data in runs]


@needs_fast
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("size", [1, 7, 64, 1024, 4096])
def test_diff_runs_identical(seed, size):
    rng = random.Random(seed * 10 + size)
    twin = bytearray(rng.randrange(256) for _ in range(size))
    for _ in range(20):
        dirty = _mutate(rng, twin)
        rf = _norm(fastcore.diff_runs(bytes(dirty), bytes(twin)))
        rs = _norm(pycore.diff_runs(bytes(dirty), bytes(twin)))
        assert rf == rs


@pytest.mark.parametrize("seed", SEEDS)
def test_fallback_diff_runs_roundtrip_and_shape(seed):
    rng = random.Random(seed)
    for size in (1, 9, 64, 1000):
        twin = bytearray(rng.randrange(256) for _ in range(size))
        for _ in range(10):
            dirty = _mutate(rng, twin)
            runs = pycore.diff_runs(bytes(dirty), bytes(twin))
            # runs reconstruct the dirty copy from the twin
            rebuilt = bytearray(twin)
            for off, data in runs:
                rebuilt[off : off + len(data)] = data
            assert rebuilt == dirty
            # runs are ascending, non-empty, non-adjacent (maximal)
            prev_end = -2
            for off, data in runs:
                assert len(data) > 0
                assert off > prev_end + 1
                prev_end = off + len(data) - 1


# ----------------------------------------------------------------------
# block buffers, packing, typed views
# ----------------------------------------------------------------------
@needs_fast
@pytest.mark.parametrize("seed", SEEDS)
def test_buffer_kernels_identical(seed):
    rng = random.Random(seed)
    for _ in range(50):
        n = rng.randrange(1, 300)
        raw = bytes(rng.randrange(256) for _ in range(n))
        bf, bs = fastcore.frombytes(raw), pycore.frombytes(raw)
        start = rng.randrange(n)
        stop = rng.randrange(start, n + 1)
        value = rng.randrange(256)
        fastcore.fill(bf, start, stop, value)
        pycore.fill(bs, start, stop, value)
        assert fastcore.tobytes(bf) == pycore.tobytes(bs)
        assert fastcore.buf_eq(bf, fastcore.frombytes(fastcore.tobytes(bf)))
        assert pycore.buf_eq(bs, pycore.frombytes(pycore.tobytes(bs)))
        assert fastcore.tobytes(fastcore.copy_of(bf)) == pycore.tobytes(
            pycore.copy_of(bs)
        )
        assert bytes(fastcore.as_payload(raw)) == bytes(pycore.as_payload(raw))


@needs_fast
@pytest.mark.parametrize("spec", ["float64", "int64", "int32", "uint8"])
def test_pack_and_typed_view_identical(spec):
    dt = dtypes.dtype(spec)
    values = [0, 1, 17, 100]
    assert bytes(fastcore.pack_values(values, (4,), dt)) == bytes(
        pycore.pack_values(values, (4,), dt)
    )
    assert bytes(fastcore.pack_scalar(42, dt)) == bytes(pycore.pack_scalar(42, dt))
    raw = pycore.pack_values(values, (4,), dt)
    vf = fastcore.typed_view(fastcore.frombytes(raw), dt)
    vs = pycore.typed_view(pycore.frombytes(raw), dt)
    assert list(vf) == list(vs) == values
    assert vf.sum() == vs.sum()


def test_pack_values_shape_checked():
    dt = dtypes.dtype("float64")
    with pytest.raises(ValueError):
        pycore.pack_values([1.0, 2.0], (3,), dt)
    if fastcore is not None:
        with pytest.raises(ValueError):
            fastcore.pack_values([1.0, 2.0], (3,), dt)


# ----------------------------------------------------------------------
# sequence ring vs a dict reference model
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_seq_ring_matches_dict_model(seed):
    rng = random.Random(seed)
    ring, model = SeqRing(4), {}
    cursor = 0
    for _ in range(500):
        op = rng.randrange(3)
        if op == 0:  # out-of-order arrival inside a window above cursor
            seq = cursor + rng.randrange(64)
            assert ring.put(seq, ("msg", seq)) == (seq not in model)
            model.setdefault(seq, ("msg", seq))
        elif op == 1 and model:  # drain one held sequence
            seq = rng.choice(list(model))
            assert ring.pop(seq) == model.pop(seq)
            cursor = max(cursor, seq + 1)
        else:
            probe = cursor + rng.randrange(64)
            assert (probe in ring) == (probe in model)
        assert len(ring) == len(model)
    assert list(ring.items()) == sorted(model.items())


def test_seq_ring_pop_missing_raises():
    ring = SeqRing()
    ring.put(5, "x")
    with pytest.raises(KeyError):
        ring.pop(6)


def test_seq_ring_grows_past_collisions():
    ring = SeqRing(2)
    # 0 and 1024 collide at every small power of two; the ring must
    # keep both live.
    assert ring.put(0, "a") and ring.put(1024, "b") and ring.put(2048, "c")
    assert ring.pop(1024) == "b"
    assert 0 in ring and 2048 in ring and 1024 not in ring


# ----------------------------------------------------------------------
# backend selection and end-to-end parity
# ----------------------------------------------------------------------
def _spawn(env_value):
    env = dict(os.environ, REPRO_SIMCORE=env_value)
    out = subprocess.run(
        [sys.executable, "-c", "import repro.simcore as s; print(s.BACKEND)"],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


def test_env_var_selects_backend():
    assert _spawn("python") == "python"
    if fastcore is not None:
        assert _spawn("fast") == "fast"
        assert _spawn("auto") == "fast"
    assert BACKEND in ("fast", "python")


@needs_fast
def test_full_cell_sha_parity_across_backends():
    """The end-to-end contract: one tiny LU cell produces bit-identical
    stats under the fast backend and the pure-python fallback."""
    code = (
        "from repro.perf.micros import full_cell_sc;"
        "print(full_cell_sc()[1])"
    )
    shas = {}
    for backend in ("fast", "python"):
        env = dict(os.environ, REPRO_SIMCORE=backend)
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        shas[backend] = out.stdout.strip()
    assert shas["fast"] == shas["python"]
    assert len(shas["fast"]) == 16
