"""Tests for the Section 5.5 relative-efficiency statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.relative_efficiency import (
    best_version_speedups,
    harmonic_mean,
    hm_table,
    relative_efficiency,
)

PROTOS = ["sc", "swlrc", "hlrc"]
GRANS = [64, 256, 1024, 4096]


def table_for(apps, fn):
    return {
        (a, p, g): fn(a, p, g) for a in apps for p in PROTOS for g in GRANS
    }


class TestHarmonicMean:
    def test_basic(self):
        assert harmonic_mean([1.0, 1.0]) == 1.0
        assert harmonic_mean([0.5, 1.0]) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_hm_at_most_arithmetic_mean(self, xs):
        hm = harmonic_mean(xs)
        assert hm <= sum(xs) / len(xs) + 1e-9
        assert min(xs) - 1e-9 <= hm <= max(xs) + 1e-9


class TestRelativeEfficiency:
    def test_best_combination_gets_one(self):
        speedups = table_for(["a"], lambda a, p, g: 2.0 if (p, g) == ("hlrc", 4096) else 1.0)
        re = relative_efficiency(speedups, ["a"], PROTOS, GRANS)
        assert re[("a", "hlrc", 4096)] == 1.0
        assert re[("a", "sc", 64)] == 0.5

    def test_all_values_in_unit_interval(self):
        speedups = table_for(["a", "b"], lambda a, p, g: g / 64 + (0 if a == "a" else 3))
        re = relative_efficiency(speedups, ["a", "b"], PROTOS, GRANS)
        assert all(0 < v <= 1.0 for v in re.values())

    def test_missing_cells_skipped(self):
        speedups = table_for(["a"], lambda a, p, g: 1.0)
        del speedups[("a", "sc", 64)]
        re = relative_efficiency(speedups, ["a"], PROTOS, GRANS)
        assert ("a", "sc", 64) not in re


class TestHMTable:
    def test_p_best_g_best_is_one(self):
        speedups = table_for(["a", "b"], lambda a, p, g: 1.0 + GRANS.index(g))
        hm = hm_table(speedups, ["a", "b"], PROTOS, GRANS)
        assert hm["p_best"]["g_best"] == 1.0

    def test_g_best_at_least_any_fixed_granularity(self):
        speedups = table_for(
            ["a", "b", "c"],
            lambda a, p, g: 1.0 + (hash((a, p, g)) % 7) / 10.0,
        )
        hm = hm_table(speedups, ["a", "b", "c"], PROTOS, GRANS)
        for p in PROTOS:
            for g in GRANS:
                assert hm[p]["g_best"] >= hm[p][str(g)] - 1e-9

    def test_uniform_speedups_give_uniform_re(self):
        speedups = table_for(["a"], lambda a, p, g: 5.0)
        hm = hm_table(speedups, ["a"], PROTOS, GRANS)
        for p in PROTOS:
            for g in GRANS:
                assert hm[p][str(g)] == pytest.approx(1.0)

    def test_paper_structure_sc_collapse(self):
        """Construct a matrix shaped like the paper's: SC great at fine
        grain, terrible at 4096; HLRC the reverse -- HM reflects it."""

        def fn(a, p, g):
            if p == "sc":
                return {64: 8.0, 256: 9.0, 1024: 7.0, 4096: 2.0}[g]
            if p == "hlrc":
                return {64: 4.0, 256: 6.0, 1024: 8.5, 4096: 9.0}[g]
            return {64: 4.0, 256: 6.0, 1024: 6.5, 4096: 5.0}[g]

        speedups = table_for(["a", "b"], fn)
        hm = hm_table(speedups, ["a", "b"], PROTOS, GRANS)
        assert hm["sc"]["4096"] < 0.3
        assert hm["hlrc"]["4096"] > 0.9


class TestBestVersionSpeedups:
    def test_picks_max_per_cell(self):
        speedups = {}
        for g in GRANS:
            for p in PROTOS:
                speedups[("app-v1", p, g)] = 1.0
                speedups[("app-v2", p, g)] = 2.0 if p == "hlrc" else 0.5
        best = best_version_speedups(
            speedups, {"app": ["app-v1", "app-v2"]}, PROTOS, GRANS
        )
        assert best[("app", "hlrc", 64)] == 2.0
        assert best[("app", "sc", 64)] == 1.0

    def test_missing_versions_tolerated(self):
        speedups = {("v1", "sc", 64): 3.0}
        best = best_version_speedups(speedups, {"app": ["v1", "v2"]},
                                     PROTOS, GRANS)
        assert best[("app", "sc", 64)] == 3.0
        assert ("app", "sc", 256) not in best
