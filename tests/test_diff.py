"""Tests for the twin/diff machinery (HLRC's multiple-writer core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diff import RUN_HEADER_BYTES, Diff, apply_diff, create_diff


def blocks(size=256, seed=0):
    rng = np.random.default_rng(seed)
    twin = rng.integers(0, 256, size, dtype=np.uint8)
    return twin.copy(), twin


class TestCreateDiff:
    def test_identical_copies_empty_diff(self):
        dirty, twin = blocks()
        d = create_diff(0, dirty, twin)
        assert d.empty
        assert d.payload_bytes == 0

    def test_single_byte_change(self):
        dirty, twin = blocks()
        dirty[17] ^= 0xFF
        d = create_diff(0, dirty, twin)
        assert len(d.runs) == 1
        off, data = d.runs[0]
        assert off == 17 and len(data) == 1
        assert d.payload_bytes == 1

    def test_contiguous_run_detected(self):
        dirty, twin = blocks()
        dirty[10:20] ^= 0xFF
        d = create_diff(0, dirty, twin)
        assert len(d.runs) == 1
        assert d.runs[0][0] == 10
        assert len(d.runs[0][1]) == 10

    def test_separate_runs_detected(self):
        dirty, twin = blocks()
        dirty[0] ^= 1
        dirty[100:110] ^= 0xFF
        dirty[255] ^= 1
        d = create_diff(0, dirty, twin)
        assert len(d.runs) == 3
        assert [r[0] for r in d.runs] == [0, 100, 255]

    def test_wire_bytes_include_run_headers(self):
        dirty, twin = blocks()
        dirty[0] ^= 1
        dirty[50] ^= 1
        d = create_diff(0, dirty, twin)
        assert d.wire_bytes == 2 + 2 * RUN_HEADER_BYTES

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            create_diff(0, np.zeros(10, np.uint8), np.zeros(20, np.uint8))

    def test_diff_data_is_copy(self):
        dirty, twin = blocks()
        dirty[5] = 99 if twin[5] != 99 else 98
        d = create_diff(0, dirty, twin)
        saved = d.runs[0][1][0]
        dirty[5] = twin[5]
        assert d.runs[0][1][0] == saved


class TestApplyDiff:
    def test_roundtrip(self):
        dirty, twin = blocks()
        dirty[30:60] ^= 0xAA
        dirty[200] ^= 1
        d = create_diff(0, dirty, twin)
        target = twin.copy()
        written = apply_diff(target, d)
        assert np.array_equal(target, dirty)
        assert written == d.payload_bytes

    def test_out_of_range_run_rejected(self):
        d = Diff(block=0, runs=[(250, np.zeros(10, np.uint8))])
        with pytest.raises(ValueError):
            apply_diff(np.zeros(256, np.uint8), d)

    def test_concurrent_disjoint_diffs_compose(self):
        """The multiple-writer property: two writers touching disjoint
        bytes merge cleanly at the home."""
        base = np.zeros(256, np.uint8)
        w1 = base.copy()
        w1[0:50] = 1
        w2 = base.copy()
        w2[100:150] = 2
        home = base.copy()
        apply_diff(home, create_diff(0, w1, base))
        apply_diff(home, create_diff(0, w2, base))
        assert (home[0:50] == 1).all()
        assert (home[100:150] == 2).all()
        assert (home[50:100] == 0).all()

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, data):
        """create+apply reproduces the dirty copy for arbitrary edits."""
        size = data.draw(st.integers(min_value=1, max_value=512))
        rng_seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(rng_seed)
        twin = rng.integers(0, 256, size, dtype=np.uint8)
        dirty = twin.copy()
        n_edits = data.draw(st.integers(min_value=0, max_value=20))
        for _ in range(n_edits):
            i = data.draw(st.integers(min_value=0, max_value=size - 1))
            dirty[i] = data.draw(st.integers(min_value=0, max_value=255))
        d = create_diff(0, dirty, twin)
        target = twin.copy()
        apply_diff(target, d)
        assert np.array_equal(target, dirty)
        # Runs cover exactly the changed bytes (maximal contiguity).
        assert d.payload_bytes == int((dirty != twin).sum())
