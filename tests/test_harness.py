"""Tests for the experiment harness, tables, figures, and CLI."""

import pytest

from repro.cluster.config import GRANULARITIES
from repro.harness.calibration import (
    max_microbench_error,
    max_table1_error,
    microbenchmark_rows,
    table1_rows,
)
from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.matrix import SpeedupMatrix, cached_run, clear_cache, sweep
from repro.harness.tables import (
    fault_table,
    fmt_table,
    hm_table_text,
    speedup_table,
    traffic_table,
)
from repro.harness.figures import figure1, mechanism_comparison, speedup_figure


class TestRunConfig:
    def test_label(self):
        cfg = RunConfig(app="lu", protocol="sc", granularity=64)
        assert "lu" in cfg.label() and "sc-64" in cfg.label()

    def test_hashable_for_caching(self):
        a = RunConfig(app="lu", protocol="sc", granularity=64)
        b = RunConfig(app="lu", protocol="sc", granularity=64)
        assert a == b and hash(a) == hash(b)


class TestRunExperiment:
    def test_tiny_run_produces_stats(self):
        r = run_experiment(RunConfig(app="lu", protocol="hlrc",
                                     granularity=1024, scale="tiny", nprocs=4))
        assert r.stats.parallel_time_us > 0
        assert r.stats.sequential_time_us > 0
        assert r.speedup > 0

    def test_mechanism_flag_respected(self):
        from repro.cluster.config import NotificationMechanism

        r = run_experiment(RunConfig(app="lu", protocol="sc", granularity=1024,
                                     mechanism="interrupt", scale="tiny",
                                     nprocs=4))
        assert r.machine.params.mechanism is NotificationMechanism.INTERRUPT

    def test_cache_reuses_results(self):
        clear_cache()
        cfg = RunConfig(app="fft", protocol="sc", granularity=1024,
                        scale="tiny", nprocs=4)
        a = cached_run(cfg)
        b = cached_run(cfg)
        assert a is b
        clear_cache()


class TestSweep:
    @pytest.fixture(scope="class")
    def results(self):
        clear_cache()
        out = sweep(["lu"], protocols=["sc", "hlrc"], granularities=[64, 4096],
                    scale="tiny", nprocs=4)
        yield out
        clear_cache()

    def test_matrix_complete(self, results):
        assert len(results) == 4

    def test_speedup_matrix_accessors(self, results):
        m = SpeedupMatrix(results)
        assert m.speedup("lu", "sc", 64) > 0
        proto, g, sp = m.best_combination("lu")
        assert proto in ("sc", "hlrc") and g in (64, 4096)
        with pytest.raises(KeyError):
            m.best_combination("nope")
        with pytest.raises(KeyError):
            m.speedup("lu", "sc", 256)

    def test_table_renderers_produce_text(self, results):
        txt = speedup_table(results, ["lu"], "t")
        assert "SC" in txt and "HLRC" in txt
        txt = fault_table(results, "lu", "t")
        assert "Read" in txt and "Write" in txt
        txt = traffic_table(results, "lu", "t")
        assert "MB" in txt
        fig = speedup_figure(results, "lu", "panel")
        assert "#" in fig
        assert "lu" in figure1(results, ["lu"])
        cmp = mechanism_comparison(results, results, "lu")
        assert "int/poll" in cmp

    def test_missing_cells_render_dash(self, results):
        txt = fault_table(results, "lu", "t")
        assert "-" in txt


class TestTableFormatting:
    def test_fmt_table_alignment(self):
        out = fmt_table(["a", "bb"], [[1, 22], [333, 4]], "title")
        lines = out.splitlines()
        assert lines[0] == "title"
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_hm_table_text(self):
        hm = {
            "sc": {"64": 0.5, "4096": 0.2, "g_best": 0.9},
            "p_best": {"64": 0.7, "g_best": 1.0},
        }
        txt = hm_table_text(hm, "Table 16")
        assert "0.500" in txt and "1.000" in txt


class TestCalibration:
    def test_table1_within_5_percent(self):
        assert max_table1_error() < 0.05

    def test_microbench_within_10_percent(self):
        assert max_microbench_error() < 0.10

    def test_row_structures(self):
        assert len(table1_rows()) == 8
        assert len(microbenchmark_rows()) == 5


class TestCLI:
    def test_calibrate_command(self, capsys):
        from repro.harness.cli import main

        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 calibration" in out
        assert "microbenchmark" in out

    def test_run_command(self, capsys):
        from repro.harness.cli import main

        assert main(["run", "lu", "hlrc", "1024", "--scale", "tiny",
                     "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_faults_command(self, capsys):
        from repro.harness.cli import main

        assert main(["faults", "fft", "--scale", "tiny", "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fault" in out

    def test_bad_app_rejected(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["run", "nonesuch", "sc", "64"])
