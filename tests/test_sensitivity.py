"""Tests for the cost-model sensitivity analysis module."""

import pytest

from repro.analysis import SweepPoint, granularity_preference, sweep_parameter


class TestSweepPoint:
    def test_best_granularity(self):
        p = SweepPoint("f", 1.0, 5.0, {64: 2.0, 4096: 3.0})
        assert p.best_granularity == 4096
        assert p.ratio(4096, 64) == pytest.approx(1.5)


class TestSweepParameter:
    def test_non_numeric_field_rejected(self):
        with pytest.raises(TypeError):
            sweep_parameter("lu", "mechanism", [1, 2], scale="tiny", nprocs=4)

    def test_sweep_runs_and_scales_value(self):
        points = sweep_parameter(
            "lu", "fault_exception_us", [1, 10],
            protocol="sc", granularities=[1024], scale="tiny", nprocs=4,
        )
        assert len(points) == 2
        assert points[0].value == pytest.approx(5.0)
        assert points[1].value == pytest.approx(50.0)
        for p in points:
            assert p.speedups[1024] > 0
        # Costlier faults cannot make the run faster.
        assert points[1].speedups[1024] <= points[0].speedups[1024] + 1e-9

    def test_granularity_preference_vector(self):
        points = [
            SweepPoint("f", 1.0, 1.0, {64: 2.0, 4096: 2.0}),
            SweepPoint("f", 2.0, 2.0, {64: 1.0, 4096: 3.0}),
        ]
        assert granularity_preference(points, 64, 4096) == [1.0, 3.0]
