"""Tests for the sharing-pattern classifier (Table 2 machinery)."""

from collections import Counter

import pytest

from repro.stats.classify import (
    COARSE_ACCESS_BYTES,
    FINE_SYNC_THRESHOLD_US,
    MULTI_WRITER_FRACTION,
    AccessTrace,
    classify,
    install_trace,
)
from repro.stats.counters import Stats


class TestAccessTrace:
    def test_writers_tracked_per_block(self):
        tr = AccessTrace()
        tr.record_write(0, 10)
        tr.record_write(1, 10)
        tr.record_write(0, 11)
        assert tr.max_writers == 2
        assert tr.multi_writer_fraction == pytest.approx(0.5)

    def test_empty_trace(self):
        tr = AccessTrace()
        assert tr.max_writers == 0
        assert tr.multi_writer_fraction == 0.0
        assert tr.median_read_bytes == 0.0
        assert tr.mean_access_bytes == 0.0

    def test_read_median_ignores_writes(self):
        tr = AccessTrace()
        for _ in range(10):
            tr.record_region(8, write=False)
        tr.record_region(100_000, write=True)
        assert tr.median_read_bytes == 8.0

    def test_median_odd_even(self):
        tr = AccessTrace()
        for size in (10, 20, 30):
            tr.record_region(size, write=False)
        assert tr.median_read_bytes == 20.0
        tr.record_region(40, write=False)
        assert tr.median_read_bytes == 20.0  # lower median of 4


class TestClassify:
    def _stats(self, n=2, compute_us=100_000.0, locks=0, barriers=0):
        stats = Stats(n)
        for node in stats.nodes:
            node.compute_us = compute_us / n
            node.lock_acquires = locks // n
            node.barriers = barriers
        return stats

    def test_single_writer_coarse(self):
        tr = AccessTrace()
        tr.record_write(0, 1)
        tr.record_region(4096, write=False)
        c = classify(tr, self._stats(barriers=2))
        assert c.writers == "single"
        assert c.access_grain == "coarse"

    def test_multi_writer_by_fraction(self):
        tr = AccessTrace()
        for b in range(10):
            tr.record_write(0, b)
            tr.record_write(1, b)
        tr.record_region(8, write=False)
        c = classify(tr, self._stats(barriers=1))
        assert c.writers == "multiple"
        assert c.access_grain == "fine"

    def test_two_writer_boundary_artifact_is_single(self):
        """A handful of blocks with exactly two writers (partition
        boundaries) does not make an application multiple-writer."""
        tr = AccessTrace()
        for b in range(100):
            tr.record_write(b % 4, b)
        tr.record_write(1, 0)  # one boundary block shared by 2 writers
        tr.record_region(4096, write=False)
        c = classify(tr, self._stats(barriers=1))
        assert c.writers == "single"

    def test_heavily_shared_block_is_multiple(self):
        """One block written by many processors (a tree root) flags
        multiple-writer even among many private blocks."""
        tr = AccessTrace()
        for b in range(100):
            tr.record_write(b % 4, b)
        for w in range(8):
            tr.record_write(w, 0)
        tr.record_region(8, write=False)
        c = classify(tr, self._stats(barriers=1))
        assert c.writers == "multiple"

    def test_sync_grain_threshold(self):
        tr = AccessTrace()
        tr.record_region(4096, write=False)
        # 100ms compute over 2 nodes, 1000 locks: 50us per sync -> fine.
        fine = classify(tr, self._stats(compute_us=100_000.0, locks=1000))
        assert fine.sync_grain == "fine"
        # 2 barriers only: 25ms per sync -> coarse.
        coarse = classify(tr, self._stats(compute_us=100_000.0, barriers=2))
        assert coarse.sync_grain == "coarse"

    def test_no_sync_is_coarse(self):
        tr = AccessTrace()
        tr.record_region(4096, write=False)
        c = classify(tr, self._stats())
        assert c.sync_grain == "coarse"
        assert c.comp_per_sync_us == float("inf")

    def test_comp_per_sync_matches_paper_formula(self):
        """LU at full scale: (73.41 s / 16) / 64 barriers = 71.69 ms."""
        tr = AccessTrace()
        tr.record_region(2048, write=False)
        stats = Stats(16)
        for node in stats.nodes:
            node.compute_us = 73.41e6 / 16
            node.barriers = 64
        c = classify(tr, stats)
        assert c.comp_per_sync_us == pytest.approx(71.69e3, rel=0.01)


class TestInstallTrace:
    def test_trace_observes_runtime_accesses(self):
        import numpy as np

        from repro import Machine, MachineParams, SharedArray, run_program

        m = Machine(MachineParams(n_nodes=2, granularity=256), protocol="sc")
        arr = SharedArray(m, "x", 64, dtype=np.float64)
        arr.init(np.zeros(64))
        arr.place(0, 64, 0)
        tr = install_trace(m)

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from arr.set_slice(dsm, 0, np.ones(64))
            yield from dsm.barrier(0, participants=nprocs)
            yield from arr.get_slice(dsm, 0, 64)

        run_program(m, program, nprocs=2)
        assert tr.write_accesses >= 1
        assert tr.read_accesses >= 2
        assert tr.max_writers >= 1
        # 64 float64 = 512 bytes per region access
        assert tr.median_read_bytes == 512.0
