"""repro.mc: controllable scheduler, DPOR exploration, litmus suite."""

import hashlib
import json

import pytest

from repro.cluster.machine import Machine
from repro.harness.experiment import RunConfig, run_experiment
from repro.mc import (
    LITMUS,
    Explorer,
    ReplayDivergence,
    TraceBudgetExceeded,
    get_litmus,
    litmus_names,
    model_of,
    replay,
)
from repro.sim import DefaultPolicy


def _stats_sha(result):
    return hashlib.sha256(
        json.dumps(result.stats.to_dict(), sort_keys=True).encode()
    ).hexdigest()


# ---------------------------------------------------------------------------
# the controllable scheduler does not perturb production runs
# ---------------------------------------------------------------------------

def test_default_policy_fingerprint_matrix():
    """48 cells: DefaultPolicy runs must be bit-identical to native runs.

    The policy-driven loop re-sorts the ready set per dispatch; if its
    merge order ever diverged from the two-lane fast path, every stats
    fingerprint downstream would silently shift.  This is the contract
    that makes mc exploration results transferable to production runs.
    """
    orig = Machine.__init__

    def with_policy(self, *a, **k):
        orig(self, *a, **k)
        self.engine.set_policy(DefaultPolicy())

    mismatches = []
    try:
        for app in ("lu", "ocean-rowwise"):
            for proto in ("sc", "swlrc", "hlrc"):
                for g in (64, 256, 1024, 4096):
                    for mech in ("polling", "interrupt"):
                        cfg = RunConfig(
                            app=app, protocol=proto, granularity=g,
                            mechanism=mech, nprocs=4, scale="tiny",
                        )
                        Machine.__init__ = orig
                        native = _stats_sha(run_experiment(cfg))
                        Machine.__init__ = with_policy
                        policy = _stats_sha(run_experiment(cfg))
                        if native != policy:
                            mismatches.append(cfg.label())
    finally:
        Machine.__init__ = orig
    assert mismatches == []


# ---------------------------------------------------------------------------
# litmus catalog
# ---------------------------------------------------------------------------

def test_litmus_catalog_is_complete():
    assert set(litmus_names()) == {
        "sb", "mp", "lb", "iriw", "lock-handoff", "barrier-reset",
    }
    for name in litmus_names():
        lit = get_litmus(name)
        assert lit.n_procs in (2, 4)
        assert lit.n_vars in (1, 2)
        assert len(lit.homes) == lit.n_vars


def test_get_litmus_unknown_name():
    with pytest.raises(KeyError, match="unknown litmus"):
        get_litmus("nope")


def test_model_of():
    assert model_of("sc") == "sc"
    assert model_of("swlrc") == "lrc"
    assert model_of("hlrc") == "lrc"
    assert model_of("swlrc-broken") == "lrc"


def test_litmus_instantiates_per_protocol():
    inst = LITMUS["mp"].instantiate("swlrc", granularity=64)
    assert inst.nprocs == 2
    assert len(inst.kwargs["addrs"]) == 2


# ---------------------------------------------------------------------------
# exhaustive exploration (the acceptance cells)
# ---------------------------------------------------------------------------

def test_mp_swlrc_explores_exhaustively_and_passes():
    """The headline cell: MP under SW-LRC, all schedules, zero findings."""
    r = Explorer(LITMUS["mp"], "swlrc", 64, dpor=True,
                 max_schedules=4000).run()
    assert r.complete, "mp/swlrc must fit the schedule budget"
    assert r.ok, r.forbidden or r.check_failures
    # Both allowed outcomes are actually reachable, nothing else is.
    assert set(r.outcomes) == {(0, 0), (1, 42)}


@pytest.mark.parametrize("proto,expect_sc_violation_absent", [
    ("sc", True),
    ("hlrc", False),
])
def test_sb_exhaustive(proto, expect_sc_violation_absent):
    r = Explorer(LITMUS["sb"], proto, 64, dpor=True,
                 max_schedules=8000).run()
    assert r.complete and r.ok
    if expect_sc_violation_absent:
        # Under SC both reads returning 0 is the classic forbidden
        # store-buffer outcome; exhaustive search must never see it.
        assert (0, 0) not in r.outcomes
        assert set(r.outcomes) == {(0, 1), (1, 0), (1, 1)}


def test_mp_sc_and_hlrc_exhaustive():
    for proto in ("sc", "hlrc"):
        r = Explorer(LITMUS["mp"], proto, 64, dpor=True,
                     max_schedules=2000).run()
        assert r.complete and r.ok, proto
        assert set(r.outcomes) <= {(0, 0), (1, 42)}, proto


def test_budget_capped_cell_reports_incomplete_not_failed():
    r = Explorer(LITMUS["lock-handoff"], "swlrc", 64, dpor=True,
                 max_schedules=40).run()
    assert not r.complete
    assert r.ok  # a budget cap is not a finding
    assert r.schedules == 40


# ---------------------------------------------------------------------------
# DPOR vs naive DFS
# ---------------------------------------------------------------------------

def test_dpor_explores_fewer_schedules_than_naive():
    dpor = Explorer(LITMUS["mp"], "sc", 64, dpor=True,
                    max_schedules=1000).run()
    naive = Explorer(LITMUS["mp"], "sc", 64, dpor=False,
                     max_schedules=1000).run()
    assert dpor.complete
    assert dpor.ok and naive.ok
    assert not naive.complete, "naive DFS should exhaust the budget"
    assert dpor.schedules < naive.schedules


def test_dpor_and_naive_agree_on_reachable_outcomes():
    # On a cell small enough for both to finish, the reduction must
    # not lose outcomes (soundness of the persistent/sleep sets).
    dpor = Explorer(LITMUS["mp"], "sc", 64, dpor=True,
                    max_schedules=20000).run()
    naive = Explorer(LITMUS["mp"], "sc", 64, dpor=False,
                     max_schedules=20000).run()
    assert dpor.complete and naive.complete
    assert set(dpor.outcomes) == set(naive.outcomes)


# ---------------------------------------------------------------------------
# the planted bug is caught, with a replayable counterexample
# ---------------------------------------------------------------------------

def test_broken_swlrc_caught_with_replayable_counterexample():
    r = Explorer(LITMUS["lock-handoff"], "swlrc-broken", 64, dpor=True,
                 max_schedules=50).run()
    assert not r.ok
    assert r.forbidden, "dropping a write notice must surface as a " \
                        "forbidden outcome"
    cx = r.counterexample
    assert cx is not None
    assert cx.protocol == "swlrc-broken"
    assert "forbidden outcome" in cx.reason
    # The trace is a readable event schedule...
    assert "rank" in cx.trace_text and "lock_" in cx.trace_text
    # ...and the recorded schedule replays to the same bad outcome.
    trace, outcome, report, error = replay(
        LITMUS["lock-handoff"], "swlrc-broken", 64, cx.schedule,
    )
    assert error is None
    assert outcome == cx.outcome
    assert len(trace) == len(cx.schedule)


def test_unbroken_swlrc_passes_where_broken_fails():
    r = Explorer(LITMUS["lock-handoff"], "swlrc", 64, dpor=True,
                 max_schedules=50).run()
    assert r.ok


# ---------------------------------------------------------------------------
# replay machinery
# ---------------------------------------------------------------------------

def test_replay_is_deterministic():
    r = Explorer(LITMUS["mp"], "sc", 64, dpor=True, max_schedules=500).run()
    assert r.complete
    # Replaying the free-run (empty prefix) twice gives identical traces.
    t1, o1, rep1, e1 = replay(LITMUS["mp"], "sc", 64, [])
    t2, o2, rep2, e2 = replay(LITMUS["mp"], "sc", 64, [])
    assert e1 is None and e2 is None
    assert o1 == o2
    assert [(s.seq, s.time, s.label) for s in t1] == \
           [(s.seq, s.time, s.label) for s in t2]


def test_replay_divergence_detected():
    with pytest.raises(ReplayDivergence):
        replay(LITMUS["mp"], "sc", 64, [999_999])


def test_trace_budget_enforced():
    with pytest.raises(TraceBudgetExceeded):
        replay(LITMUS["mp"], "sc", 64, [], max_steps=5)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_mc_passing_cell(capsys):
    from repro.harness.cli import main

    rc = main(["mc", "--litmus", "mp", "--protocol", "sc",
               "--max-schedules", "300"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "mp" in out and "ok" in out


def test_cli_mc_failing_cell(tmp_path, capsys):
    from repro.harness.cli import main

    ev = tmp_path / "events.jsonl"
    js = tmp_path / "mc.json"
    rc = main(["mc", "--litmus", "lock-handoff",
               "--protocol", "swlrc-broken",
               "--max-schedules", "30",
               "--events", str(ev), "--json", str(js)])
    assert rc == 1
    types = [json.loads(line)["type"] for line in ev.read_text().splitlines()]
    assert types == ["mc_cell", "mc_counterexample"]
    doc = json.loads(js.read_text())
    assert doc["results"][0]["ok"] is False


def test_cli_mc_unknown_litmus(capsys):
    from repro.harness.cli import main

    assert main(["mc", "--litmus", "nope"]) == 2


def test_broken_protocol_registration_is_mc_scoped():
    import subprocess
    import sys

    # Importing repro.mc (done above) registers the canary protocol...
    from repro.core.protocol import PROTOCOLS

    assert "swlrc-broken" in PROTOCOLS
    # ...but a process that never imports repro.mc must not see it:
    # the production experiment matrix can't pick it up by accident.
    out = subprocess.run(
        [sys.executable, "-c",
         "import repro.harness.cli; import repro.core.protocol as p; "
         "print('swlrc-broken' in p.PROTOCOLS)"],
        capture_output=True, text=True, check=True,
    )
    assert out.stdout.strip() == "False"
