"""Property-based coherence testing with randomly generated programs.

Hypothesis generates small *data-race-free* parallel programs -- every
shared location is either owned by a single writer between barriers, or
protected by a lock -- and we execute each program under all five
registered protocols (the paper's three plus the delayed-consistency
and eager-release-consistency extensions) at several granularities.  Correctness oracle: a sequential
reference execution that applies the same operations in a
synchronization-consistent order.

Two program families:

* **barrier-phased**: each round, every rank writes its own disjoint
  slice (placed arbitrarily), then a barrier, then every rank reads
  arbitrary slices and must observe the latest round's values.
* **lock-protected counters**: ranks perform read-modify-write updates
  on shared cells under per-cell locks; the final values must equal the
  total number of updates (no lost updates) under every protocol.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, MachineParams, SharedArray, run_program

PROTOCOLS = ["sc", "swlrc", "hlrc", "dc", "erc"]


@st.composite
def barrier_phase_programs(draw):
    """A random barrier-phased program description."""
    nprocs = draw(st.integers(min_value=2, max_value=4))
    n_elems = draw(st.integers(min_value=nprocs, max_value=96))
    rounds = draw(st.integers(min_value=1, max_value=3))
    granularity = draw(st.sampled_from([64, 256, 4096]))
    # Disjoint slice per rank per round (random partition points).
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=n_elems - 1),
                min_size=nprocs - 1,
                max_size=nprocs - 1,
                unique=True,
            )
        )
    )
    bounds = [0] + cuts + [n_elems]
    # Placement of the array start across nodes.
    placement = draw(st.integers(min_value=0, max_value=nprocs - 1))
    # Per-rank read windows (arbitrary, may overlap anything).
    reads = [
        (
            draw(st.integers(min_value=0, max_value=n_elems - 1)),
            draw(st.integers(min_value=1, max_value=n_elems)),
        )
        for _ in range(nprocs)
    ]
    return {
        "nprocs": nprocs,
        "n_elems": n_elems,
        "rounds": rounds,
        "granularity": granularity,
        "bounds": bounds,
        "placement": placement,
        "reads": reads,
    }


@given(spec=barrier_phase_programs())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_barrier_phased_programs_coherent(spec):
    nprocs = spec["nprocs"]
    n = spec["n_elems"]
    bounds = spec["bounds"]

    def value(rank, rnd, idx):
        return float(rnd * 1_000_000 + rank * 10_000 + idx)

    # Sequential oracle.
    oracle = np.zeros(n)
    for rnd in range(spec["rounds"]):
        for rank in range(nprocs):
            lo, hi = bounds[rank], bounds[rank + 1]
            for i in range(lo, hi):
                oracle[i] = value(rank, rnd, i)

    for protocol in PROTOCOLS:
        m = Machine(
            MachineParams(n_nodes=nprocs, granularity=spec["granularity"]),
            protocol=protocol,
        )
        arr = SharedArray(m, "x", n, dtype=np.float64)
        arr.init(np.zeros(n))
        arr.place(0, n, spec["placement"])

        def program(dsm, rank, nprocs_):
            for rnd in range(spec["rounds"]):
                lo, hi = bounds[rank], bounds[rank + 1]
                if hi > lo:
                    vals = np.array(
                        [value(rank, rnd, i) for i in range(lo, hi)]
                    )
                    yield from arr.set_slice(dsm, lo, vals)
                yield from dsm.barrier(0, participants=nprocs_)
                # Reads must see the freshest round everywhere.
                rlo, rlen = spec["reads"][rank]
                rhi = min(n, rlo + rlen)
                got = yield from arr.get_slice(dsm, rlo, rhi)
                expect = np.array(
                    [
                        value(w, rnd, i)
                        for i in range(rlo, rhi)
                        for w in [next(
                            r for r in range(nprocs_)
                            if bounds[r] <= i < bounds[r + 1]
                        )]
                    ]
                )
                assert np.array_equal(got, expect), (
                    protocol, rnd, rank, got, expect,
                )
                yield from dsm.barrier(1, participants=nprocs_)
            return 0.0

        run_program(m, program, nprocs=nprocs)


@st.composite
def lock_counter_programs(draw):
    nprocs = draw(st.integers(min_value=2, max_value=4))
    n_cells = draw(st.integers(min_value=1, max_value=6))
    increments = draw(st.integers(min_value=1, max_value=4))
    granularity = draw(st.sampled_from([64, 4096]))
    # Which cells each rank updates, in which order.
    schedules = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_cells - 1),
                min_size=increments,
                max_size=increments,
            )
        )
        for _ in range(nprocs)
    ]
    return {
        "nprocs": nprocs,
        "n_cells": n_cells,
        "granularity": granularity,
        "schedules": schedules,
    }


@given(spec=lock_counter_programs())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_lock_protected_updates_never_lost(spec):
    nprocs = spec["nprocs"]
    n_cells = spec["n_cells"]
    expected = np.zeros(n_cells, dtype=np.int64)
    for sched in spec["schedules"]:
        for cell in sched:
            expected[cell] += 1

    for protocol in PROTOCOLS:
        m = Machine(
            MachineParams(n_nodes=nprocs, granularity=spec["granularity"]),
            protocol=protocol,
        )
        arr = SharedArray(m, "cells", n_cells, dtype=np.int64)
        arr.init(np.zeros(n_cells, dtype=np.int64))

        def program(dsm, rank, nprocs_):
            for cell in spec["schedules"][rank]:
                yield from dsm.acquire(100 + cell)
                v = yield from arr.get(dsm, cell)
                yield from dsm.compute(2.0)
                yield from arr.set(dsm, cell, int(v) + 1)
                yield from dsm.release(100 + cell)
            yield from dsm.barrier(0, participants=nprocs_)
            # Everyone reads the final counters under the locks.
            out = []
            for cell in range(n_cells):
                yield from dsm.acquire(100 + cell)
                v = yield from arr.get(dsm, cell)
                yield from dsm.release(100 + cell)
                out.append(int(v))
            return out

        r = run_program(m, program, nprocs=nprocs)
        for rank, final in enumerate(r.results):
            assert final == list(expected), (protocol, rank, final, expected)


@given(
    g=st.sampled_from([64, 256, 1024, 4096]),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=15, deadline=None)
def test_protocols_agree_on_final_memory_state(g, seed):
    """After a fully barrier-synchronized random write pattern, the
    authoritative memory contents must be identical across protocols."""
    rng = np.random.default_rng(seed)
    n = 64
    writes = [
        (int(rng.integers(0, 4)), int(rng.integers(0, n)), float(rng.integers(1, 100)))
        for _ in range(12)
    ]

    finals = {}
    for protocol in PROTOCOLS:
        m = Machine(MachineParams(n_nodes=4, granularity=g), protocol=protocol)
        arr = SharedArray(m, "x", n, dtype=np.float64)
        arr.init(np.zeros(n))

        def program(dsm, rank, nprocs):
            for step, (writer, idx, val) in enumerate(writes):
                if rank == writer:
                    yield from arr.set(dsm, idx, val)
                yield from dsm.barrier(0, participants=nprocs)
            if rank == 0:
                out = yield from arr.get_slice(dsm, 0, n)
                return out.tolist()
            return None

        r = run_program(m, program, nprocs=4)
        finals[protocol] = tuple(r.results[0])

    base = finals["sc"]
    for proto in PROTOCOLS[1:]:
        assert finals[proto] == base, proto
