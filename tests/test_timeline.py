"""Tests for the event-timeline recorder."""

import numpy as np
import pytest

from repro import Machine, MachineParams, SharedArray, run_program
from repro.stats.timeline import Timeline, TimelineEvent


def run_traced(protocol="sc", **tl_kwargs):
    m = Machine(MachineParams(n_nodes=4, granularity=1024), protocol=protocol)
    tl = Timeline(m, **tl_kwargs)
    arr = SharedArray(m, "x", 64, dtype=np.float64)
    arr.init(np.zeros(64))
    arr.place(0, 64, 0)

    def program(dsm, rank, nprocs):
        if rank == 1:
            yield from arr.set_slice(dsm, 0, np.ones(64))
        yield from dsm.barrier(0, participants=nprocs)
        yield from arr.get_slice(dsm, 0, 64)
        yield from dsm.barrier(1, participants=nprocs)

    run_program(m, program, nprocs=4)
    return m, tl


class TestRecording:
    def test_sends_and_receives_recorded(self):
        m, tl = run_traced()
        kinds = {e.kind for e in tl.events}
        assert "send" in kinds and "recv" in kinds
        # Every wire message produces one send and one recv record.
        sends = sum(1 for e in tl.events if e.kind == "send")
        recvs = sum(1 for e in tl.events if e.kind == "recv")
        assert sends == recvs

    def test_timestamps_monotonic_per_kind_stream(self):
        m, tl = run_traced()
        times = [e.time_us for e in tl.events]
        assert times == sorted(times)

    def test_filter_restricts_message_types(self):
        m, tl = run_traced(message_filter=lambda t: t.startswith("barrier"))
        assert tl.events
        assert all("barrier" in e.label for e in tl.events)

    def test_bound_drops_excess(self):
        m, tl = run_traced(max_events=5)
        assert len(tl.events) == 5
        assert tl.dropped > 0

    def test_queries(self):
        m, tl = run_traced()
        n1 = tl.for_node(1)
        assert all(e.node == 1 for e in n1)
        window = tl.between(0.0, 100.0)
        assert all(0.0 <= e.time_us <= 100.0 for e in window)
        assert all("barrier_arrive" in e.label
                   for e in tl.matching("barrier_arrive"))
        assert tl.matching("barrier_arrive")


class TestRendering:
    def test_render_contains_events_and_header(self):
        m, tl = run_traced()
        out = tl.render()
        assert out.startswith("timeline")
        assert "[n0]" in out or "[n1]" in out

    def test_render_limit(self):
        m, tl = run_traced()
        out = tl.render(limit=3)
        assert "more)" in out

    def test_render_node_subset(self):
        m, tl = run_traced()
        out = tl.render(nodes=[2])
        assert "[n1]" not in out

    def test_summary(self):
        m, tl = run_traced()
        s = tl.summary()
        assert s["events"] == len(tl.events)
        assert s["kind_send"] > 0


class TestNoInterference:
    def test_traced_run_matches_untraced_counters(self):
        """Attaching a timeline must not change simulation results."""

        def run(with_tl):
            m = Machine(MachineParams(n_nodes=4, granularity=1024),
                        protocol="hlrc")
            if with_tl:
                Timeline(m)
            arr = SharedArray(m, "x", 64, dtype=np.float64)
            arr.init(np.zeros(64))

            def program(dsm, rank, nprocs):
                yield from arr.set(dsm, rank, float(rank))
                yield from dsm.barrier(0, participants=nprocs)
                yield from arr.get_slice(dsm, 0, 64)
                yield from dsm.barrier(1, participants=nprocs)

            r = run_program(m, program, nprocs=4)
            return (r.stats.parallel_time_us, r.stats.read_faults,
                    r.stats.total_messages)

        assert run(False) == run(True)
