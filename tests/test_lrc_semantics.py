"""Protocol-specific semantics of the LRC protocols: versioning corner
cases of SW-LRC, twin/diff behaviour of HLRC, interval propagation."""

import numpy as np
import pytest

from repro import Machine, MachineParams, SharedArray, run_program
from repro.memory.access_control import INV, RO, RW
from repro.simcore import dtype, typed_view


def make(protocol, g=4096, n=4):
    return Machine(MachineParams(n_nodes=n, granularity=g), protocol=protocol)


class TestSWLRCVersioning:
    def test_readers_not_invalidated_on_remote_write(self):
        """The SW-LRC relaxation: a write elsewhere does not invalidate
        read-only copies until the reader's next acquire."""
        m = make("swlrc", g=256)
        arr = SharedArray(m, "x", 32, dtype=np.float64)
        arr.init(np.zeros(32))
        arr.place(0, 32, 0)
        block = arr.segment.base // 256
        tags_after_remote_write = []

        def program(dsm, rank, nprocs):
            # No barrier between the write and the tag check: a barrier
            # is itself an acquire and would deliver the notice.  The
            # long computes order the phases in simulated time instead.
            if rank == 1:
                v = yield from arr.get(dsm, 0)  # take a read-only copy
                yield from dsm.compute(20_000.0)  # rank 2 writes meanwhile
                tags_after_remote_write.append(m.nodes[1].access.tag(block))
                # Without an acquire we may legally still read the old
                # copy; after a lock acquire we must see the new value.
                yield from dsm.acquire(3)
                yield from dsm.release(3)
                v2 = yield from arr.get(dsm, 0)
                yield from dsm.barrier(0, participants=nprocs)
                return float(v2)
            elif rank == 2:
                yield from dsm.compute(2000.0)  # after rank 1's read
                yield from dsm.acquire(3)
                yield from arr.set(dsm, 0, 99.0)
                yield from dsm.release(3)
                yield from dsm.barrier(0, participants=nprocs)
                return 0.0
            else:
                yield from dsm.barrier(0, participants=nprocs)
                return 0.0

        r = run_program(m, program, nprocs=3)
        # Copy survived the remote write (no eager invalidation)...
        assert tags_after_remote_write == [RO]
        # ...but the acquire-chain made the new value visible.
        assert r.results[1] == 99.0

    def test_version_skips_unnecessary_invalidation(self):
        """A reader that fetched the current copy does not get
        invalidated by the notice describing the write it already has
        ("avoid unnecessary invalidations", Section 2.2)."""
        m = make("swlrc", g=256)
        arr = SharedArray(m, "x", 32, dtype=np.float64)
        arr.init(np.zeros(32))
        arr.place(0, 32, 0)

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from dsm.acquire(1)
                yield from arr.set(dsm, 0, 5.0)
                yield from dsm.release(1)
                yield from dsm.barrier(0, participants=nprocs)
                yield from dsm.barrier(1, participants=nprocs)
            else:
                yield from dsm.barrier(0, participants=nprocs)
                # Fetch after the write: copy is current (version v).
                v = yield from arr.get(dsm, 0)
                assert v == 5.0
                before = m.stats.invalidations
                # The acquire delivers the notice for the write we
                # already have; it must not invalidate our copy.
                yield from dsm.acquire(1)
                yield from dsm.release(1)
                v2 = yield from arr.get(dsm, 0)
                assert v2 == 5.0
                yield from dsm.barrier(1, participants=nprocs)
                return m.stats.invalidations - before
            return 0

        r = run_program(m, program, nprocs=2)
        # Reader (rank 0 branch) saw no extra invalidation of block 0's
        # copy.  (Some invalidations can occur for other state; check
        # the read did not re-fault by value identity, asserted above.)

    def test_single_writer_ownership_migrates(self):
        """Two sequential writers: the second takes ownership and its
        copy includes the first writer's data."""
        m = make("swlrc", g=4096)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))

        def program(dsm, rank, nprocs):
            if rank == 0:
                yield from arr.set(dsm, 0, 1.0)
                yield from dsm.barrier(0, participants=nprocs)
                yield from dsm.barrier(1, participants=nprocs)
            else:
                yield from dsm.barrier(0, participants=nprocs)
                yield from arr.set(dsm, 1, 2.0)  # same block: migration
                v0 = yield from arr.get(dsm, 0)
                yield from dsm.barrier(1, participants=nprocs)
                return float(v0)
            return 0.0

        r = run_program(m, program, nprocs=2)
        assert r.results[1] == 1.0
        proto = m.protocol
        block = arr.segment.base // 4096
        assert proto.owners[block].owner == 1

    def test_write_fault_counts_migration_not_reopen(self):
        """An owner re-opening its own block after a release is a local
        re-open; stealing ownership is a write fault."""
        m = make("swlrc", g=4096)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))
        arr.place(0, 512, 0)

        def program(dsm, rank, nprocs):
            if rank == 0:
                for it in range(3):
                    yield from dsm.acquire(1)
                    yield from arr.set(dsm, it, float(it))
                    yield from dsm.release(1)
            yield from dsm.barrier(0, participants=nprocs)
            if rank == 1:
                yield from arr.set(dsm, 9, 9.0)
            yield from dsm.barrier(1, participants=nprocs)

        r = run_program(m, program, nprocs=2)
        # Rank 0's writes were home-local (reopens); rank 1's steal is
        # the single counted write fault.
        assert r.stats.write_faults == 1
        assert r.stats.local_reopens >= 3


class TestHLRCTwinsAndDiffs:
    def test_twin_created_once_per_interval(self):
        m = make("hlrc", g=1024)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))
        arr.place(0, 512, 0)

        def program(dsm, rank, nprocs):
            if rank == 1:
                # Many writes to the same (remote) block in one interval.
                for i in range(10):
                    yield from arr.set(dsm, i, float(i))
                yield from dsm.acquire(1)
                yield from dsm.release(1)
            yield from dsm.barrier(0, participants=nprocs)

        r = run_program(m, program, nprocs=2)
        assert r.stats.twins_created == 1
        assert r.stats.diffs_created == 1

    def test_diff_contains_only_changed_bytes(self):
        m = make("hlrc", g=4096)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))
        arr.place(0, 512, 0)

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from arr.set(dsm, 3, 1.0)  # one 8-byte element
                yield from dsm.barrier(0, participants=nprocs)
            else:
                yield from dsm.barrier(0, participants=nprocs)

        r = run_program(m, program, nprocs=2)
        # 1.0 differs from 0.0 in two bytes of the float64 encoding;
        # the diff ships only what changed (at most the 8-byte element).
        assert 0 < r.stats.diff_bytes <= 8

    def test_home_copy_absorbs_diffs_eagerly(self):
        """After the writer's release completes, the home's copy holds
        the new data (before any reader asks)."""
        m = make("hlrc", g=4096)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))
        arr.place(0, 512, 0)
        home_val = []

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from arr.set(dsm, 7, 77.0)
                yield from dsm.acquire(1)
                yield from dsm.release(1)  # flush happens here
                block = arr.segment.base // 4096
                home_val.append(
                    float(typed_view(m.nodes[0].store.block(block), dtype(np.float64))[7])
                )
            yield from dsm.barrier(0, participants=nprocs)

        run_program(m, program, nprocs=2)
        assert home_val == [77.0]

    def test_writer_keeps_readable_copy_after_release(self):
        """HLRC: after flushing, the writer's copy stays valid for its
        own reads (RO), no refetch needed."""
        m = make("hlrc", g=4096)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))
        arr.place(0, 512, 0)

        def program(dsm, rank, nprocs):
            if rank == 1:
                yield from arr.set(dsm, 0, 5.0)
                yield from dsm.acquire(1)
                yield from dsm.release(1)
                rf_before = m.stats.read_faults
                v = yield from arr.get(dsm, 0)
                assert v == 5.0
                assert m.stats.read_faults == rf_before  # no refetch
            yield from dsm.barrier(0, participants=nprocs)

        run_program(m, program, nprocs=2)

    def test_concurrent_writers_merge_through_diffs(self):
        """Two writers, different locks, disjoint halves of one block:
        both diffs land at the home; a later reader sees both."""
        m = make("hlrc", g=4096)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))
        arr.place(0, 512, 2)  # home with neither writer

        def program(dsm, rank, nprocs):
            if rank == 0:
                yield from dsm.acquire(1)
                yield from arr.set_slice(dsm, 0, np.full(16, 1.0))
                yield from dsm.release(1)
            elif rank == 1:
                yield from dsm.acquire(2)
                yield from arr.set_slice(dsm, 100, np.full(16, 2.0))
                yield from dsm.release(2)
            yield from dsm.barrier(0, participants=nprocs)
            if rank == 3:
                yield from dsm.acquire(1)
                yield from dsm.release(1)
                yield from dsm.acquire(2)
                yield from dsm.release(2)
                a = yield from arr.get(dsm, 0)
                b = yield from arr.get(dsm, 100)
                return float(a + b)
            return 0.0

        r = run_program(m, program, nprocs=4)
        assert r.results[3] == 3.0
        assert r.stats.diffs_applied >= 2


class TestIntervalPropagation:
    @pytest.mark.parametrize("protocol", ["swlrc", "hlrc"])
    def test_transitive_notices_through_lock_chain(self, protocol):
        """A -> lock -> B -> lock -> C: C must learn of A's write even
        though it only synchronized with B (vector-timestamp
        transitivity)."""
        m = make(protocol, g=1024)
        arr = SharedArray(m, "x", 512, dtype=np.float64)
        arr.init(np.zeros(512))
        arr.place(0, 512, 3)

        def program(dsm, rank, nprocs):
            if rank == 0:
                v = yield from arr.get(dsm, 0)  # cache a stale copy? no: 0
                yield from dsm.acquire(1)
                yield from arr.set(dsm, 0, 10.0)
                yield from dsm.release(1)
                yield from dsm.barrier(0, participants=nprocs)
            elif rank == 1:
                yield from dsm.compute(2000.0)
                yield from dsm.acquire(1)   # sees A's interval
                yield from dsm.acquire(2)
                yield from arr.set(dsm, 1, 20.0)
                yield from dsm.release(2)
                yield from dsm.release(1)
                yield from dsm.barrier(0, participants=nprocs)
            elif rank == 2:
                # Cache block 0 early so only a notice invalidates it.
                v0 = yield from arr.get(dsm, 0)
                yield from dsm.compute(5000.0)
                yield from dsm.acquire(2)   # only syncs with B
                a = yield from arr.get(dsm, 0)
                b = yield from arr.get(dsm, 1)
                yield from dsm.release(2)
                yield from dsm.barrier(0, participants=nprocs)
                return float(a + b)
            else:
                yield from dsm.barrier(0, participants=nprocs)
            return 0.0

        r = run_program(m, program, nprocs=4)
        assert r.results[2] == 30.0
