"""Tests for the repro.exec execution engine: serialization, the
on-disk cache, the process-pool scheduler, and the event log."""

import json

import pytest

from repro.cluster.config import MachineParams
from repro.cluster.machine import Machine
from repro.exec import (
    EventLog,
    ResultCache,
    RunRecord,
    config_from_dict,
    config_to_dict,
    execute,
    execute_many,
    read_events,
)
from repro.exec.events import RUN_EVENT_TYPES
from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.matrix import SpeedupMatrix, cached_run, clear_cache, sweep
from repro.sim.engine import SimulationError
from repro.stats.counters import NodeStats, Stats

TINY = dict(scale="tiny", nprocs=4)


def tiny_cfg(app="lu", protocol="sc", granularity=1024, **kw):
    return RunConfig(app=app, protocol=protocol, granularity=granularity,
                     **{**TINY, **kw})


@pytest.fixture(scope="module")
def tiny_stats():
    return run_experiment(tiny_cfg()).stats


class TestStatsSerialization:
    def test_node_stats_round_trip(self):
        ns = NodeStats(3, read_faults=7, compute_us=1.5)
        assert NodeStats.from_dict(ns.to_dict()) == ns

    def test_stats_round_trip_summary(self, tiny_stats):
        clone = Stats.from_dict(tiny_stats.to_dict())
        assert clone.summary() == tiny_stats.summary()

    def test_stats_round_trip_counters(self, tiny_stats):
        clone = Stats.from_dict(tiny_stats.to_dict())
        assert clone.msg_count == tiny_stats.msg_count
        assert clone.msg_bytes == tiny_stats.msg_bytes
        assert [n.to_dict() for n in clone.nodes] == [
            n.to_dict() for n in tiny_stats.nodes
        ]

    def test_stats_dict_is_json_safe(self, tiny_stats):
        json.dumps(tiny_stats.to_dict())

    def test_forward_compatible_with_new_counters(self, tiny_stats):
        d = tiny_stats.to_dict()
        d.pop("writebacks")  # older dump missing a counter
        clone = Stats.from_dict(d)
        assert clone.writebacks == 0


class TestRunRecord:
    def test_config_round_trip(self):
        cfg = tiny_cfg(mechanism="interrupt")
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_ok_record_round_trip(self, tiny_stats):
        rec = RunRecord.from_stats(tiny_cfg(), tiny_stats, duration_s=1.25)
        clone = RunRecord.from_json_dict(json.loads(json.dumps(rec.to_json_dict())))
        assert clone.config == rec.config
        assert clone.ok and clone.summary() == rec.summary()
        assert clone.speedup == rec.speedup
        assert clone.duration_s == 1.25

    def test_failed_record_round_trip(self):
        rec = RunRecord.from_failure(tiny_cfg(), SimulationError("boom"))
        clone = RunRecord.from_json_dict(rec.to_json_dict())
        assert not clone.ok
        assert clone.error_type == "SimulationError"
        assert clone.stats is None and clone.speedup == 0.0
        assert clone.summary() == {}


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, tiny_stats):
        cache = ResultCache(tmp_path, fingerprint="fp-a")
        cfg = tiny_cfg()
        assert cache.get(cfg) is None
        assert cache.put(RunRecord.from_stats(cfg, tiny_stats))
        hit = cache.get(cfg)
        assert hit is not None and hit.cached
        assert hit.summary() == tiny_stats.summary()

    def test_fingerprint_change_invalidates(self, tmp_path, tiny_stats):
        cfg = tiny_cfg()
        ResultCache(tmp_path, fingerprint="fp-a").put(
            RunRecord.from_stats(cfg, tiny_stats)
        )
        assert ResultCache(tmp_path, fingerprint="fp-b").get(cfg) is None
        assert ResultCache(tmp_path, fingerprint="fp-a").get(cfg) is not None

    def test_distinct_configs_distinct_keys(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        assert cache.key(tiny_cfg()) != cache.key(tiny_cfg(granularity=64))
        assert cache.key(tiny_cfg()) != cache.key(
            tiny_cfg(), extra={"max_events": 10}
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path, tiny_stats):
        cache = ResultCache(tmp_path, fingerprint="fp")
        cfg = tiny_cfg()
        cache.put(RunRecord.from_stats(cfg, tiny_stats))
        cache._path(cfg).write_text("{not json")
        assert cache.get(cfg) is None

    def test_deterministic_failures_cached_transient_not(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        sim_fail = RunRecord.from_failure(tiny_cfg(), SimulationError("budget"))
        assert cache.put(sim_fail)
        timeout_fail = RunRecord.from_failure(
            tiny_cfg(granularity=64), TimeoutError("slow host")
        )
        assert not cache.put(timeout_fail)
        assert cache.get(tiny_cfg(granularity=64)) is None

    def test_clear_and_len(self, tmp_path, tiny_stats):
        cache = ResultCache(tmp_path, fingerprint="fp")
        cache.put(RunRecord.from_stats(tiny_cfg(), tiny_stats))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestEventLog:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            log.emit("run_started", config={"app": "lu"}, attempt=1)
            log.emit("run_finished", duration_s=0.5)
        events = read_events(path)
        assert [e["type"] for e in events] == ["run_started", "run_finished"]
        assert all("ts" in e for e in events)

    def test_in_memory_log(self):
        log = EventLog()
        log.emit("cache_hit")
        assert log.types() == ["cache_hit"]


class TestExecuteMany:
    CONFIGS = [
        tiny_cfg(protocol=p, granularity=g)
        for p in ("sc", "hlrc")
        for g in (64, 4096)
    ]

    def test_failed_cell_does_not_abort_sweep(self):
        log = EventLog()
        records = execute_many(self.CONFIGS, max_events=50, events=log)
        # every cell blows the 50-event budget but the sweep completes
        assert len(records) == len(self.CONFIGS)
        assert all(not r.ok for r in records.values())
        assert all(r.error_type == "SimulationError" for r in records.values())
        assert log.types().count("run_failed") == len(self.CONFIGS)

    def test_timeout_reported_as_failed_record(self):
        cfg = tiny_cfg(app="water-nsquared", granularity=64)
        rec = execute(cfg, timeout=1e-4)
        assert not rec.ok and rec.error_type == "CellTimeout"

    def test_parallel_matches_serial_bit_identical(self):
        serial = execute_many(self.CONFIGS, jobs=1)
        parallel = execute_many(self.CONFIGS, jobs=4)
        assert list(serial) == list(parallel)
        for cfg in self.CONFIGS:
            assert serial[cfg].summary() == parallel[cfg].summary()

    def test_second_sweep_served_entirely_from_disk(self, tmp_path):
        log1 = EventLog()
        execute_many(self.CONFIGS, jobs=2, cache=ResultCache(tmp_path), events=log1)
        assert log1.types().count("run_finished") == len(self.CONFIGS)
        # fresh cache object = what a fresh interpreter would build
        log2 = EventLog(str(tmp_path / "events.jsonl"))
        records = execute_many(
            self.CONFIGS, jobs=2, cache=ResultCache(tmp_path), events=log2
        )
        assert all(r.cached for r in records.values())
        logged = read_events(str(tmp_path / "events.jsonl"))
        types = {e["type"] for e in logged}
        assert not types & set(RUN_EVENT_TYPES)
        assert sum(1 for e in logged if e["type"] == "cache_hit") == len(self.CONFIGS)

    def test_cached_summaries_match_fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh = execute_many(self.CONFIGS, cache=cache)
        cached = execute_many(self.CONFIGS, cache=ResultCache(tmp_path))
        for cfg in self.CONFIGS:
            assert cached[cfg].summary() == fresh[cfg].summary()

    def test_duplicate_configs_collapse(self):
        cfg = tiny_cfg()
        records = execute_many([cfg, cfg, cfg])
        assert len(records) == 1


class TestSweepIntegration:
    def test_sweep_jobs_matches_serial(self):
        kwargs = dict(
            protocols=["sc", "hlrc"], granularities=[64, 4096],
            scale="tiny", nprocs=4,
        )
        clear_cache()
        serial = sweep(["lu"], **kwargs)
        clear_cache()
        parallel = sweep(["lu"], jobs=4, **kwargs)
        clear_cache()
        assert {c: r.summary() for c, r in serial.items()} == {
            c: r.summary() for c, r in parallel.items()
        }

    def test_sweep_uses_disk_cache(self, tmp_path):
        kwargs = dict(
            protocols=["sc"], granularities=[1024], scale="tiny", nprocs=4
        )
        clear_cache()
        sweep(["fft"], cache=ResultCache(tmp_path), **kwargs)
        clear_cache()
        log = EventLog()
        out = sweep(["fft"], cache=ResultCache(tmp_path), events=log, **kwargs)
        clear_cache()
        assert all(r.cached for r in out.values())
        assert "cache_hit" in log.types()

    def test_cached_run_forwards_overrides(self):
        clear_cache()
        cfg = tiny_cfg()
        base = cached_run(cfg)
        bigger = cached_run(cfg, n=128)
        clear_cache()
        # the override grows the problem, so the counters must differ
        assert bigger.summary() != base.summary()

    def test_speedup_matrix_skips_failed_records(self):
        cfg_ok = tiny_cfg()
        ok = execute(cfg_ok)
        cfg_bad = tiny_cfg(granularity=64)
        bad = execute(cfg_bad, max_events=50)
        m = SpeedupMatrix({cfg_ok: ok, cfg_bad: bad})
        assert m.speedup("lu", "sc", 1024) > 0
        with pytest.raises(KeyError):
            m.speedup("lu", "sc", 64)
        assert ("lu", "sc", 64) not in m.speedups()
        assert [r.config for r in m.failed()] == [cfg_bad]
        assert m.best_combination("lu")[:2] == ("sc", 1024)


class TestMaxEventsPlumbing:
    def test_machine_accepts_max_events(self):
        m = Machine(MachineParams(n_nodes=2, granularity=1024), max_events=123)
        assert m.engine._max_events == 123

    def test_run_experiment_budget_raises(self):
        with pytest.raises(SimulationError):
            run_experiment(tiny_cfg(), max_events=50)
