"""Tests for the repro.exec execution engine: serialization, the
on-disk cache, the process-pool scheduler, and the event log."""

import json

import pytest

from repro.cluster.config import MachineParams
from repro.cluster.machine import Machine
from repro.exec import (
    EventLog,
    ResultCache,
    RunRecord,
    config_from_dict,
    config_to_dict,
    execute,
    execute_many,
    read_events,
)
from repro.exec.events import RUN_EVENT_TYPES
from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.matrix import SpeedupMatrix, cached_run, clear_cache, sweep
from repro.sim.engine import SimulationError
from repro.stats.counters import NodeStats, Stats

TINY = dict(scale="tiny", nprocs=4)


def tiny_cfg(app="lu", protocol="sc", granularity=1024, **kw):
    return RunConfig(app=app, protocol=protocol, granularity=granularity,
                     **{**TINY, **kw})


@pytest.fixture(scope="module")
def tiny_stats():
    return run_experiment(tiny_cfg()).stats


class TestStatsSerialization:
    def test_node_stats_round_trip(self):
        ns = NodeStats(3, read_faults=7, compute_us=1.5)
        assert NodeStats.from_dict(ns.to_dict()) == ns

    def test_stats_round_trip_summary(self, tiny_stats):
        clone = Stats.from_dict(tiny_stats.to_dict())
        assert clone.summary() == tiny_stats.summary()

    def test_stats_round_trip_counters(self, tiny_stats):
        clone = Stats.from_dict(tiny_stats.to_dict())
        assert clone.msg_count == tiny_stats.msg_count
        assert clone.msg_bytes == tiny_stats.msg_bytes
        assert [n.to_dict() for n in clone.nodes] == [
            n.to_dict() for n in tiny_stats.nodes
        ]

    def test_stats_dict_is_json_safe(self, tiny_stats):
        json.dumps(tiny_stats.to_dict())

    def test_forward_compatible_with_new_counters(self, tiny_stats):
        d = tiny_stats.to_dict()
        d.pop("writebacks")  # older dump missing a counter
        clone = Stats.from_dict(d)
        assert clone.writebacks == 0


class TestRunRecord:
    def test_config_round_trip(self):
        cfg = tiny_cfg(mechanism="interrupt")
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_ok_record_round_trip(self, tiny_stats):
        rec = RunRecord.from_stats(tiny_cfg(), tiny_stats, duration_s=1.25)
        clone = RunRecord.from_json_dict(json.loads(json.dumps(rec.to_json_dict())))
        assert clone.config == rec.config
        assert clone.ok and clone.summary() == rec.summary()
        assert clone.speedup == rec.speedup
        assert clone.duration_s == 1.25

    def test_failed_record_round_trip(self):
        rec = RunRecord.from_failure(tiny_cfg(), SimulationError("boom"))
        clone = RunRecord.from_json_dict(rec.to_json_dict())
        assert not clone.ok
        assert clone.error_type == "SimulationError"
        assert clone.stats is None and clone.speedup == 0.0
        assert clone.summary() == {}


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, tiny_stats):
        cache = ResultCache(tmp_path, fingerprint="fp-a")
        cfg = tiny_cfg()
        assert cache.get(cfg) is None
        assert cache.put(RunRecord.from_stats(cfg, tiny_stats))
        hit = cache.get(cfg)
        assert hit is not None and hit.cached
        assert hit.summary() == tiny_stats.summary()

    def test_fingerprint_change_invalidates(self, tmp_path, tiny_stats):
        cfg = tiny_cfg()
        ResultCache(tmp_path, fingerprint="fp-a").put(
            RunRecord.from_stats(cfg, tiny_stats)
        )
        assert ResultCache(tmp_path, fingerprint="fp-b").get(cfg) is None
        assert ResultCache(tmp_path, fingerprint="fp-a").get(cfg) is not None

    def test_distinct_configs_distinct_keys(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        assert cache.key(tiny_cfg()) != cache.key(tiny_cfg(granularity=64))
        assert cache.key(tiny_cfg()) != cache.key(
            tiny_cfg(), extra={"max_events": 10}
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path, tiny_stats):
        cache = ResultCache(tmp_path, fingerprint="fp")
        cfg = tiny_cfg()
        cache.put(RunRecord.from_stats(cfg, tiny_stats))
        cache._path(cfg).write_text("{not json")
        assert cache.get(cfg) is None

    def test_deterministic_failures_cached_transient_not(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        sim_fail = RunRecord.from_failure(tiny_cfg(), SimulationError("budget"))
        assert cache.put(sim_fail)
        timeout_fail = RunRecord.from_failure(
            tiny_cfg(granularity=64), TimeoutError("slow host")
        )
        assert not cache.put(timeout_fail)
        assert cache.get(tiny_cfg(granularity=64)) is None

    def test_clear_and_len(self, tmp_path, tiny_stats):
        cache = ResultCache(tmp_path, fingerprint="fp")
        cache.put(RunRecord.from_stats(tiny_cfg(), tiny_stats))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestEventLog:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            log.emit("run_started", config={"app": "lu"}, attempt=1)
            log.emit("run_finished", duration_s=0.5)
        events = read_events(path)
        assert [e["type"] for e in events] == ["run_started", "run_finished"]
        assert all("ts" in e for e in events)

    def test_in_memory_log(self):
        log = EventLog()
        log.emit("cache_hit")
        assert log.types() == ["cache_hit"]


class TestExecuteMany:
    CONFIGS = [
        tiny_cfg(protocol=p, granularity=g)
        for p in ("sc", "hlrc")
        for g in (64, 4096)
    ]

    def test_failed_cell_does_not_abort_sweep(self):
        log = EventLog()
        records = execute_many(self.CONFIGS, max_events=50, events=log)
        # every cell blows the 50-event budget but the sweep completes
        assert len(records) == len(self.CONFIGS)
        assert all(not r.ok for r in records.values())
        assert all(r.error_type == "SimulationError" for r in records.values())
        assert log.types().count("run_failed") == len(self.CONFIGS)

    def test_timeout_reported_as_failed_record(self):
        cfg = tiny_cfg(app="water-nsquared", granularity=64)
        rec = execute(cfg, timeout=1e-4)
        assert not rec.ok and rec.error_type == "CellTimeout"

    def test_parallel_matches_serial_bit_identical(self):
        serial = execute_many(self.CONFIGS, jobs=1)
        parallel = execute_many(self.CONFIGS, jobs=4)
        assert list(serial) == list(parallel)
        for cfg in self.CONFIGS:
            assert serial[cfg].summary() == parallel[cfg].summary()

    def test_second_sweep_served_entirely_from_disk(self, tmp_path):
        log1 = EventLog()
        execute_many(self.CONFIGS, jobs=2, cache=ResultCache(tmp_path), events=log1)
        assert log1.types().count("run_finished") == len(self.CONFIGS)
        # fresh cache object = what a fresh interpreter would build
        log2 = EventLog(str(tmp_path / "events.jsonl"))
        records = execute_many(
            self.CONFIGS, jobs=2, cache=ResultCache(tmp_path), events=log2
        )
        assert all(r.cached for r in records.values())
        logged = read_events(str(tmp_path / "events.jsonl"))
        types = {e["type"] for e in logged}
        assert not types & set(RUN_EVENT_TYPES)
        assert sum(1 for e in logged if e["type"] == "cache_hit") == len(self.CONFIGS)

    def test_cached_summaries_match_fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh = execute_many(self.CONFIGS, cache=cache)
        cached = execute_many(self.CONFIGS, cache=ResultCache(tmp_path))
        for cfg in self.CONFIGS:
            assert cached[cfg].summary() == fresh[cfg].summary()

    def test_duplicate_configs_collapse(self):
        cfg = tiny_cfg()
        records = execute_many([cfg, cfg, cfg])
        assert len(records) == 1


class TestSweepIntegration:
    def test_sweep_jobs_matches_serial(self):
        kwargs = dict(
            protocols=["sc", "hlrc"], granularities=[64, 4096],
            scale="tiny", nprocs=4,
        )
        clear_cache()
        serial = sweep(["lu"], **kwargs)
        clear_cache()
        parallel = sweep(["lu"], jobs=4, **kwargs)
        clear_cache()
        assert {c: r.summary() for c, r in serial.items()} == {
            c: r.summary() for c, r in parallel.items()
        }

    def test_sweep_uses_disk_cache(self, tmp_path):
        kwargs = dict(
            protocols=["sc"], granularities=[1024], scale="tiny", nprocs=4
        )
        clear_cache()
        sweep(["fft"], cache=ResultCache(tmp_path), **kwargs)
        clear_cache()
        log = EventLog()
        out = sweep(["fft"], cache=ResultCache(tmp_path), events=log, **kwargs)
        clear_cache()
        assert all(r.cached for r in out.values())
        assert "cache_hit" in log.types()

    def test_cached_run_forwards_overrides(self):
        clear_cache()
        cfg = tiny_cfg()
        base = cached_run(cfg)
        bigger = cached_run(cfg, n=128)
        clear_cache()
        # the override grows the problem, so the counters must differ
        assert bigger.summary() != base.summary()

    def test_speedup_matrix_skips_failed_records(self):
        cfg_ok = tiny_cfg()
        ok = execute(cfg_ok)
        cfg_bad = tiny_cfg(granularity=64)
        bad = execute(cfg_bad, max_events=50)
        m = SpeedupMatrix({cfg_ok: ok, cfg_bad: bad})
        assert m.speedup("lu", "sc", 1024) > 0
        with pytest.raises(KeyError):
            m.speedup("lu", "sc", 64)
        assert ("lu", "sc", 64) not in m.speedups()
        assert [r.config for r in m.failed()] == [cfg_bad]
        assert m.best_combination("lu")[:2] == ("sc", 1024)


class TestFingerprintScoping:
    """The cache fingerprint covers simulation semantics only:
    measurement/presentation edits must not invalidate cached results."""

    def test_relevance_predicate(self):
        from repro.exec.cache import _fingerprint_relevant

        # semantics: in
        assert _fingerprint_relevant("core/hlrc.py")
        assert _fingerprint_relevant("net/myrinet.py")
        assert _fingerprint_relevant("harness/experiment.py")
        assert _fingerprint_relevant("harness/matrix.py")
        assert _fingerprint_relevant("exec/serialize.py")
        # measurement/presentation/static analysis: out
        assert not _fingerprint_relevant("perf/micros.py")
        assert not _fingerprint_relevant("analysis/sensitivity.py")
        assert not _fingerprint_relevant("analyze/drf.py")
        assert not _fingerprint_relevant("analyze/cfg.py")
        assert not _fingerprint_relevant("harness/report.py")
        assert not _fingerprint_relevant("harness/tables.py")
        assert not _fingerprint_relevant("harness/figures.py")
        assert not _fingerprint_relevant("harness/cli.py")

    def test_perf_edit_keeps_keys_core_edit_invalidates(self, tmp_path):
        import shutil

        import repro
        from pathlib import Path

        from repro.exec.cache import _fingerprint_tree

        tree = tmp_path / "repro"
        shutil.copytree(Path(repro.__file__).parent, tree)
        before = _fingerprint_tree(tree)
        # Editing the perf suite leaves every cache key stable ...
        micros = tree / "perf" / "micros.py"
        micros.write_text(micros.read_text() + "\n# tuned threshold\n")
        assert _fingerprint_tree(tree) == before
        # ... as does editing the static analyzer ...
        drf = tree / "analyze" / "drf.py"
        drf.write_text(drf.read_text() + "\n# new ANA rule\n")
        assert _fingerprint_tree(tree) == before
        # ... while touching a protocol invalidates everything.
        hlrc = tree / "core" / "hlrc.py"
        hlrc.write_text(hlrc.read_text() + "\n# semantics change\n")
        assert _fingerprint_tree(tree) != before


class TestTimeoutDelivery:
    """The SIGALRM handler must never raise: a raise from a signal
    handler vanishes when it lands in a frame that discards exceptions
    (a GC callback, a ``__del__``) and escapes through unrelated code
    when it lands in exception-reporting machinery.  The handler only
    flags the timeout and poisons the active engine; the engine's own
    dispatch frame does the raising."""

    def test_handler_is_raise_free_and_sets_flag(self):
        import signal as _signal

        from repro.exec import pool

        pool._TIMED_OUT = False
        try:
            # No engine active: must not raise, must leave the flag.
            pool._alarm_handler(_signal.SIGALRM, None)
            assert pool._TIMED_OUT
        finally:
            pool._TIMED_OUT = False

    def test_poisoned_engine_raises_from_its_own_frame(self):
        from repro.exec.pool import CellTimeout
        from repro.sim.engine import Engine

        eng = Engine()
        ran = []
        eng.post(5.0, ran.append, "late")
        eng.interrupt(CellTimeout("per-run timeout expired"))
        with pytest.raises(CellTimeout):
            eng.run()
        # The poison sorts ahead of every pending event.
        assert ran == []

    def test_active_engine_registered_during_run(self):
        from repro.sim import engine as engine_mod
        from repro.sim.engine import Engine

        seen = []
        eng = Engine()
        eng.post(0.0, lambda: seen.append(engine_mod._ACTIVE))
        eng.run()
        assert seen == [eng]
        assert engine_mod._ACTIVE is None

    def test_handler_fire_mid_run_interrupts_the_simulation(self):
        import signal as _signal

        from repro.exec import pool
        from repro.sim.engine import Engine

        eng = Engine()
        ran = []

        def tick(k):
            if k == 2:
                # Stand-in for an asynchronous SIGALRM landing between
                # bytecodes of event k=2.
                pool._alarm_handler(_signal.SIGALRM, None)
            ran.append(k)
            eng.post(1.0, tick, k + 1)

        eng.post(0.0, tick, 0)
        try:
            with pytest.raises(pool.CellTimeout):
                eng.run()
        finally:
            pool._TIMED_OUT = False
        # Event 2 finished (the handler never raises mid-event); the
        # poison then beat event 3 to the dispatcher.
        assert ran == [0, 1, 2]

    def test_fire_outside_the_event_loop_still_fails_the_cell(self, monkeypatch):
        # A timeout whose every fire lands while no engine is
        # dispatching (setup, teardown) produces no exception at all --
        # _simulate_cell must convert the flag into a CellTimeout
        # record after the run returns.
        import signal as _signal

        import repro.harness.experiment as exp
        from repro.exec import pool

        class _FakeResult:
            stats = None
            check = None

        def fake_run_experiment(cfg, max_events=None, check=False):
            pool._alarm_handler(_signal.SIGALRM, None)
            return _FakeResult()

        monkeypatch.setattr(exp, "run_experiment", fake_run_experiment)
        rec = pool._simulate_cell(tiny_cfg(), timeout_s=60.0)
        assert not rec.ok and rec.error_type == "CellTimeout"
        assert pool._TIMED_OUT is False  # cleared on the way out


class TestTimeoutWorkerReset:
    """A CellTimeout fires at an arbitrary bytecode boundary; the
    worker must reset process-level memo state before its next cell."""

    def _timeout_cell(self):
        from repro.exec.pool import _simulate_cell

        cfg = tiny_cfg(app="water-nsquared", granularity=64)
        rec = _simulate_cell(cfg, timeout_s=1e-4)
        assert not rec.ok and rec.error_type == "CellTimeout"

    def test_timeout_resets_process_memos(self):
        import repro.exec.cache as cache_mod
        from repro.harness import matrix

        cache_mod._FINGERPRINT = "poisoned-by-interrupted-build"
        matrix._CACHE["sentinel"] = "stale"
        try:
            self._timeout_cell()
            assert cache_mod._FINGERPRINT is None
            assert matrix._CACHE == {}
        finally:
            cache_mod._FINGERPRINT = None
            matrix._CACHE.clear()

    def test_registered_reset_hook_runs(self):
        from repro.exec import pool

        calls = []
        pool.register_worker_reset(lambda: calls.append(1))
        try:
            self._timeout_cell()
            assert calls == [1]
        finally:
            pool._WORKER_RESETS.clear()

    def test_normal_cell_after_timeout_is_cache_identical(self, tmp_path):
        # The regression the reset exists for: a timed-out cell followed
        # by a normal cell in the same process must produce exactly the
        # record (and cache entry) a fresh process would.
        cache = ResultCache(tmp_path)
        cfg = tiny_cfg()
        fresh = execute(cfg, cache=cache)
        assert fresh.ok
        key_fresh = cache.key(cfg)
        self._timeout_cell()
        again = execute(cfg, cache=ResultCache(tmp_path))
        assert again.cached  # same key -> served from disk
        assert ResultCache(tmp_path).key(cfg) == key_fresh
        assert again.summary() == fresh.summary()


class TestMaxEventsPlumbing:
    def test_machine_accepts_max_events(self):
        m = Machine(MachineParams(n_nodes=2, granularity=1024), max_events=123)
        assert m.engine._max_events == 123

    def test_run_experiment_budget_raises(self):
        with pytest.raises(SimulationError):
            run_experiment(tiny_cfg(), max_events=50)
