"""Tests for the markdown report generator and its CLI command."""

import pytest

from repro.harness.matrix import clear_cache
from repro.harness.report import generate_report


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_cache()
    yield
    clear_cache()


def test_report_subset_contains_sections():
    text = generate_report(scale="tiny", nprocs=4, apps=["lu", "fft"])
    assert "# Reproduction report" in text
    assert "Table 1: sequential times" in text
    assert "Section 3 microbenchmark" in text
    assert "Figure 1: speedups" in text
    assert "lu" in text and "fft" in text
    assert "Headline claims" in text
    # Partial app set: no Table 17 (needs all versions).
    assert "Table 17" not in text


def test_report_includes_hm_when_enough_originals():
    text = generate_report(
        scale="tiny", nprocs=4,
        apps=["lu", "fft", "ocean-original", "water-nsquared"],
        fault_apps=["lu"],
    )
    assert "Table 16" in text
    assert "g_best" in text


def test_report_cli_writes_file(tmp_path, capsys):
    from repro.harness.cli import main

    out = tmp_path / "report.md"
    rc = main([
        "report", "--scale", "tiny", "--nprocs", "4",
        "--apps", "lu", "--out", str(out),
    ])
    assert rc == 0
    assert out.exists()
    assert "# Reproduction report" in out.read_text()
