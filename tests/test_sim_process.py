"""Unit tests for processes, futures, latches, and signals."""

import pytest

from repro.sim import CountdownLatch, Engine, Future, Process, ProcessCrashed, Signal
from repro.sim.process import all_of


def test_process_sleeps_advance_time():
    eng = Engine()
    trace = []

    def prog():
        trace.append(eng.now)
        yield 10.0
        trace.append(eng.now)
        yield 5
        trace.append(eng.now)

    Process(eng, prog())
    eng.run()
    assert trace == [0.0, 10.0, 15.0]


def test_process_return_value_via_completion():
    eng = Engine()

    def prog():
        yield 1.0
        return 42

    p = Process(eng, prog())
    results = []
    p.completion.add_callback(results.append)
    eng.run()
    assert p.finished
    assert p.result == 42
    assert results == [42]


def test_completion_after_finish_still_resolves():
    eng = Engine()

    def prog():
        yield 1.0
        return "done"

    p = Process(eng, prog())
    eng.run()
    results = []
    p.completion.add_callback(results.append)
    eng.run()
    assert results == ["done"]


def test_future_wakes_process_with_value():
    eng = Engine()
    fut = Future(eng)
    got = []

    def prog():
        value = yield fut
        got.append((eng.now, value))

    Process(eng, prog())
    eng.schedule(30.0, fut.resolve, "hello")
    eng.run()
    assert got == [(30.0, "hello")]


def test_future_double_resolve_rejected():
    eng = Engine()
    fut = Future(eng)
    fut.resolve(1)
    with pytest.raises(Exception):
        fut.resolve(2)


def test_future_callback_after_done_fires():
    eng = Engine()
    fut = Future(eng)
    fut.resolve("v")
    got = []
    fut.add_callback(got.append)
    eng.run()
    assert got == ["v"]


def test_multiple_waiters_on_one_future():
    eng = Engine()
    fut = Future(eng)
    got = []

    def waiter(tag):
        v = yield fut
        got.append((tag, v))

    Process(eng, waiter("a"))
    Process(eng, waiter("b"))
    eng.schedule(1.0, fut.resolve, 7)
    eng.run()
    assert sorted(got) == [("a", 7), ("b", 7)]


def test_latch_resolves_after_n_hits():
    eng = Engine()
    latch = CountdownLatch(eng, 3)
    done_at = []

    def prog():
        yield latch
        done_at.append(eng.now)

    Process(eng, prog())
    for t in (1.0, 2.0, 3.0):
        eng.schedule(t, latch.hit)
    eng.run()
    assert done_at == [3.0]


def test_latch_zero_count_already_done():
    eng = Engine()
    latch = CountdownLatch(eng, 0)
    assert latch.done
    done = []

    def prog():
        yield latch
        done.append(eng.now)

    Process(eng, prog())
    eng.run()
    assert done == [0.0]


def test_latch_overhit_rejected():
    eng = Engine()
    latch = CountdownLatch(eng, 1)
    latch.hit()
    with pytest.raises(Exception):
        latch.hit()


def test_latch_negative_count_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        CountdownLatch(eng, -1)


def test_signal_broadcast_wakes_all_current_waiters_only():
    eng = Engine()
    sig = Signal(eng)
    woken = []

    def waiter(tag):
        v = yield sig
        woken.append((tag, v, eng.now))

    Process(eng, waiter("a"))
    Process(eng, waiter("b"))
    eng.schedule(5.0, sig.broadcast, "x")
    eng.run()
    assert sorted(woken) == [("a", "x", 5.0), ("b", "x", 5.0)]
    # A new broadcast with no waiters is a no-op.
    sig.broadcast("y")
    eng.run()
    assert len(woken) == 2


def test_yield_from_composition():
    eng = Engine()
    trace = []

    def inner():
        yield 2.0
        return "inner-result"

    def outer():
        r = yield from inner()
        trace.append((eng.now, r))
        yield 3.0
        trace.append(eng.now)

    Process(eng, outer())
    eng.run()
    assert trace == [(2.0, "inner-result"), 5.0]


def test_process_crash_wraps_exception():
    eng = Engine()

    def prog():
        yield 1.0
        raise ValueError("boom")

    Process(eng, prog(), name="bad")
    with pytest.raises(ProcessCrashed, match="bad"):
        eng.run()


def test_process_bad_effect_rejected():
    eng = Engine()

    def prog():
        yield "not-an-effect"

    Process(eng, prog(), name="weird")
    with pytest.raises(Exception, match="unsupported effect"):
        eng.run()


def test_negative_sleep_rejected():
    eng = Engine()

    def prog():
        yield -5.0

    Process(eng, prog())
    with pytest.raises(Exception, match="negative"):
        eng.run()


def test_all_of_waits_for_every_future():
    eng = Engine()
    futs = [Future(eng) for _ in range(3)]
    combined = all_of(eng, futs)
    done_at = []

    def prog():
        yield combined
        done_at.append(eng.now)

    Process(eng, prog())
    for t, f in zip((3.0, 1.0, 2.0), futs):
        eng.schedule(t, f.resolve)
    eng.run()
    assert done_at == [3.0]


def test_all_of_empty_resolves_immediately():
    eng = Engine()
    combined = all_of(eng, [])
    assert combined.done


def test_two_processes_interleave_deterministically():
    eng = Engine()
    trace = []

    def prog(tag, period):
        for _ in range(3):
            yield period
            trace.append((tag, eng.now))

    Process(eng, prog("a", 2.0))
    Process(eng, prog("b", 3.0))
    eng.run()
    # At t=6 both wake; b's wakeup was scheduled earlier (at t=3) than
    # a's (at t=4), so FIFO tie-breaking runs b first.
    assert trace == [
        ("a", 2.0),
        ("b", 3.0),
        ("a", 4.0),
        ("b", 6.0),
        ("a", 6.0),
        ("b", 9.0),
    ]
