"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError


def test_time_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_events_run_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(5.0, order.append, "b")
    eng.schedule(1.0, order.append, "a")
    eng.schedule(9.0, order.append, "c")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 9.0


def test_ties_broken_fifo():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(3.0, order.append, i)
    eng.run()
    assert order == list(range(10))


def test_zero_delay_runs_after_current_instant_fifo():
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.schedule(0.0, order.append, "nested")

    eng.schedule(1.0, first)
    eng.schedule(1.0, order.append, "second")
    eng.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1.0, lambda: None)


def test_cancel_prevents_execution():
    eng = Engine()
    hits = []
    ev = eng.schedule(1.0, hits.append, 1)
    eng.schedule(2.0, hits.append, 2)
    ev.cancel()
    eng.run()
    assert hits == [2]


def test_cancel_is_idempotent():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    eng.run()


def test_run_until_stops_early_and_preserves_events():
    eng = Engine()
    hits = []
    eng.schedule(1.0, hits.append, 1)
    eng.schedule(10.0, hits.append, 2)
    eng.run(until=5.0)
    assert hits == [1]
    assert eng.now == 5.0
    eng.run()
    assert hits == [1, 2]
    assert eng.now == 10.0


def test_run_until_advances_clock_even_with_empty_queue():
    eng = Engine()
    eng.run(until=42.0)
    assert eng.now == 42.0


def test_schedule_at_absolute_time():
    eng = Engine()
    hits = []
    eng.schedule_at(7.5, hits.append, "x")
    eng.run()
    assert eng.now == 7.5
    assert hits == ["x"]


def test_schedule_at_now_is_legal():
    # Regression: schedule_at used to route through schedule(time - now)
    # and float subtraction could reject a legal time == now.
    eng = Engine()
    order = []

    def at_five():
        order.append("a")
        eng.schedule_at(eng.now, order.append, "b")

    eng.schedule(5.0, at_five)
    eng.schedule(5.0, order.append, "mid")
    eng.run()
    assert order == ["a", "mid", "b"]
    assert eng.now == 5.0


def test_schedule_at_clamps_float_dust_to_now():
    # 0.1 + 0.2 > 0.3 in binary floating point: an absolute time
    # computed with a different association lands a hair before `now`
    # and must be clamped to the current instant, not rejected.
    eng = Engine()
    hits = []

    def second_leg():
        assert eng.now == 0.1 + 0.2
        eng.schedule_at(0.3, hits.append, eng.now)

    eng.schedule(0.1, eng.schedule, 0.2, second_leg)
    eng.run()
    assert hits == [0.1 + 0.2]


def test_schedule_at_interleaves_with_relative_schedules():
    eng = Engine()
    order = []
    eng.schedule(2.0, order.append, "rel2")
    eng.schedule_at(1.0, order.append, "abs1")
    eng.schedule(1.0, order.append, "rel1")
    eng.schedule_at(3.0, order.append, "abs3")
    eng.run()
    assert order == ["abs1", "rel1", "rel2", "abs3"]
    assert eng.now == 3.0


def test_zero_delay_cancel_respected():
    eng = Engine()
    hits = []

    def first():
        ev = eng.schedule(0.0, hits.append, "no")
        eng.schedule(0.0, hits.append, "yes")
        ev.cancel()

    eng.schedule(1.0, first)
    eng.run()
    assert hits == ["yes"]


def test_zero_delay_orders_against_equal_time_heap_entries():
    # A tiny-but-positive delay that rounds to the current instant goes
    # through the heap; zero delays go through the FIFO lane.  Sequence
    # numbers must still interleave the two lanes in creation order.
    eng = Engine()
    order = []
    big = 1e18

    def at_big():
        tiny = 1e-7  # big + tiny == big in float64
        assert big + tiny == big
        eng.schedule(0.0, order.append, "fifo1")
        eng.schedule(tiny, order.append, "heap")
        eng.schedule(0.0, order.append, "fifo2")

    eng.schedule_at(big, at_big)
    eng.run()
    assert order == ["fifo1", "heap", "fifo2"]


def test_pending_counts_both_lanes():
    eng = Engine()

    def first():
        eng.schedule(0.0, lambda: None)
        eng.schedule(1.0, lambda: None)
        assert eng.pending == 2

    eng.schedule(1.0, first)
    assert eng.pending == 1
    eng.run()
    assert eng.pending == 0


def test_event_budget_detects_livelock():
    eng = Engine(max_events=100)

    def ping():
        eng.schedule(1.0, ping)

    eng.schedule(0.0, ping)
    with pytest.raises(SimulationError, match="event budget"):
        eng.run()


def test_step_runs_one_event():
    eng = Engine()
    hits = []
    eng.schedule(1.0, hits.append, 1)
    eng.schedule(2.0, hits.append, 2)
    assert eng.step()
    assert hits == [1]
    assert eng.step()
    assert hits == [1, 2]
    assert not eng.step()


def test_events_run_counter():
    eng = Engine()
    for i in range(5):
        eng.schedule(float(i), lambda: None)
    eng.run()
    assert eng.events_run == 5


def test_run_not_reentrant():
    eng = Engine()

    def inner():
        with pytest.raises(SimulationError, match="reentrant"):
            eng.run()

    eng.schedule(0.0, inner)
    eng.run()


def test_determinism_two_identical_runs():
    def build():
        eng = Engine()
        order = []
        for i in range(50):
            eng.schedule((i * 7919) % 13 * 0.5, order.append, i)
        eng.run()
        return order

    assert build() == build()


# ---------------------------------------------------------------------------
# pending vs lazily-cancelled entries
# ---------------------------------------------------------------------------

def test_pending_ignores_cancelled_heap_entries():
    eng = Engine()
    eng.schedule(2.0, lambda: None)
    doomed = [eng.schedule(1.0, lambda: None) for _ in range(3)]
    for ev in doomed:
        ev.cancel()
    # The heap still physically holds the cancelled entries (lazy
    # cancellation), but pending must not count them.
    assert eng.pending == 1


def test_pending_ignores_cancelled_fifo_entries():
    eng = Engine()
    hits = []

    def first():
        a = eng.schedule(0.0, hits.append, "a")
        eng.schedule(0.0, hits.append, "b")
        a.cancel()
        assert eng.pending == 1

    eng.schedule(0.0, first)
    eng.run()
    assert hits == ["b"]


# ---------------------------------------------------------------------------
# interrupt between runs / step at an empty heap
# ---------------------------------------------------------------------------

class _Boom(Exception):
    pass


def test_interrupt_while_idle_raises_on_next_run():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    # The loop is idle: the poison entry must park until the next run()
    # and fire before any real event.
    eng.interrupt(_Boom("later"))
    hits = []
    eng.schedule(1.0, hits.append, 1)
    with pytest.raises(_Boom):
        eng.run()
    assert hits == []
    # The engine survives: the parked event is still there and a fresh
    # run() completes it.
    eng.run()
    assert hits == [1]


def test_interrupt_while_idle_precedes_same_instant_events():
    eng = Engine()
    eng.interrupt(_Boom("first"))
    eng.schedule(0.0, lambda: None)
    with pytest.raises(_Boom):
        eng.run()


def test_step_at_empty_heap_is_noop():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    before = (eng.now, eng.events_run, eng.pending)
    assert eng.step() is False
    assert (eng.now, eng.events_run, eng.pending) == before


def test_step_skips_cancelled_entries_and_reports_empty():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    ev.cancel()
    assert eng.step() is False
    assert eng.now == 0.0


# ---------------------------------------------------------------------------
# scheduler policies
# ---------------------------------------------------------------------------

from repro.sim import DefaultPolicy, SchedulerPolicy  # noqa: E402


def _scripted_run(policy):
    eng = Engine()
    if policy is not None:
        eng.set_policy(policy)
    order = []
    for i in range(50):
        eng.schedule((i * 7919) % 13 * 0.5, order.append, i)
    final = eng.run()
    return order, final, eng.events_run


def test_default_policy_matches_native_order():
    assert _scripted_run(None) == _scripted_run(DefaultPolicy())


def test_policy_can_reorder_same_instant_events():
    class LastFirst(SchedulerPolicy):
        def choose(self, ready):
            return ready[-1]

    eng = Engine()
    eng.set_policy(LastFirst())
    order = []
    for i in range(4):
        eng.schedule(1.0, order.append, i)
    eng.run()
    assert order == [3, 2, 1, 0]
    assert eng.now == 1.0


def test_policy_executed_sees_every_dispatch():
    class Recorder(DefaultPolicy):
        def __init__(self):
            self.seen = []

        def executed(self, entry):
            self.seen.append(entry[1])

    rec = Recorder()
    eng = Engine()
    eng.set_policy(rec)
    for i in range(3):
        eng.schedule(float(i), lambda: None)
    eng.run()
    assert rec.seen == sorted(rec.seen)
    assert len(rec.seen) == 3


def test_ready_events_excludes_cancelled_and_sorts():
    eng = Engine()
    eng.schedule(2.0, lambda: None)
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(3.0, lambda: None)
    ev.cancel()
    ready = eng.ready_events()
    assert [e[0] for e in ready] == [2.0, 3.0]
    assert ready == sorted(ready, key=lambda e: (e[0], e[1]))


def test_set_policy_while_running_rejected():
    eng = Engine()

    def inner():
        with pytest.raises(SimulationError):
            eng.set_policy(DefaultPolicy())

    eng.schedule(0.0, inner)
    eng.run()


def test_policy_run_until_stops_early():
    eng = Engine()
    eng.set_policy(DefaultPolicy())
    hits = []
    eng.schedule(1.0, hits.append, 1)
    eng.schedule(5.0, hits.append, 2)
    assert eng.run(until=2.0) == 2.0
    assert hits == [1]
    assert eng.pending == 1
    eng.run()
    assert hits == [1, 2]
