"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError


def test_time_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_events_run_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(5.0, order.append, "b")
    eng.schedule(1.0, order.append, "a")
    eng.schedule(9.0, order.append, "c")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 9.0


def test_ties_broken_fifo():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(3.0, order.append, i)
    eng.run()
    assert order == list(range(10))


def test_zero_delay_runs_after_current_instant_fifo():
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.schedule(0.0, order.append, "nested")

    eng.schedule(1.0, first)
    eng.schedule(1.0, order.append, "second")
    eng.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1.0, lambda: None)


def test_cancel_prevents_execution():
    eng = Engine()
    hits = []
    ev = eng.schedule(1.0, hits.append, 1)
    eng.schedule(2.0, hits.append, 2)
    ev.cancel()
    eng.run()
    assert hits == [2]


def test_cancel_is_idempotent():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    eng.run()


def test_run_until_stops_early_and_preserves_events():
    eng = Engine()
    hits = []
    eng.schedule(1.0, hits.append, 1)
    eng.schedule(10.0, hits.append, 2)
    eng.run(until=5.0)
    assert hits == [1]
    assert eng.now == 5.0
    eng.run()
    assert hits == [1, 2]
    assert eng.now == 10.0


def test_run_until_advances_clock_even_with_empty_queue():
    eng = Engine()
    eng.run(until=42.0)
    assert eng.now == 42.0


def test_schedule_at_absolute_time():
    eng = Engine()
    hits = []
    eng.schedule_at(7.5, hits.append, "x")
    eng.run()
    assert eng.now == 7.5
    assert hits == ["x"]


def test_event_budget_detects_livelock():
    eng = Engine(max_events=100)

    def ping():
        eng.schedule(1.0, ping)

    eng.schedule(0.0, ping)
    with pytest.raises(SimulationError, match="event budget"):
        eng.run()


def test_step_runs_one_event():
    eng = Engine()
    hits = []
    eng.schedule(1.0, hits.append, 1)
    eng.schedule(2.0, hits.append, 2)
    assert eng.step()
    assert hits == [1]
    assert eng.step()
    assert hits == [1, 2]
    assert not eng.step()


def test_events_run_counter():
    eng = Engine()
    for i in range(5):
        eng.schedule(float(i), lambda: None)
    eng.run()
    assert eng.events_run == 5


def test_run_not_reentrant():
    eng = Engine()

    def inner():
        with pytest.raises(SimulationError, match="reentrant"):
            eng.run()

    eng.schedule(0.0, inner)
    eng.run()


def test_determinism_two_identical_runs():
    def build():
        eng = Engine()
        order = []
        for i in range(50):
            eng.schedule((i * 7919) % 13 * 0.5, order.append, i)
        eng.run()
        return order

    assert build() == build()
