"""Tests for the distributed lock service."""

import pytest

from repro import Machine, MachineParams, run_program


def make(protocol="sc", n=4, g=1024):
    return Machine(MachineParams(n_nodes=n, granularity=g), protocol=protocol)


PROTOCOLS = ["sc", "swlrc", "hlrc", "dc", "erc"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_mutual_exclusion(protocol):
    m = make(protocol)
    inside = []
    violations = []

    def program(dsm, rank, nprocs):
        for _ in range(3):
            yield from dsm.acquire(5)
            if inside:
                violations.append((rank, list(inside)))
            inside.append(rank)
            yield from dsm.compute(10.0)
            inside.remove(rank)
            yield from dsm.release(5)
        yield from dsm.barrier(0, participants=nprocs)

    run_program(m, program, nprocs=4)
    assert violations == []


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_reacquire_after_release(protocol):
    """A node re-acquiring the lock it last held must not deadlock
    (the manager forwards its request back to itself)."""
    m = make(protocol)

    def program(dsm, rank, nprocs):
        if rank == 0:
            for _ in range(5):
                yield from dsm.acquire(9)
                yield from dsm.compute(1.0)
                yield from dsm.release(9)
        yield from dsm.barrier(0, participants=nprocs)

    run_program(m, program, nprocs=2)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_chained_handoff_is_fifo_per_manager_order(protocol):
    """Requests granted in the order the manager saw them."""
    m = make(protocol, n=8)
    order = []

    def program(dsm, rank, nprocs):
        # Stagger requests so the manager sees them in rank order.
        yield from dsm.compute(1.0 + rank * 200.0)
        yield from dsm.acquire(3)
        order.append(rank)
        yield from dsm.compute(500.0)
        yield from dsm.release(3)
        yield from dsm.barrier(0, participants=nprocs)

    run_program(m, program, nprocs=8)
    assert order == sorted(order)


def test_release_without_hold_rejected():
    m = make()

    def program(dsm, rank, nprocs):
        yield from dsm.release(1)

    with pytest.raises(Exception, match="does not hold"):
        run_program(m, program, nprocs=1)


def test_reentrant_acquire_rejected():
    m = make()

    def program(dsm, rank, nprocs):
        yield from dsm.acquire(1)
        yield from dsm.acquire(1)

    with pytest.raises(Exception, match="re-entered"):
        run_program(m, program, nprocs=1)


def test_lock_acquire_counts():
    m = make()

    def program(dsm, rank, nprocs):
        for _ in range(4):
            yield from dsm.acquire(2)
            yield from dsm.release(2)
        yield from dsm.barrier(0, participants=nprocs)

    r = run_program(m, program, nprocs=3)
    assert r.stats.total_lock_acquires == 12


def test_manager_assignment_round_robin():
    m = make(n=4)
    assert m.locks.manager_of(0) == 0
    assert m.locks.manager_of(5) == 1
    assert m.locks.manager_of(7) == 3


def test_uncontended_acquire_is_fast_contended_is_slower():
    """An uncontended acquire completes in a couple of round trips; a
    contended one waits for the holder."""
    m1 = make()
    t_free = []

    def free(dsm, rank, nprocs):
        t0 = dsm.now
        yield from dsm.acquire(1)
        t_free.append(dsm.now - t0)
        yield from dsm.release(1)

    run_program(m1, free, nprocs=1)
    assert t_free[0] < 500.0  # a few control round trips at most

    m2 = make()
    t_contended = []

    def contended(dsm, rank, nprocs):
        if rank == 0:
            yield from dsm.acquire(1)
            yield from dsm.compute(5000.0)
            yield from dsm.release(1)
        else:
            yield from dsm.compute(100.0)  # ensure rank 0 wins the race
            t0 = dsm.now
            yield from dsm.acquire(1)
            t_contended.append(dsm.now - t0)
            yield from dsm.release(1)
        yield from dsm.barrier(0, participants=nprocs)

    run_program(m2, contended, nprocs=2)
    assert t_contended[0] > 4000.0


def test_lrc_lock_messages_carry_vector_bytes():
    """Under the LRC protocols lock messages are bigger (vector
    timestamps travel with requests)."""
    msizes = {}
    for proto in ("sc", "hlrc"):
        m = make(proto)

        def program(dsm, rank, nprocs):
            yield from dsm.acquire(1)
            yield from dsm.release(1)
            yield from dsm.barrier(0, participants=nprocs)

        r = run_program(m, program, nprocs=2)
        msizes[proto] = r.stats.msg_bytes["lock_req"]
    assert msizes["hlrc"] > msizes["sc"]
