"""Tests for the node model: CPU debt accounting and notification
mechanisms."""

import pytest

from repro.cluster.config import MachineParams, NotificationMechanism
from repro.cluster.node import BLOCKED, COMPUTE, IDLE, Node
from repro.net.message import Message
from repro.sim.engine import Engine
from repro.sim.process import Future, Process
from repro.stats.counters import Stats


def make_node(mechanism=NotificationMechanism.POLLING, poll_dilation=0.0,
              handler=None):
    eng = Engine()
    params = MachineParams(n_nodes=2, mechanism=mechanism)
    stats = Stats(2)
    handled = []
    node = Node(
        0, eng, params, stats,
        handler or (lambda n, m: handled.append((eng.now, m))),
        poll_dilation,
    )
    return eng, params, stats, node, handled


class TestCompute:
    def test_compute_advances_time(self):
        eng, params, stats, node, _ = make_node()
        done = []

        def prog():
            yield from node.compute(100.0)
            done.append(eng.now)

        Process(eng, prog())
        eng.run()
        assert done == [100.0]
        assert stats.nodes[0].compute_us == 100.0

    def test_poll_dilation_stretches_compute(self):
        eng, params, stats, node, _ = make_node(poll_dilation=0.55)
        done = []

        def prog():
            yield from node.compute(100.0)
            done.append(eng.now)

        Process(eng, prog())
        eng.run()
        assert done == [pytest.approx(155.0)]

    def test_interrupt_mechanism_has_no_dilation(self):
        eng, params, stats, node, _ = make_node(
            mechanism=NotificationMechanism.INTERRUPT, poll_dilation=0.55
        )
        done = []

        def prog():
            yield from node.compute(100.0)
            done.append(eng.now)

        Process(eng, prog())
        eng.run()
        assert done == [pytest.approx(100.0)]

    def test_handler_steals_cycles_from_compute(self):
        """A handler arriving mid-compute extends the compute segment
        by its cost (debt accounting)."""
        eng, params, stats, node, handled = make_node()
        done = []

        def prog():
            yield from node.compute(100.0)
            done.append(eng.now)

        Process(eng, prog())
        msg = Message(src=1, dst=0, mtype="x", size_bytes=24, handle_cost_us=20.0)
        eng.schedule(50.0, node.deliver, msg)
        eng.run()
        # 100us of work + 20us stolen by the handler.
        assert done[0] == pytest.approx(120.0)

    def test_zero_compute_is_noop(self):
        eng, params, stats, node, _ = make_node()

        def prog():
            yield from node.compute(0.0)
            return eng.now

        p = Process(eng, prog())
        eng.run()
        assert p.result == 0.0

    def test_negative_compute_rejected(self):
        eng, params, stats, node, _ = make_node()

        def prog():
            yield from node.compute(-1.0)

        Process(eng, prog())
        with pytest.raises(Exception):
            eng.run()


class TestNotification:
    def test_polling_delay_while_computing(self):
        eng, params, stats, node, handled = make_node()

        def prog():
            yield from node.compute(1000.0)

        Process(eng, prog())
        msg = Message(src=1, dst=0, mtype="x", size_bytes=24, handle_cost_us=3.0)
        eng.schedule(100.0, node.deliver, msg)
        eng.run()
        t = handled[0][0]
        expected = 100.0 + params.poll_backedge_gap_us + params.poll_round_trip_us + 3.0
        assert t == pytest.approx(expected)

    def test_interrupt_delay_while_computing(self):
        eng, params, stats, node, handled = make_node(
            mechanism=NotificationMechanism.INTERRUPT
        )

        def prog():
            yield from node.compute(1000.0)

        Process(eng, prog())
        msg = Message(src=1, dst=0, mtype="x", size_bytes=24, handle_cost_us=3.0)
        eng.schedule(100.0, node.deliver, msg)
        eng.run()
        assert handled[0][0] == pytest.approx(100.0 + params.interrupt_us + 3.0)

    def test_blocked_node_polls_fast_under_both_mechanisms(self):
        for mech in NotificationMechanism:
            eng, params, stats, node, handled = make_node(mechanism=mech)
            fut = Future(eng)

            def prog():
                yield from node.wait(fut, "fault_wait_us")

            Process(eng, prog())
            msg = Message(src=1, dst=0, mtype="x", size_bytes=24,
                          handle_cost_us=3.0)
            eng.schedule(10.0, node.deliver, msg)
            eng.schedule(1000.0, fut.resolve, None)
            eng.run()
            assert handled[0][0] == pytest.approx(
                10.0 + params.blocked_poll_us + 3.0
            ), mech

    def test_handlers_serialize_on_one_cpu(self):
        eng, params, stats, node, handled = make_node()
        for k in range(3):
            msg = Message(src=1, dst=0, mtype=f"m{k}", size_bytes=24,
                          handle_cost_us=10.0)
            eng.schedule(5.0, node.deliver, msg)
        eng.run()
        times = [t for t, _ in handled]
        assert times[1] - times[0] == pytest.approx(10.0)
        assert times[2] - times[1] == pytest.approx(10.0)

    def test_handler_time_accounted(self):
        eng, params, stats, node, handled = make_node()
        msg = Message(src=1, dst=0, mtype="x", size_bytes=24, handle_cost_us=7.5)
        eng.schedule(0.0, node.deliver, msg)
        eng.run()
        assert stats.nodes[0].handler_us == 7.5


class TestBackToBackInterrupts:
    """Back-to-back wire arrivals whose ~70 us interrupt windows
    overlap: each arrival pays its own signal path (computed from the
    node state at arrival time), then the handlers serialize behind
    ``_handler_busy_until``."""

    def test_overlapping_windows_serialize_handlers(self):
        eng, params, stats, node, handled = make_node(
            mechanism=NotificationMechanism.INTERRUPT
        )

        def prog():
            yield from node.compute(1000.0)

        Process(eng, prog())
        for k in range(2):
            msg = Message(src=1, dst=0, mtype=f"m{k}", size_bytes=24,
                          handle_cost_us=10.0)
            # 1 us apart: both arrive well inside the first message's
            # interrupt window.
            eng.schedule(100.0 + k, node.deliver, msg)
        eng.run()
        first = 100.0 + params.interrupt_us + 10.0
        # The second arrival's own window ends before the first handler
        # is done, so it queues: busy-until + cost, not arrival + window.
        second = first + 10.0
        assert [t for t, _ in handled] == [
            pytest.approx(first), pytest.approx(second)
        ]
        assert handled[0][1].mtype == "m0"
        # Both handlers stole cycles from the compute segment.
        assert stats.nodes[0].handler_us == pytest.approx(20.0)

    def test_simultaneous_arrivals_keep_delivery_order(self):
        # The reliable transport drains a held reorder buffer by
        # handing the node several messages at the same instant; the
        # node must space them out in the order given.
        eng, params, stats, node, handled = make_node(
            mechanism=NotificationMechanism.INTERRUPT
        )

        def prog():
            yield from node.compute(1000.0)

        Process(eng, prog())

        def burst():
            for k in range(3):
                node.deliver(Message(src=1, dst=0, mtype=f"b{k}",
                                     size_bytes=24, handle_cost_us=5.0))

        eng.schedule(200.0, burst)
        eng.run()
        assert [m.mtype for _, m in handled] == ["b0", "b1", "b2"]
        times = [t for t, _ in handled]
        base = 200.0 + params.interrupt_us + 5.0
        assert times == [pytest.approx(base + 5.0 * k) for k in range(3)]

    def test_back_to_back_with_injected_faults(self):
        # Full-machine variant: the interrupt mechanism under a lossy
        # wire.  Dropped messages are retransmitted and every data
        # message is eventually handled exactly once -- the overlapping
        # notification windows never wedge the node.
        from repro.harness.experiment import RunConfig, run_experiment
        from repro.net.faultplan import FaultSpec

        cfg = RunConfig(
            "lu", "hlrc", 1024, mechanism="interrupt", nprocs=4, scale="tiny",
            faults=FaultSpec(seed=3, drop_prob=0.05, dup_prob=0.02,
                             reorder_prob=0.05),
        )
        result = run_experiment(cfg)
        t = result.stats.transport
        assert result.stats.speedup > 0
        assert t.drops > 0 and t.retransmits >= 1
        # exactly-once: every suppressed duplicate was counted, none
        # reached a protocol handler twice (the run would deadlock or
        # corrupt -- completion plus the invariant checkers in
        # tests/test_chaos.py pin this).
        assert t.dup_suppressed >= 1


class TestWaitAccounting:
    def test_wait_time_attributed_to_kind(self):
        eng, params, stats, node, _ = make_node()
        fut = Future(eng)

        def prog():
            yield from node.wait(fut, "lock_wait_us")

        Process(eng, prog())
        eng.schedule(42.0, fut.resolve, None)
        eng.run()
        assert stats.nodes[0].lock_wait_us == pytest.approx(42.0)
        assert stats.nodes[0].fault_wait_us == 0.0

    def test_wait_returns_value(self):
        eng, params, stats, node, _ = make_node()
        fut = Future(eng)

        def prog():
            v = yield from node.wait(fut, "fault_wait_us")
            return v

        p = Process(eng, prog())
        eng.schedule(1.0, fut.resolve, "data!")
        eng.run()
        assert p.result == "data!"

    def test_state_transitions(self):
        eng, params, stats, node, _ = make_node()
        states = []

        def prog():
            states.append(node.cpu.state)
            yield from node.compute(10.0)
            states.append(node.cpu.state)

        Process(eng, prog())
        eng.run()
        assert states == [IDLE, IDLE]
