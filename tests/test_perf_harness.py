"""The simulator-core perf suite: determinism, schema, and the gate.

Three properties matter:

* the measured workloads are deterministic -- two in-process runs of a
  full-cell micro produce bit-identical stats (same hash);
* ``BENCH_simcore.json`` (the committed baseline) matches the schema
  the gate reads;
* the gate actually fails: a synthetic 2x slowdown against a baseline
  exits nonzero through the real CLI path, and a stats-hash change is
  flagged even at identical speed.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.perf import (
    MICROS,
    PerfError,
    compare,
    format_suite,
    load_baseline,
    run_suite,
    save_baseline,
)
from repro.perf.gate import _measure
from repro.perf.micros import (
    MICRO_TUNING,
    diff_roundtrip,
    engine_churn,
    full_cell_swlrc,
    vc_merge,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "BENCH_simcore.json")


# ----------------------------------------------------------------------
# workload determinism
# ----------------------------------------------------------------------
def test_full_cell_bit_identical_across_runs():
    counts1, sha1 = full_cell_swlrc()
    counts2, sha2 = full_cell_swlrc()
    assert sha1 == sha2
    assert counts1 == counts2
    assert counts1["events"] > 0


def test_throughput_micros_report_fixed_work():
    for fn in (engine_churn, vc_merge, diff_roundtrip):
        c1, _ = fn()
        c2, _ = fn()
        assert c1 == c2, fn.__name__


def test_measure_rejects_nondeterministic_micro():
    calls = [0]

    def flappy():
        calls[0] += 1
        return {"ops": 1}, f"sha-{calls[0]}"

    with pytest.raises(PerfError, match="non-deterministic"):
        _measure("flappy", flappy, reps=2, warmup=0)


def test_run_suite_rejects_unknown_micro():
    with pytest.raises(PerfError, match="unknown micro"):
        run_suite(reps=1, warmup=0, micros=["no_such_micro"], shares=False)


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
def test_committed_baseline_schema():
    data = load_baseline(BASELINE)
    assert data["schema"] == 1
    assert data["reps"] >= 1
    assert data["calibration"]["spin_ms"] > 0
    assert set(data["micros"]) == set(MICROS)
    for name, m in data["micros"].items():
        assert m["median_ms"] > 0, name
        assert m["mad_ms"] >= 0, name
        # noisy micros carry a rep floor on top of the suite default
        floor = MICRO_TUNING.get(name, {}).get("min_reps", 0)
        assert len(m["times_ms"]) == max(data["reps"], floor), name
        if name.startswith("full_cell_"):
            assert m["stats_sha"], name
            assert m["runs_per_sec"] > 0, name
            assert m["events_per_sec"] > 0, name
        else:
            assert m["stats_sha"] is None, name
    shares = data["subsystem_shares"]
    assert set(shares) >= {"engine", "protocol", "network", "runtime",
                           "apps", "other"}
    assert abs(sum(shares.values()) - 1.0) < 0.01


def test_fresh_suite_round_trips_through_json(tmp_path):
    suite = run_suite(reps=2, warmup=0, micros=["vc_merge"], shares=False)
    path = tmp_path / "bench.json"
    save_baseline(suite, str(path))
    data = load_baseline(str(path))
    assert data["micros"]["vc_merge"]["median_ms"] == pytest.approx(
        suite.micros["vc_merge"].median_ms, abs=1e-3
    )
    assert "ops/s" in format_suite(suite)


def test_load_baseline_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "micros": {}}))
    with pytest.raises(PerfError, match="schema"):
        load_baseline(str(path))


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
def _tiny_suite_dict():
    suite = run_suite(reps=2, warmup=0, micros=["full_cell_sc"], shares=False)
    return suite.to_dict()


def test_gate_passes_against_itself():
    current = _tiny_suite_dict()
    report = compare(current, copy.deepcopy(current))
    assert report.ok
    assert "gate PASSED" in report.describe()


def test_gate_fails_on_synthetic_2x_slowdown():
    baseline = _tiny_suite_dict()
    slowed = copy.deepcopy(baseline)
    for m in slowed["micros"].values():
        m["median_ms"] *= 2.0
    report = compare(slowed, baseline)
    assert not report.ok
    assert [r.micro for r in report.regressions] == ["full_cell_sc"]
    assert "REGRESSED" in report.describe()
    # ... and the other direction (a speedup) stays green.
    assert compare(baseline, slowed).ok


def test_gate_normalizes_by_calibration():
    baseline = _tiny_suite_dict()
    # Same workload timings measured on a machine twice as slow: the
    # calibration spin doubles too, so the gate must not flag it.
    slow_machine = copy.deepcopy(baseline)
    slow_machine["calibration"]["spin_ms"] *= 2.0
    for m in slow_machine["micros"].values():
        m["median_ms"] *= 2.0
    assert compare(slow_machine, baseline).ok


def test_gate_flags_determinism_break_at_equal_speed():
    baseline = _tiny_suite_dict()
    mutated = copy.deepcopy(baseline)
    mutated["micros"]["full_cell_sc"]["stats_sha"] = "deadbeefdeadbeef"
    report = compare(mutated, baseline)
    assert not report.ok
    assert report.regressions[0].determinism_broken
    assert "DETERMINISM" in report.describe()


def test_gate_skips_micros_missing_from_either_side():
    baseline = _tiny_suite_dict()
    current = copy.deepcopy(baseline)
    current["micros"]["brand_new_micro"] = {"median_ms": 1.0, "mad_ms": 0.0,
                                           "times_ms": [1.0], "stats_sha": None}
    baseline["micros"]["retired_micro"] = {"median_ms": 1.0, "mad_ms": 0.0,
                                           "times_ms": [1.0], "stats_sha": None}
    report = compare(current, baseline)
    assert [r.micro for r in report.rows] == ["full_cell_sc"]
    assert report.ok


# ----------------------------------------------------------------------
# CLI exit codes (the contract the CI perf job relies on)
# ----------------------------------------------------------------------
def test_cli_gate_exit_codes(tmp_path, capsys):
    from repro.harness.cli import main

    baseline_path = tmp_path / "bench.json"
    argv = ["perf", "--reps", "2", "--micros", "full_cell_sc",
            "--against", str(baseline_path)]
    # Missing baseline: hard failure so CI never silently skips the gate.
    assert main(argv) == 2
    # Record a baseline, then gate against it: passes.
    assert main(argv + ["--update"]) == 0
    assert main(argv) == 0
    # Synthetic 2x slowdown written into the baseline file (i.e. the
    # baseline machine was twice as fast at everything *except* the
    # calibration spin): the real CLI path must exit 2.
    data = json.loads(baseline_path.read_text())
    for m in data["micros"].values():
        m["median_ms"] /= 2.0
    baseline_path.write_text(json.dumps(data))
    assert main(argv) == 2
    out = capsys.readouterr().out
    assert "gate FAILED" in out
