"""Tests for vector clocks, intervals, and write notices."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timestamps import IntervalLog, VectorClock, WriteNotice


class TestVectorClock:
    def test_starts_zero(self):
        vc = VectorClock(4)
        assert vc.as_tuple() == (0, 0, 0, 0)

    def test_tick_increments_own_component(self):
        vc = VectorClock(4)
        assert vc.tick(2) == 1
        assert vc.tick(2) == 2
        assert vc.as_tuple() == (0, 0, 2, 0)

    def test_merge_elementwise_max(self):
        a = VectorClock(3)
        a.v = [1, 5, 2]
        a.merge((3, 1, 2))
        assert a.as_tuple() == (3, 5, 2)

    def test_copy_is_independent(self):
        a = VectorClock(3)
        b = a.copy()
        a.tick(0)
        assert b.as_tuple() == (0, 0, 0)

    def test_dominates(self):
        a = VectorClock(2)
        a.v = [2, 3]
        assert a.dominates((2, 3))
        assert a.dominates((1, 0))
        assert not a.dominates((3, 0))

    @given(
        xs=st.lists(st.integers(min_value=0, max_value=100), min_size=4, max_size=4),
        ys=st.lists(st.integers(min_value=0, max_value=100), min_size=4, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_produces_upper_bound(self, xs, ys):
        a = VectorClock(4)
        a.v = list(xs)
        a.merge(ys)
        assert a.dominates(xs)
        assert a.dominates(ys)
        # least upper bound
        assert all(v == max(x, y) for v, x, y in zip(a.v, xs, ys))


class TestIntervalLog:
    def test_close_interval_appends(self):
        log = IntervalLog(2)
        idx = log.close_interval(0, [WriteNotice(5, 1, 0)])
        assert idx == 0
        assert log.intervals_of(0) == 1
        assert log.intervals_of(1) == 0

    def test_notices_between_empty_ranges(self):
        log = IntervalLog(2)
        log.close_interval(0, [WriteNotice(1, 1, 0)])
        assert log.notices_between((1, 0), (1, 0)) == []

    def test_notices_between_returns_unseen(self):
        log = IntervalLog(2)
        log.close_interval(0, [WriteNotice(1, 1, 0)])
        log.close_interval(0, [WriteNotice(2, 1, 0)])
        log.close_interval(1, [WriteNotice(3, 1, 1)])
        out = log.notices_between((0, 0), (2, 1))
        blocks = sorted(n.block for n in out)
        assert blocks == [1, 2, 3]

    def test_notices_between_partial(self):
        log = IntervalLog(1)
        for k in range(5):
            log.close_interval(0, [WriteNotice(k, 1, 0)])
        out = log.notices_between((2,), (4,))
        assert sorted(n.block for n in out) == [2, 3]

    def test_notice_count_matches(self):
        log = IntervalLog(2)
        log.close_interval(0, [WriteNotice(1, 1, 0), WriteNotice(2, 1, 0)])
        log.close_interval(1, [WriteNotice(3, 1, 1)])
        assert log.notice_count_between((0, 0), (1, 1)) == 3

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_vector_difference_covers_exactly_unseen_intervals(self, data):
        n = 3
        log = IntervalLog(n)
        counts = [data.draw(st.integers(min_value=0, max_value=5)) for _ in range(n)]
        tag = 0
        expected = {}
        for node in range(n):
            for k in range(counts[node]):
                log.close_interval(node, [WriteNotice(tag, 1, node)])
                expected[(node, k)] = tag
                tag += 1
        seen = tuple(
            data.draw(st.integers(min_value=0, max_value=counts[i])) for i in range(n)
        )
        out = log.notices_between(seen, tuple(counts))
        got = sorted(wn.block for wn in out)
        want = sorted(
            expected[(node, k)]
            for node in range(n)
            for k in range(seen[node], counts[node])
        )
        assert got == want


class TestWriteNotice:
    def test_frozen(self):
        wn = WriteNotice(1, 2, 3)
        with pytest.raises(AttributeError):
            wn.block = 9

    def test_fields(self):
        wn = WriteNotice(block=7, version=3, owner=1)
        assert (wn.block, wn.version, wn.owner) == (7, 3, 1)
