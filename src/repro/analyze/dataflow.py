"""Lockset + barrier-region dataflow over the app CFG.

Computes, for every shared access site, its *synchronization context*:

* the **must-lockset** -- lock-id expressions held on every path to
  the access (forward analysis, meet = intersection).  Lock ids are
  compared as normalized source expressions (``100 + owner``), which
  is exactly the right granularity for the SPLASH-style lock families
  the apps use: within one loop iteration the same expression denotes
  the same concrete lock.
* the **barrier region** -- the set of barrier sites reaching the
  access without an intervening barrier (backward-looking), and the
  set of next barriers (forward-looking).  Rendered as "between
  barrier(a) and barrier(b)" in findings so a reader can see which
  phase an access sits in.
* the active ``assume_disjoint`` scopes and the inline chain, carried
  over from the CFG build.

The results are *contexts for reporting and audit*; the authoritative
conflict decisions use the concrete per-rank locksets and barrier
clocks from :mod:`repro.analyze.footprint` (a must-lockset can lose a
conditionally held lock that the concrete exploration tracks
precisely, e.g. barnes' ``if locked: acquire``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analyze.cfg import Cfg, OpNode

#: sentinel region names for program start / end
START = "program start"
END = "program end"


@dataclass
class SiteContext:
    """Merged synchronization context of one source site.

    One source line can be reached through several inline paths (e.g.
    a task helper inlined under both the own-queue drain and the steal
    path); contexts are merged per (file, line): locks by
    intersection (must across all paths), regions and scopes by union.
    """

    file: str
    line: int
    end_line: int
    kind: str  # 'r' | 'w' | 'barrier' | 'acquire' | 'release'
    addr_src: str
    size_src: str
    locks: FrozenSet[str] = frozenset()
    regions: Set[str] = field(default_factory=set)
    disjoint: Set[str] = field(default_factory=set)
    chains: Set[Tuple[str, ...]] = field(default_factory=set)

    def region_text(self) -> str:
        return " | ".join(sorted(self.regions)) or "?"

    def locks_text(self) -> str:
        return "{" + ", ".join(sorted(self.locks)) + "}" if self.locks else "none"


def _barrier_label(op: OpNode) -> str:
    return f"barrier({op.args_src[0] if op.args_src else '?'})@{op.line}"


def _must_locksets(cfg: Cfg) -> Dict[int, FrozenSet[str]]:
    """Lockset *entering* each node (None = unreached TOP)."""
    n = len(cfg.nodes)
    out: List[Optional[FrozenSet[str]]] = [None] * n
    in_: List[Optional[FrozenSet[str]]] = [None] * n
    in_[cfg.entry] = frozenset()
    work = [cfg.entry]
    while work:
        nid = work.pop()
        node = cfg.nodes[nid]
        cur = in_[nid] if in_[nid] is not None else frozenset()
        op = node.op
        if op is not None and op.kind == "acquire" and op.args_src:
            cur = cur | {op.args_src[0]}
        elif op is not None and op.kind == "release" and op.args_src:
            cur = cur - {op.args_src[0]}
        if out[nid] is not None and out[nid] == cur:
            continue
        out[nid] = cur
        for s in node.succs:
            new = cur if in_[s] is None else (in_[s] & cur)
            if in_[s] is None or new != in_[s]:
                in_[s] = new
                work.append(s)
    return {i: (v if v is not None else frozenset()) for i, v in enumerate(in_)}


def _reaching_barriers(cfg: Cfg, forward: bool) -> Dict[int, FrozenSet[str]]:
    """Per node: barrier labels reaching it with no barrier between.

    ``forward=True`` answers "which barrier most recently preceded
    this node"; ``forward=False`` runs on the reversed graph and
    answers "which barrier comes next".
    """
    n = len(cfg.nodes)
    if forward:
        edges = [cfg.nodes[i].succs for i in range(n)]
        roots = [cfg.entry]
        root_val = frozenset({START if forward else END})
    else:
        edges = [cfg.nodes[i].preds for i in range(n)]
        roots = [i for i in range(n) if not cfg.nodes[i].succs]
        root_val = frozenset({END})
    val: List[Optional[FrozenSet[str]]] = [None] * n
    work: List[int] = []
    for r in roots:
        val[r] = root_val
        work.append(r)
    out: List[Optional[FrozenSet[str]]] = [None] * n
    while work:
        nid = work.pop()
        node = cfg.nodes[nid]
        cur = val[nid] or frozenset()
        op = node.op
        if op is not None and op.kind == "barrier":
            cur = frozenset({_barrier_label(op)})
        if out[nid] is not None and out[nid] == cur:
            continue
        out[nid] = cur
        for s in edges[nid]:
            new = cur if val[s] is None else (val[s] | cur)
            if val[s] is None or new != val[s]:
                val[s] = new
                work.append(s)
    return {i: (v if v is not None else frozenset()) for i, v in enumerate(val)}


def compute_contexts(cfg: Cfg) -> Dict[Tuple[str, int], SiteContext]:
    """Site contexts for every access and sync op, keyed by every
    source line the op's statement spans (so footprint records that
    land mid-statement still join)."""
    locks = _must_locksets(cfg)
    prev_bar = _reaching_barriers(cfg, forward=True)
    next_bar = _reaching_barriers(cfg, forward=False)
    sites: Dict[Tuple[str, int], SiteContext] = {}
    for node in cfg.nodes:
        op = node.op
        if op is None or op.kind in ("compute", "unknown"):
            continue
        region = (
            f"between [{' | '.join(sorted(prev_bar[node.id])) or START}] "
            f"and [{' | '.join(sorted(next_bar[node.id])) or END}]"
        )
        for line in range(op.line, op.end_line + 1):
            key = (op.file, line)
            ctx = sites.get(key)
            if ctx is None:
                sites[key] = SiteContext(
                    file=op.file,
                    line=op.line,
                    end_line=op.end_line,
                    kind=op.kind,
                    addr_src=op.addr_src,
                    size_src=op.size_src,
                    locks=locks[node.id],
                    regions={region},
                    disjoint=set(op.disjoint),
                    chains={op.chain},
                )
            else:
                ctx.locks = ctx.locks & locks[node.id]
                ctx.regions.add(region)
                ctx.disjoint |= set(op.disjoint)
                ctx.chains.add(op.chain)
    return sites
