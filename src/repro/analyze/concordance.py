"""Static vs dynamic checker concordance.

The static analyzer and the PR 2 dynamic checkers look for the same
bug class from opposite directions: the analyzer proves labeling over
*all* schedules of a small-scope run, the race detector observes *one*
simulated schedule of the real protocol.  Concordance mode runs both
over the same cells and cross-tabulates:

* **static_miss** -- the dynamic detector saw a true race at sites the
  analyzer did not flag.  This is the discord that matters: it would
  mean the static criterion is unsound for that program.
* **static_extra** -- the analyzer flagged sites but the dynamic run
  was clean.  Expected occasionally (the analyzer is conservative and
  the dynamic run sees only one schedule); reported, not fatal.
* **concordant** -- both clean, or both implicate the same sites.

The acceptance bar for this repo's corpus: every dynamically
true-race-free cell is also statically clean.

False sharing gets an informational cross-tab of its own: predicted
bytes at the cell's coherence granularity vs the block-granularity
detector's observed false-sharing pair count.

Each cell runs the dynamic checkers twice: once at **word**
detection units for the race verdict (the repo's authoritative gate
-- block units merge a node's exempt and non-exempt ranges that land
in one straddling block into a single conservatively-reportable
epoch, manufacturing "races" ``assume_disjoint`` was written to
exempt), and once at **block** units, which is the only place false
sharing is observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.analyze.api import AppAnalysis, analyze_app

#: finding codes that implicate a concrete unordered access pair
_PAIR_CODES = ("ANA101", "ANA103")


def _static_sites(analysis: AppAnalysis) -> Set[str]:
    """``basename:line`` of every statically implicated access site."""
    out: Set[str] = set()
    for f in analysis.findings:
        if f.code not in _PAIR_CODES:
            continue
        for s in f.extra.get("sites", ()):
            out.add(f"{s['file'].rsplit('/', 1)[-1]}:{s['line']}")
    return out


def _race_sites(races) -> Set[str]:
    """``basename:line`` of every dynamically raced access site."""
    out: Set[str] = set()
    for r in races:
        for side in (r.earlier, r.later):
            # location looks like "ocean.py:123 in program"
            out.add(side.location.split(" in ")[0])
    return out


@dataclass
class CellConcordance:
    """One app x protocol x granularity cross-tab row."""

    app: str
    protocol: str
    granularity: int
    static_findings: int
    static_sites: Set[str]
    dynamic_races: int
    dynamic_race_sites: Set[str]
    dynamic_false_sharing: int
    predicted_fs_bytes: int
    verdict: str = "concordant"  # concordant | static_miss | static_extra
    missed_sites: Set[str] = field(default_factory=set)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "protocol": self.protocol,
            "granularity": self.granularity,
            "static": {
                "findings": self.static_findings,
                "sites": sorted(self.static_sites),
                "predicted_fs_bytes": self.predicted_fs_bytes,
            },
            "dynamic": {
                "races": self.dynamic_races,
                "race_sites": sorted(self.dynamic_race_sites),
                "false_sharing_pairs": self.dynamic_false_sharing,
            },
            "verdict": self.verdict,
            "missed_sites": sorted(self.missed_sites),
        }


@dataclass
class ConcordanceResult:
    cells: List[CellConcordance]

    @property
    def ok(self) -> bool:
        """No cell where the dynamic detector out-found the analyzer."""
        return all(c.verdict != "static_miss" for c in self.cells)

    def to_dict(self) -> dict:
        verdicts = {}
        for c in self.cells:
            verdicts[c.verdict] = verdicts.get(c.verdict, 0) + 1
        return {
            "ok": self.ok,
            "cells": [c.to_dict() for c in self.cells],
            "verdicts": verdicts,
        }

    def describe(self) -> str:
        lines = ["concordance (static analyzer vs dynamic checkers):"]
        for c in self.cells:
            fs = ""
            if c.predicted_fs_bytes or c.dynamic_false_sharing:
                fs = (f"  fs: predicted {c.predicted_fs_bytes} B / "
                      f"observed {c.dynamic_false_sharing} pair(s)")
            lines.append(
                f"  {c.verdict:12s} {c.app:20s} {c.protocol}-"
                f"{c.granularity:<5d} static={c.static_findings} "
                f"dynamic-races={c.dynamic_races}{fs}"
            )
            for s in sorted(c.missed_sites):
                lines.append(f"      dynamic race at {s} not statically "
                             "flagged")
        n_miss = sum(1 for c in self.cells if c.verdict == "static_miss")
        if n_miss:
            lines.append(f"{n_miss} cell(s) with static misses")
        else:
            lines.append(
                "every dynamically race-free cell is statically clean; "
                "no dynamic race escaped the analyzer")
        return "\n".join(lines)


def _judge(cell: CellConcordance) -> None:
    if cell.dynamic_races > 0:
        uncovered = cell.dynamic_race_sites - cell.static_sites
        if cell.static_findings == 0 or uncovered == cell.dynamic_race_sites:
            cell.verdict = "static_miss"
            cell.missed_sites = uncovered or set(cell.dynamic_race_sites)
        else:
            cell.verdict = "concordant"
            cell.missed_sites = uncovered
    elif cell.static_findings > 0:
        cell.verdict = "static_extra"
    else:
        cell.verdict = "concordant"


def run_concordance(
    apps: Optional[Sequence[str]] = None,
    *,
    protocols: Sequence[str] = ("hlrc",),
    granularities: Sequence[int] = (1024,),
    nprocs: int = 4,
    scale: str = "tiny",
    progress=None,
) -> ConcordanceResult:
    """Analyze statically and run the dynamic checkers per cell."""
    from repro.apps import APP_NAMES
    from repro.harness.experiment import RunConfig, run_experiment

    names = list(apps or APP_NAMES)
    static: dict = {}
    for name in names:
        if progress:
            progress(f"analyzing {name}")
        static[name] = analyze_app(name, nprocs=nprocs, scale=scale)

    cells: List[CellConcordance] = []
    for name in names:
        analysis = static[name]
        sites = _static_sites(analysis)
        for proto in protocols:
            for g in granularities:
                if progress:
                    progress(f"running {name}/{proto}-{g}")
                cfg = RunConfig(app=name, protocol=proto, granularity=g,
                                nprocs=nprocs, scale=scale)
                word_rep = run_experiment(
                    cfg, check=True, check_granularity="word").check
                block_rep = run_experiment(
                    cfg, check=True, check_granularity="block").check
                true_races = [r for r in word_rep.races if r.true_race]
                fs_bytes = int(
                    analysis.false_sharing.get(g, {}).get("bytes", 0))
                cell = CellConcordance(
                    app=name,
                    protocol=proto,
                    granularity=g,
                    static_findings=len(analysis.findings),
                    static_sites=sites,
                    dynamic_races=len(true_races),
                    dynamic_race_sites=_race_sites(true_races),
                    dynamic_false_sharing=block_rep.false_sharing_total,
                    predicted_fs_bytes=fs_bytes,
                )
                _judge(cell)
                cells.append(cell)
    return ConcordanceResult(cells=cells)
