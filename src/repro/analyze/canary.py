"""The planted mislabeled app the CI gate must fail on.

A gate that only ever passes is indistinguishable from a gate that
checks nothing, so CI also analyzes this deliberately broken stencil
and asserts the analyzer exits non-zero naming **both** access sites.

The bug is the classic forgotten phase barrier: each iteration every
rank reads its left neighbor's boundary row and then overwrites its
own rows, but the inner ``barrier(1)`` that separates the phases was
"forgotten", so a rank's halo read and its neighbor's row writes sit
in the same barrier epoch with no common lock -- an unordered
conflicting pair (ANA101) on real overlapping bytes.

The app is intentionally *not* registered in the corpus registry:
``repro-dsm analyze --canary`` (and the test suite) reach it through
:func:`canary_analysis`.
"""

from __future__ import annotations

from repro.analyze.api import AppAnalysis, analyze_app
from repro.apps.base import Application

ROW = 64  # bytes per grid row


class MislabeledStencil(Application):
    """Row-partitioned Jacobi-style sweep with a missing phase barrier."""

    name = "canary-stencil"
    tiny_params = {"rows": 32, "iters": 2}
    default_params = {"rows": 32, "iters": 2}
    full_params = {"rows": 32, "iters": 2}

    def _configure(self, rows: int = 32, iters: int = 2) -> None:
        self.rows = rows
        self.iters = iters

    def sequential_time_us(self) -> float:
        return float(self.rows * self.iters)

    def setup(self, machine) -> None:
        self.grid = machine.alloc(self.rows * ROW, "grid")

    def program(self, dsm, rank, nprocs):
        lo, hi = self.split(self.rows, nprocs, rank)
        yield from dsm.barrier(0)
        for it in range(self.iters):
            if rank > 0:
                # halo: the left neighbor's last row
                yield from dsm.touch_read(self.grid.addr((lo - 1) * ROW), ROW)
            for row in range(lo, hi):
                yield from dsm.touch_write(
                    self.grid.addr(row * ROW), ROW,
                    pattern=self.pattern(it, row))
            # BUG: the phase barrier belongs here:
            #   yield from dsm.barrier(1)
        yield from dsm.barrier(2)


def canary_analysis(nprocs: int = 4) -> AppAnalysis:
    """Analyze the planted canary; a healthy analyzer reports ANA101."""
    return analyze_app(MislabeledStencil, nprocs=nprocs, scale="tiny")
