"""Rendering and event emission for analysis results.

Text reports go to stdout (the CLI), JSON to ``--json`` files, and
JSONL events to the same :class:`repro.exec.events.EventLog` sink the
execution engine uses -- one ``analyze_app`` line per application, one
``analyze_finding`` line per kept finding, and a closing
``analyze_finished`` summary, so analysis runs are grep-able alongside
sweep logs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analyze.api import AppAnalysis, CorpusAnalysis


def app_text(a: AppAnalysis) -> str:
    """A few lines summarizing one app's analysis."""
    lines: List[str] = []
    segs = "+".join(str(m.n_segments) for m in a.modes)
    modes = "+".join("lrc" if m.lrc_mode else "sc" for m in a.modes)
    status = "ok  " if a.ok else "FAIL"
    lines.append(
        f"{status} {a.name:20s} modes={modes:6s} segments={segs:8s} "
        f"lock-protected={a.lock_protected_pairs} "
        f"exempted={a.exempted_pairs}"
    )
    for f in a.findings:
        lines.extend(f"     {ln}" for ln in str(f).splitlines())
    for f in a.suppressed:
        lines.append(f"     suppressed: {f.path}:{f.line}: {f.code} "
                     f"{f.message}")
    return "\n".join(lines)


def fs_table(c: CorpusAnalysis, top: int = 10) -> str:
    """The predicted false-sharing ranking (app x granularity cells)."""
    lines = ["predicted false sharing (app x granularity, worst first):"]
    shown = 0
    for cell in c.ranking:
        if cell["bytes"] <= 0:
            continue
        lines.append(
            f"  {cell['app']:20s} g={cell['granularity']:5d}  "
            f"{cell['bytes']:8d} B in {cell['blocks']:4d} block(s), "
            f"{cell['pairs']} pair(s)"
        )
        shown += 1
        if shown >= top:
            break
    if shown == 0:
        lines.append("  none predicted at any granularity")
    return "\n".join(lines)


def corpus_text(c: CorpusAnalysis, fs_top: int = 10) -> str:
    lines = [app_text(a) for a in c.apps]
    lines.append("")
    lines.append(fs_table(c, top=fs_top))
    n_findings = len(c.findings)
    n_suppressed = sum(len(a.suppressed) for a in c.apps)
    lines.append("")
    if c.ok:
        tail = f"analyze: {len(c.apps)} app(s) properly labeled"
        if n_suppressed:
            tail += f" ({n_suppressed} suppressed finding(s))"
        lines.append(tail)
    else:
        bad = [a.name for a in c.apps if not a.ok]
        lines.append(
            f"analyze: {n_findings} finding(s) in {len(bad)} app(s): "
            + ", ".join(bad)
        )
    return "\n".join(lines)


def emit_events(c: CorpusAnalysis, events) -> None:
    """Append analyze_* events for this analysis to an EventLog."""
    for a in c.apps:
        events.emit(
            "analyze_app",
            app=a.name,
            nprocs=a.nprocs,
            scale=a.scale,
            modes=[m.lrc_mode for m in a.modes],
            ok=a.ok,
            findings=len(a.findings),
            suppressed=len(a.suppressed),
            lock_protected_pairs=a.lock_protected_pairs,
            exempted_pairs=a.exempted_pairs,
        )
        for f in a.findings:
            events.emit("analyze_finding", app=a.name, **f.to_dict())
    events.emit(
        "analyze_finished",
        apps=len(c.apps),
        ok=c.ok,
        findings=len(c.findings),
    )


def write_json(path: str, c: CorpusAnalysis) -> None:
    import json

    with open(path, "w") as fh:
        json.dump(c.to_dict(), fh, sort_keys=True, indent=1)
        fh.write("\n")


def render(c: CorpusAnalysis, *, json_path: Optional[str] = None,
           events=None, fs_top: int = 10) -> str:
    """Render everywhere at once; returns the text report."""
    if json_path:
        write_json(json_path, c)
    if events is not None:
        emit_events(c, events)
    return corpus_text(c, fs_top=fs_top)
