"""The labeling checker: static data-race-freedom verification.

A program is *properly labeled* (Gharachorloo) when every conflicting
access pair -- two ranks touching overlapping bytes, at least one
writing -- is ordered by synchronization.  LRC protocols only promise
SC results for properly labeled programs, so an unlabeled conflict
makes every relaxed-consistency number for that app invalid.

The static criterion, applied to the concrete footprints from
:mod:`repro.analyze.footprint`, is deliberately schedule-independent:
a cross-rank conflicting pair is OK iff

* the two segments are **barrier-ordered** (barrier-only vector
  clocks), or
* their concrete **locksets intersect** (a common lock serializes and
  orders the pair under release consistency regardless of grant
  order), or
* either side is under a justified ``assume_disjoint`` scope.

Lock *acquisition-order* happens-before edges (lock A released by
rank 0, later acquired by rank 1, ordering unrelated accesses) are
deliberately **not** used: they exist on one schedule and not
another, which is exactly the hole a dynamic happens-before detector
(PR 2) cannot see past.  This is where the static checker is
stronger than the dynamic one, and the difference is what concordance
mode measures.

Rule catalog (see docs/ANALYSIS_STATIC.md):

* **ANA101** -- conflicting access pair with no ordering and no lock
  on at least one side: a data race / labeling violation.
* **ANA102** -- barrier phase skew: a rank parks forever at a barrier
  (exploration) or a barrier is guarded by a rank-dependent branch
  (CFG).
* **ANA103** -- both sides hold locks but no *common* lock: a lock
  protects the wrong block range.
* **ANA104** -- ``assume_disjoint`` that exempts no conflicting pair:
  provably unnecessary.
* **ANA105** -- ``assume_disjoint`` covering accesses that never
  conflict with anyone: overbroad scope.
* **ANA106** -- lock discipline: release without hold, lock held at
  program end, rank parked forever on a lock.
* **ANA107** -- analysis incomplete: unresolvable ``yield from``,
  app exception, step-budget overrun.  Never a verdict, always a
  confession.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analyze.core import Finding
from repro.analyze.dataflow import SiteContext
from repro.analyze.falseshare import FalseSharingAccum
from repro.analyze.footprint import Exploration, ordered

Site = Tuple[str, int, str]  # (file, line, function)


@dataclass
class Conflict:
    """One deduplicated unordered conflicting site pair."""

    code: str  # ANA101 | ANA103
    site_a: Site
    site_b: Site
    write_a: bool
    write_b: bool
    ranks: Tuple[int, int]
    sample: Tuple[int, int]  # example overlapping byte interval
    total_bytes: int
    locks_a: frozenset
    locks_b: frozenset
    occurrences: int = 1


@dataclass
class SweepResult:
    """Everything one pairwise sweep over an exploration produces."""

    conflicts: Dict[Tuple, Conflict] = field(default_factory=dict)
    lock_protected_pairs: int = 0
    exempted_pairs: int = 0
    #: disjoint site id -> exempted pair count
    exempt_by_site: Dict[int, int] = field(default_factory=dict)
    #: access sites that participated in >=1 exempted pair
    exempt_participants: Set[Site] = field(default_factory=set)
    #: disjoint site id -> access sites recorded under that scope
    scope_sites: Dict[int, Set[Site]] = field(default_factory=dict)


def sweep(expl: Exploration,
          fs: Optional[FalseSharingAccum] = None) -> SweepResult:
    """Pairwise sweep over all unordered cross-rank segment pairs.

    Feeds both the conflict detector and (optionally) the
    false-sharing accumulator so the footprints are only walked once.
    """
    res = SweepResult()
    by_rank = expl.segments_by_rank()
    # scope coverage for the overbroad audit (independent of pairing)
    for seg in expl.segments:
        if seg.disjoint:
            did = seg.disjoint[-1]
            bucket = res.scope_sites.setdefault(did, set())
            for (sid, _w) in seg.accesses:
                bucket.add(expl.sites[sid])
    gmax = max(fs.granularities) if fs is not None else None
    for r1 in range(expl.nprocs):
        for r2 in range(r1 + 1, expl.nprocs):
            for s1 in by_rank[r1]:
                if not s1.accesses:
                    continue
                for s2 in by_rank[r2]:
                    if not s2.accesses or ordered(s1, s2):
                        continue
                    _sweep_pair(expl, res, fs, gmax, s1, s2)
    return res


def _sweep_pair(expl, res, fs, gmax, s1, s2) -> None:
    common_lock = bool(s1.lockset & s2.lockset)
    exempt = bool(s1.disjoint or s2.disjoint)
    for (sid_a, w_a), iv_a in s1.accesses.items():
        for (sid_b, w_b), iv_b in s2.accesses.items():
            if not (w_a or w_b):
                continue
            # bbox reject: no byte overlap and no shared block at any
            # granularity of interest
            max_lo = max(iv_a.lo, iv_b.lo)
            min_hi = min(iv_a.hi, iv_b.hi)
            if max_lo >= min_hi:
                if gmax is None or (min_hi - 1) // gmax != max_lo // gmax:
                    continue
            inter = iv_a.intersect(iv_b)
            site_a, site_b = expl.sites[sid_a], expl.sites[sid_b]
            if inter:
                n_bytes = sum(hi - lo for lo, hi in inter)
                if common_lock:
                    res.lock_protected_pairs += 1
                elif exempt:
                    res.exempted_pairs += 1
                    for seg, site in ((s1, site_a), (s2, site_b)):
                        if seg.disjoint:
                            did = seg.disjoint[-1]
                            res.exempt_by_site[did] = (
                                res.exempt_by_site.get(did, 0) + 1)
                            res.exempt_participants.add(site)
                else:
                    _record_conflict(res, s1, s2, site_a, site_b, w_a, w_b,
                                     inter[0], n_bytes)
            if fs is not None and not common_lock and not exempt:
                fs.add_pair(site_a, iv_a, site_b, iv_b, inter)


def _record_conflict(res, s1, s2, site_a, site_b, w_a, w_b, sample,
                     n_bytes) -> None:
    code = "ANA103" if (s1.lockset and s2.lockset) else "ANA101"
    # canonical orientation so (a, b) and (b, a) dedup together
    if (site_b, w_b) < (site_a, w_a):
        site_a, site_b = site_b, site_a
        w_a, w_b = w_b, w_a
        s1, s2 = s2, s1
    key = (code, site_a, w_a, site_b, w_b)
    hit = res.conflicts.get(key)
    if hit is None:
        res.conflicts[key] = Conflict(
            code=code, site_a=site_a, site_b=site_b, write_a=w_a,
            write_b=w_b, ranks=(s1.rank, s2.rank), sample=sample,
            total_bytes=n_bytes, locks_a=s1.lockset, locks_b=s2.lockset)
    else:
        hit.total_bytes += n_bytes
        hit.occurrences += 1


# -- findings ----------------------------------------------------------


def _rel(path: str) -> str:
    try:
        return os.path.relpath(path)
    except ValueError:
        return path


def _side_line(kind: str, site: Site, locks: frozenset,
               ctx: Optional[SiteContext]) -> str:
    file, line, func = site
    txt = f"{kind:5s} {_rel(file)}:{line} in {func}"
    if ctx is not None:
        txt += f" | addr `{ctx.addr_src}` size `{ctx.size_src}`"
        txt += f" | region {ctx.region_text()}"
    txt += f" | locks held {sorted(locks) if locks else 'none'}"
    return txt


def conflict_findings(
    sweep_res: SweepResult,
    contexts: Dict[Tuple[str, int], SiteContext],
) -> List[Finding]:
    out: List[Finding] = []
    for c in sweep_res.conflicts.values():
        ctx_a = contexts.get((c.site_a[0], c.site_a[1]))
        ctx_b = contexts.get((c.site_b[0], c.site_b[1]))
        kind_a = "write" if c.write_a else "read"
        kind_b = "write" if c.write_b else "read"
        if c.code == "ANA103":
            headline = (
                "conflicting accesses protected by DIFFERENT locks "
                f"({sorted(c.locks_a)} vs {sorted(c.locks_b)}): the lock "
                "does not cover this range")
        else:
            headline = (
                f"unordered conflicting accesses ({kind_a} vs {kind_b}): "
                "no barrier, no common lock, no assume_disjoint")
        detail = [
            _side_line(kind_a, c.site_a, c.locks_a, ctx_a),
            _side_line(kind_b, c.site_b, c.locks_b, ctx_b),
            (f"overlap e.g. bytes [0x{c.sample[0]:x}, 0x{c.sample[1]:x}) "
             f"between ranks {c.ranks[0]} and {c.ranks[1]}; "
             f"{c.total_bytes} byte(s) over {c.occurrences} segment pair(s)"),
        ]
        out.append(Finding(
            c.site_a[0], c.site_a[1], c.code, headline, detail=detail,
            extra={
                "sites": [
                    {"file": _rel(c.site_a[0]), "line": c.site_a[1],
                     "function": c.site_a[2], "kind": kind_a},
                    {"file": _rel(c.site_b[0]), "line": c.site_b[1],
                     "function": c.site_b[2], "kind": kind_b},
                ],
                "ranks": list(c.ranks),
                "bytes": c.total_bytes,
            }))
    return out


def structural_findings(expl: Exploration) -> List[Finding]:
    """ANA102/ANA106/ANA107 from exploration outcomes."""
    out: List[Finding] = []
    for stall in expl.stalls:
        file, line, func = stall.site
        if stall.kind == "barrier":
            out.append(Finding(
                file, line, "ANA102",
                f"barrier phase skew: rank {stall.rank} {stall.detail}",
                detail=[f"parked at {_rel(file)}:{line} in {func}"],
                extra={"rank": stall.rank}))
        else:
            out.append(Finding(
                file, line, "ANA106",
                f"lock never released: rank {stall.rank} {stall.detail}",
                detail=[f"parked at {_rel(file)}:{line} in {func}"],
                extra={"rank": stall.rank}))
    for err in expl.lock_errors:
        file, line, func = err.site
        out.append(Finding(
            file, line, "ANA106", err.message,
            extra={"rank": err.rank, "lock": err.lock}))
    for rank, msg in expl.crashes:
        out.append(Finding(
            "<exploration>", 0, "ANA107",
            f"rank {rank} crashed during footprint exploration: {msg}"))
    return out


def audit_findings(
    merged_exempts: Dict[Tuple[str, int], Tuple[str, int]],
    merged_scope_sites: Dict[Tuple[str, int], Set[Site]],
    merged_participants: Set[Site],
    ast_sites: List[Tuple[str, int, str, bool]],
) -> List[Finding]:
    """ANA104/ANA105 across all analyzed modes.

    ``merged_exempts``: (file, line) of each *entered* annotation ->
    (reason, total exempted pairs).  ``merged_scope_sites``: access
    sites recorded under each annotation.  ``merged_participants``:
    access sites that needed an exemption at least once.
    ``ast_sites``: annotations found in source (covers scopes that
    never executed in any mode).
    """
    out: List[Finding] = []
    seen: Set[Tuple[str, int]] = set()
    for (file, line), (reason, n_exempt) in sorted(merged_exempts.items()):
        seen.add((file, line))
        if n_exempt == 0:
            out.append(Finding(
                file, line, "ANA104",
                f'assume_disjoint("{reason}") exempts no conflicting pair: '
                "every access under it is already sync-ordered or "
                "non-overlapping -- the annotation is unnecessary",
                extra={"reason": reason}))
            continue
        idle = sorted(
            s for s in merged_scope_sites.get((file, line), set())
            if s not in merged_participants)
        if idle:
            out.append(Finding(
                file, line, "ANA105",
                f'assume_disjoint("{reason}") is overbroad: '
                f"{len(idle)} access site(s) under its scope never "
                "conflict with any other rank",
                detail=[f"{_rel(f)}:{ln} in {fn}" for f, ln, fn in idle],
                extra={"reason": reason}))
    for file, line, reason, conditional in ast_sites:
        if (file, line) in seen:
            continue
        # never entered in any analyzed mode: not an error by itself
        # (a mode-gated scope is legitimate), but if it *can't* be
        # entered it exempts nothing -> fold into ANA104 only when
        # unconditional
        if not conditional:
            out.append(Finding(
                file, line, "ANA104",
                f'assume_disjoint("{reason}") was never entered in any '
                "analyzed mode and exempts no conflicting pair",
                extra={"reason": reason}))
    return out
