"""AST -> CFG front end for generator-based DSM app programs.

App programs are Python generators written against the
``runtime/dsm.py`` API: every shared-memory access and synchronization
operation is a ``yield from dsm.<op>(...)``.  This module parses an
:class:`~repro.apps.base.Application` subclass and builds a control
flow graph of its ``program`` method with DSM operations as leaf
nodes, **inlining** interprocedural structure the apps actually use:

* ``yield from self.helper(...)`` -- generator methods, resolved
  through the class MRO;
* ``yield from f(...)`` -- locally defined generator functions and
  generator-valued parameters (the higher-order ``do_task`` /
  ``tasks_of`` style of volrend and raytrace);
* ``return self.helper(...)`` inside an inlined function -- plain
  return of a generator object, which ``yield from`` then drains.

The CFG deliberately models the *same* bug class SIM007 lints for: a
generator called without ``yield from`` contributes no operations, so
a dropped call simply never reaches :meth:`_yield_from`.

The builder is tolerant: constructs it cannot resolve become
``unknown`` op nodes, surfaced later as ANA107 (analysis incomplete)
findings rather than crashes.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analyze.core import Finding

#: dsm methods that touch shared memory -> access kind
DSM_ACCESS = {"read": "r", "touch_read": "r", "write": "w", "touch_write": "w"}
#: dsm methods that synchronize
DSM_SYNC = ("acquire", "release", "barrier")
#: dsm methods with no analysis-relevant effect
DSM_NEUTRAL = ("compute",)

#: inlining limits -- generous for the app corpus, a backstop for
#: pathological inputs
MAX_INLINE_DEPTH = 12


@dataclass
class OpNode:
    """A leaf DSM operation in the CFG."""

    kind: str  # 'r' | 'w' | 'acquire' | 'release' | 'barrier' | 'compute' | 'unknown'
    file: str
    line: int
    end_line: int
    func_src: str  # e.g. 'dsm.touch_write'
    args_src: Tuple[str, ...]
    disjoint: Tuple[str, ...] = ()  # active assume_disjoint reasons ('?'-prefix = conditional)
    rank_dep: bool = False  # under a rank-dependent branch
    chain: Tuple[str, ...] = ()  # inline call chain ('program', '_render_task', ...)

    @property
    def addr_src(self) -> str:
        return self.args_src[0] if self.args_src else "?"

    @property
    def size_src(self) -> str:
        if self.kind in ("r", "w") and len(self.args_src) > 1:
            if self.func_src.endswith(".write"):
                return f"len({self.args_src[1]})"
            return self.args_src[1]
        return "?"


class Node:
    """One CFG node; ``op`` is None for junctions (entry/joins/loops)."""

    __slots__ = ("id", "op", "succs", "preds")

    def __init__(self, nid: int, op: Optional[OpNode] = None):
        self.id = nid
        self.op = op
        self.succs: List[int] = []
        self.preds: List[int] = []


@dataclass
class Cfg:
    """CFG of one app's ``program`` with DSM ops as leaves."""

    app: str
    nodes: List[Node] = field(default_factory=list)
    entry: int = 0
    #: (file, line, reason, conditional) of every assume_disjoint scope
    disjoint_sites: List[Tuple[str, int, str, bool]] = field(default_factory=list)
    #: structural findings discovered during the build (ANA102/ANA107)
    findings: List[Finding] = field(default_factory=list)

    def ops(self) -> List[OpNode]:
        return [n.op for n in self.nodes if n.op is not None]

    def finish(self) -> "Cfg":
        for n in self.nodes:
            for s in n.succs:
                self.nodes[s].preds.append(n.id)
        return self


class _Ctx:
    """Per-inline-frame naming environment."""

    __slots__ = ("file", "dsm_names", "rank_names", "self_names", "env",
                 "local_defs", "chain", "fn", "_returns")

    def __init__(self, file, dsm_names, rank_names, self_names, env,
                 local_defs, chain, fn):
        self._returns: Optional[List[int]] = None
        self.file = file
        self.dsm_names: Set[str] = dsm_names
        self.rank_names: Set[str] = rank_names
        self.self_names: Set[str] = self_names
        #: function-valued bindings: name -> ('method', mname) | ('def', node, ctx)
        self.env: Dict[str, tuple] = env
        self.local_defs: Dict[str, ast.FunctionDef] = local_defs
        self.chain: Tuple[str, ...] = chain
        self.fn: ast.FunctionDef = fn


class _LoopFrame:
    __slots__ = ("head", "breaks")

    def __init__(self, head: int):
        self.head = head
        self.breaks: List[int] = []


_WORD = re.compile(r"\b({})\b")


def _mentions(src: str, names: Set[str]) -> bool:
    if not names:
        return False
    pat = _WORD.pattern.format("|".join(re.escape(n) for n in sorted(names)))
    return re.search(pat, src) is not None


def _src(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:
        return "<?>"


class CfgBuilder:
    """Builds the program CFG for one Application subclass."""

    def __init__(self, app_cls: type):
        self.app_cls = app_cls
        self._source_cache: Dict[str, Tuple[str, ast.Module]] = {}
        #: method name -> (FunctionDef, defining file), first MRO match wins
        self.methods: Dict[str, Tuple[ast.FunctionDef, str]] = {}
        for cls in app_cls.__mro__:
            mod = sys.modules.get(cls.__module__)
            file = getattr(mod, "__file__", None)
            if file is None:
                continue
            tree = self._module_tree(file)
            if tree is None:
                continue
            for st in ast.walk(tree):
                if isinstance(st, ast.ClassDef) and st.name == cls.__name__:
                    for item in st.body:
                        if isinstance(item, ast.FunctionDef):
                            self.methods.setdefault(item.name, (item, file))
                    break

    def _module_tree(self, file: str) -> Optional[ast.Module]:
        if file not in self._source_cache:
            try:
                source = open(file).read()
                self._source_cache[file] = (source, ast.parse(source, filename=file))
            except (OSError, SyntaxError):
                self._source_cache[file] = ("", None)  # type: ignore[assignment]
        return self._source_cache[file][1]

    # -- graph plumbing ------------------------------------------------

    def build(self) -> Cfg:
        self.cfg = Cfg(app=getattr(self.app_cls, "name", self.app_cls.__name__))
        self.cfg.nodes.append(Node(0))  # entry junction
        if "program" not in self.methods:
            self.cfg.findings.append(
                Finding("<none>", 0, "ANA107",
                        f"{self.app_cls.__name__} has no program method source"))
            return self.cfg.finish()
        fn, file = self.methods["program"]
        params = [a.arg for a in fn.args.args]
        # program(self, dsm, rank, nprocs)
        ctx = _Ctx(
            file=file,
            dsm_names={params[1]} if len(params) > 1 else {"dsm"},
            rank_names={params[2]} if len(params) > 2 else {"rank"},
            self_names={params[0]} if params else {"self"},
            env={},
            local_defs={},
            chain=("program",),
            fn=fn,
        )
        exits = self._emit_stmts(fn.body, ctx, [0], [], (), 0, set())
        del exits  # program end; nothing to connect
        return self.cfg.finish()

    def _new_node(self, frontier: List[int], op: Optional[OpNode] = None) -> int:
        nid = len(self.cfg.nodes)
        node = Node(nid, op)
        self.cfg.nodes.append(node)
        for f in frontier:
            self.cfg.nodes[f].succs.append(nid)
        return nid

    # -- statement emission --------------------------------------------

    def _emit_stmts(
        self,
        stmts: List[ast.stmt],
        ctx: _Ctx,
        frontier: List[int],
        loops: List[_LoopFrame],
        disjoint: Tuple[str, ...],
        rank_cond: int,
        inline_stack: Set[str],
    ) -> List[int]:
        for st in stmts:
            if not frontier:
                break  # unreachable after break/continue/raise
            if isinstance(st, ast.FunctionDef):
                ctx.local_defs[st.name] = st
            elif isinstance(st, ast.Expr) and isinstance(st.value, ast.YieldFrom):
                frontier = self._emit_yield_from(
                    st.value, st, ctx, frontier, loops, disjoint, rank_cond,
                    inline_stack)
            elif (isinstance(st, (ast.Assign, ast.AnnAssign, ast.AugAssign))
                  and isinstance(getattr(st, "value", None), ast.YieldFrom)):
                frontier = self._emit_yield_from(
                    st.value, st, ctx, frontier, loops, disjoint, rank_cond,
                    inline_stack)
            elif isinstance(st, ast.If):
                test = _src(st.test)
                rc = rank_cond + (1 if _mentions(test, ctx.rank_names) else 0)
                body_f = self._emit_stmts(
                    st.body, ctx, list(frontier), loops, disjoint, rc,
                    inline_stack)
                else_f = self._emit_stmts(
                    st.orelse, ctx, list(frontier), loops, disjoint, rc,
                    inline_stack) if st.orelse else list(frontier)
                frontier = body_f + else_f
            elif isinstance(st, (ast.For, ast.While)):
                head = self._new_node(frontier)
                frame = _LoopFrame(head)
                loops.append(frame)
                body_f = self._emit_stmts(
                    st.body, ctx, [head], loops, disjoint, rank_cond,
                    inline_stack)
                loops.pop()
                for f in body_f:  # back edge
                    self.cfg.nodes[f].succs.append(head)
                frontier = [head] + frame.breaks
                if st.orelse:
                    frontier = self._emit_stmts(
                        st.orelse, ctx, frontier, loops, disjoint, rank_cond,
                        inline_stack)
            elif isinstance(st, ast.With):
                frontier = self._emit_with(
                    st, ctx, frontier, loops, disjoint, rank_cond, inline_stack)
            elif isinstance(st, ast.Break):
                if loops:
                    loops[-1].breaks.extend(frontier)
                frontier = []
            elif isinstance(st, ast.Continue):
                if loops:
                    for f in frontier:
                        self.cfg.nodes[f].succs.append(loops[-1].head)
                frontier = []
            elif isinstance(st, ast.Return):
                frontier = self._emit_return(
                    st, ctx, frontier, loops, disjoint, rank_cond, inline_stack)
                if ctx._returns is not None:
                    ctx._returns.extend(frontier)
                frontier = []
            elif isinstance(st, ast.Try):
                frontier = self._emit_stmts(
                    st.body, ctx, frontier, loops, disjoint, rank_cond,
                    inline_stack)
                for handler in st.handlers:
                    frontier += self._emit_stmts(
                        handler.body, ctx, list(frontier), loops, disjoint,
                        rank_cond, inline_stack)
                if st.finalbody:
                    frontier = self._emit_stmts(
                        st.finalbody, ctx, frontier, loops, disjoint,
                        rank_cond, inline_stack)
            elif isinstance(st, ast.Raise):
                frontier = []
            # plain statements (assignments, expressions, asserts...)
            # carry no DSM operations; fall through with same frontier
        return frontier

    # -- with / assume_disjoint ----------------------------------------

    def _disjoint_reason(self, call: ast.Call) -> str:
        if call.args and isinstance(call.args[0], ast.Constant):
            return str(call.args[0].value)
        return _src(call)

    def _find_conditional_disjoint(self, ctx: _Ctx, name: str) -> Optional[str]:
        """Reason string when ``name`` is assigned from an expression
        containing ``dsm.assume_disjoint(...)`` (the barnes
        ``ctx = nullcontext() if locked else dsm.assume_disjoint(...)``
        pattern)."""
        for st in ast.walk(ctx.fn):
            if isinstance(st, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name for t in st.targets
            ):
                for sub in ast.walk(st.value):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "assume_disjoint"):
                        return self._disjoint_reason(sub)
        return None

    def _emit_with(self, st, ctx, frontier, loops, disjoint, rank_cond,
                   inline_stack) -> List[int]:
        new_disjoint = disjoint
        for item in st.items:
            expr = item.context_expr
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "assume_disjoint"
                    and isinstance(expr.func.value, ast.Name)
                    and expr.func.value.id in ctx.dsm_names):
                reason = self._disjoint_reason(expr)
                self.cfg.disjoint_sites.append((ctx.file, st.lineno, reason, False))
                new_disjoint = new_disjoint + (reason,)
            elif isinstance(expr, ast.Name):
                reason = self._find_conditional_disjoint(ctx, expr.id)
                if reason is not None:
                    self.cfg.disjoint_sites.append((ctx.file, st.lineno, reason, True))
                    new_disjoint = new_disjoint + ("?" + reason,)
        return self._emit_stmts(st.body, ctx, frontier, loops, new_disjoint,
                                rank_cond, inline_stack)

    # -- yield from ----------------------------------------------------

    def _op(self, kind, call_or_stmt, ctx, frontier, disjoint, rank_cond,
            func_src, args_src) -> List[int]:
        node = call_or_stmt
        op = OpNode(
            kind=kind,
            file=ctx.file,
            line=node.lineno,
            end_line=getattr(node, "end_lineno", node.lineno) or node.lineno,
            func_src=func_src,
            args_src=tuple(args_src),
            disjoint=disjoint,
            rank_dep=(kind == "barrier" and rank_cond > 0),
            chain=ctx.chain,
        )
        if op.rank_dep:
            self.cfg.findings.append(Finding(
                ctx.file, node.lineno, "ANA102",
                f"barrier {func_src}({', '.join(args_src)}) executed only "
                "under a rank-dependent condition; ranks will disagree on "
                "the barrier sequence (phase skew)",
            ))
        if kind == "unknown":
            self.cfg.findings.append(Finding(
                ctx.file, node.lineno, "ANA107",
                f"cannot resolve `yield from {func_src}(...)` to a DSM "
                "operation or an inlinable generator; its accesses are "
                "invisible to the analysis",
            ))
        return [self._new_node(frontier, op)]

    def _emit_yield_from(self, yf: ast.YieldFrom, stmt, ctx, frontier, loops,
                         disjoint, rank_cond, inline_stack) -> List[int]:
        call = yf.value
        if not isinstance(call, ast.Call):
            return self._op("unknown", stmt, ctx, frontier, disjoint,
                            rank_cond, _src(call), ())
        return self._emit_call(call, stmt, ctx, frontier, loops, disjoint,
                               rank_cond, inline_stack)

    def _emit_call(self, call: ast.Call, stmt, ctx, frontier, loops, disjoint,
                   rank_cond, inline_stack) -> List[int]:
        func = call.func
        args_src = [_src(a) for a in call.args]
        func_src = _src(func)
        # dsm.<op>(...)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ctx.dsm_names):
            attr = func.attr
            if attr in DSM_ACCESS:
                return self._op(DSM_ACCESS[attr], stmt, ctx, frontier,
                                disjoint, rank_cond, func_src, args_src)
            if attr in DSM_SYNC:
                return self._op(attr, stmt, ctx, frontier, disjoint,
                                rank_cond, func_src, args_src)
            if attr in DSM_NEUTRAL:
                return self._op("compute", stmt, ctx, frontier, disjoint,
                                rank_cond, func_src, args_src)
            return self._op("unknown", stmt, ctx, frontier, disjoint,
                            rank_cond, func_src, args_src)
        # self.helper(...) or f(...) for a local/param-bound generator.
        # A local def is a closure over its defining frame, so inline
        # it with that frame's naming environment (minus shadowed
        # params) -- this is how `dsm` and `self` resolve inside the
        # volrend/raytrace task functions.
        target: Optional[Tuple[ast.FunctionDef, str]] = None
        closure: Optional[_Ctx] = None
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ctx.self_names):
            target = self.methods.get(func.attr)
        elif isinstance(func, ast.Name):
            if func.id in ctx.local_defs:
                target = (ctx.local_defs[func.id], ctx.file)
                closure = ctx
            elif func.id in ctx.env:
                bound = ctx.env[func.id]
                if bound[0] == "method":
                    target = self.methods.get(bound[1])
                else:  # ('def', node, defining_ctx)
                    target = (bound[1], bound[2].file)
                    closure = bound[2]
        if target is None:
            return self._op("unknown", stmt, ctx, frontier, disjoint,
                            rank_cond, func_src, tuple(args_src))
        return self._inline(target[0], target[1], call, stmt, ctx, frontier,
                            loops, disjoint, rank_cond, inline_stack,
                            closure=closure)

    def _binding_for(self, arg: ast.AST, ctx: _Ctx) -> Optional[tuple]:
        """A function-valued binding for a call argument, if static."""
        if isinstance(arg, ast.Name):
            if arg.id in ctx.local_defs:
                return ("def", ctx.local_defs[arg.id], ctx)
            if arg.id in ctx.env:
                return ctx.env[arg.id]
        if (isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id in ctx.self_names
                and arg.attr in self.methods):
            return ("method", arg.attr)
        return None

    def _inline(self, fn: ast.FunctionDef, file: str, call: ast.Call, stmt,
                ctx: _Ctx, frontier, loops, disjoint, rank_cond,
                inline_stack, closure: Optional[_Ctx] = None) -> List[int]:
        key = f"{file}:{fn.lineno}:{fn.name}"
        if key in inline_stack or len(ctx.chain) >= MAX_INLINE_DEPTH:
            return self._op("unknown", stmt, ctx, frontier, disjoint,
                            rank_cond, _src(call.func) + " [recursive]", ())
        params = [a.arg for a in fn.args.args]
        is_method = bool(params) and params[0] == "self"
        formal = params[1:] if is_method else params
        if closure is not None:
            # a local def sees its defining frame's names (dsm, rank,
            # self, sibling defs) except where its own params shadow them
            shadow = set(params)
            dsm_names = closure.dsm_names - shadow
            rank_names = closure.rank_names - shadow
            self_names = (closure.self_names - shadow) | (
                {"self"} if is_method else set())
            env = {k: v for k, v in closure.env.items() if k not in shadow}
            local_defs = {k: v for k, v in closure.local_defs.items()
                          if k not in shadow}
        else:
            dsm_names = set()
            rank_names = set()
            self_names = {"self"} if is_method else set()
            env = {}
            local_defs = {}
        actuals: List[Tuple[str, ast.AST]] = list(zip(formal, call.args))
        actuals += [(kw.arg, kw.value) for kw in call.keywords if kw.arg]
        for name, arg in actuals:
            if isinstance(arg, ast.Name):
                if arg.id in ctx.dsm_names:
                    dsm_names.add(name)
                if arg.id in ctx.rank_names:
                    rank_names.add(name)
            binding = self._binding_for(arg, ctx)
            if binding is not None:
                env[name] = binding
        inner = _Ctx(
            file=file,
            dsm_names=dsm_names,
            rank_names=rank_names,
            self_names=self_names,
            env=env,
            local_defs=local_defs,
            chain=ctx.chain + (fn.name,),
            fn=fn,
        )
        inner._returns = []  # type: ignore[attr-defined]
        out = self._emit_stmts(fn.body, inner, frontier, loops, disjoint,
                               rank_cond, inline_stack | {key})
        return out + inner._returns  # type: ignore[attr-defined]

    def _emit_return(self, st: ast.Return, ctx, frontier, loops, disjoint,
                     rank_cond, inline_stack) -> List[int]:
        """``return self.helper(...)`` inside an inlined generator: the
        caller's ``yield from`` drains the returned generator, so
        inline it too.  A bare return just ends the frame."""
        if isinstance(st.value, ast.Call):
            return self._emit_call(st.value, st, ctx, frontier, loops,
                                   disjoint, rank_cond, inline_stack)
        return frontier
