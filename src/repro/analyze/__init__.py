"""Static analysis of DSM application programs (``repro.analyze``).

This package verifies, *before any simulation runs*, that the app
programs in ``repro.apps`` are properly labeled: every conflicting
shared access ordered by acquire/release/barrier synchronization or
covered by a justified ``assume_disjoint`` annotation.  Relaxed
consistency (SW-LRC / HLRC) only promises SC results for properly
labeled programs, so this is the validity precondition for every
number the simulator produces.

Not to be confused with ``repro.analysis``, which post-processes
*results* (tables, classification).  ``repro.analyze`` reads *source*.

Layers (see docs/ANALYSIS_STATIC.md):

* ``core``       -- AST helpers, Finding, noqa filtering (shared with
                    ``tools/lint_sim.py``)
* ``cfg``        -- AST -> CFG front end with interprocedural inlining
                    of ``yield from`` helper delegation
* ``dataflow``   -- lockset + barrier-region dataflow -> per-site
                    synchronization contexts
* ``footprint``  -- small-scope concretization: per-rank byte-interval
                    footprints from a recording DSM stub
* ``drf``        -- the labeling checker (ANA1xx) + assume_disjoint
                    audit
* ``falseshare`` -- static false-sharing prediction per granularity
* ``concordance``-- static warnings vs dynamic checker cross-tab
* ``api``        -- analyze_app / analyze_corpus entry points
"""

from repro.analyze.api import (  # noqa: F401
    AppAnalysis,
    CorpusAnalysis,
    analyze_app,
    analyze_corpus,
)
from repro.analyze.core import Finding  # noqa: F401
