"""Static false-sharing prediction.

The paper's central tradeoff is coherence granularity: big blocks
amortize protocol overhead but manufacture *false sharing* --
processors touching disjoint bytes of the same block.  Given the
per-rank byte-interval footprints from :mod:`repro.analyze.footprint`,
this module folds every unordered, unprotected cross-rank access pair
against each candidate granularity and counts the blocks the pair
shares **without sharing a byte** -- the blocks that would ping-pong
at that granularity even though the program is properly labeled.

The accumulator is fed by the same pairwise sweep as the labeling
checker (:func:`repro.analyze.drf.sweep`), and its gating matches the
PR 2 dynamic detector's classification so the two are comparable in
concordance mode: lock-ordered pairs and ``assume_disjoint``-exempt
accesses are excluded (the detector orders the former by
happens-before and diverts the latter to its ``exempted`` bucket
before classifying).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analyze.footprint import IntervalSet

#: the granularities the paper sweeps (64 B .. 8 KB)
FS_GRANULARITIES = (64, 256, 1024, 4096, 8192)


class FalseSharingAccum:
    """Accumulates predicted false-sharing blocks per granularity."""

    def __init__(self, granularities: Iterable[int] = FS_GRANULARITIES):
        self.granularities = tuple(sorted(granularities))
        self.blocks: Dict[int, set] = {g: set() for g in self.granularities}
        self.pairs: Dict[int, int] = {g: 0 for g in self.granularities}
        #: (siteA, siteB) -> blocks contributed at the largest granularity
        self.site_pairs: Dict[int, Dict[Tuple, int]] = {
            g: {} for g in self.granularities
        }

    def add_pair(
        self,
        site_a: Tuple[str, int, str],
        iv_a: IntervalSet,
        site_b: Tuple[str, int, str],
        iv_b: IntervalSet,
        byte_overlap: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        """One unordered, unprotected, non-exempt cross-rank pair with
        at least one writer.  ``byte_overlap`` is the pair's byte
        intersection (so truly-shared blocks are not misclassified as
        false sharing)."""
        overlap_blocks: Dict[int, frozenset] = {}
        if byte_overlap:
            inter = IntervalSet()
            for lo, hi in byte_overlap:
                inter.add(lo, hi)
            for g in self.granularities:
                overlap_blocks[g] = inter.blocks(g)
        for g in self.granularities:
            # quick reject: byte-disjoint bboxes in different blocks
            max_lo = max(iv_a.lo, iv_b.lo)
            min_hi = min(iv_a.hi, iv_b.hi)
            if max_lo >= min_hi and (min_hi - 1) // g != max_lo // g:
                continue
            shared = (iv_a.blocks(g) & iv_b.blocks(g)) - overlap_blocks.get(
                g, frozenset()
            )
            if not shared:
                continue
            self.blocks[g].update(shared)
            self.pairs[g] += 1
            key = tuple(sorted((site_a, site_b)))
            per = self.site_pairs[g]
            per[key] = per.get(key, 0) + len(shared)

    def summary(self, top: int = 3) -> Dict[int, dict]:
        out: Dict[int, dict] = {}
        for g in self.granularities:
            ranked = sorted(
                self.site_pairs[g].items(), key=lambda kv: -kv[1]
            )[:top]
            out[g] = {
                "blocks": len(self.blocks[g]),
                "bytes": len(self.blocks[g]) * g,
                "pairs": self.pairs[g],
                "top_site_pairs": [
                    {
                        "sites": [f"{a[0]}:{a[1]}" for a in key],
                        "blocks": n,
                    }
                    for key, n in ranked
                ],
            }
        return out


def merge_summaries(summaries: List[Dict[int, dict]]) -> Dict[int, dict]:
    """Merge per-mode summaries by taking the worst (max) per cell."""
    if not summaries:
        return {}
    out: Dict[int, dict] = {}
    for g in summaries[0]:
        best = max(summaries, key=lambda s: s.get(g, {}).get("bytes", 0))
        out[g] = best[g]
    return out


def rank_cells(per_app: Dict[str, Dict[int, dict]]) -> List[dict]:
    """Rank app x granularity cells by predicted false-sharing bytes."""
    cells = [
        {"app": app, "granularity": g, **stats}
        for app, by_g in per_app.items()
        for g, stats in by_g.items()
    ]
    cells.sort(key=lambda c: (-c["bytes"], c["app"], c["granularity"]))
    return cells
