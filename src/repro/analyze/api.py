"""Entry points: analyze one app or the whole corpus.

``analyze_app`` accepts a registry name, an Application subclass, or
an instance.  Names and classes get a **fresh instance per analyzed
mode** (apps carry task-queue state across a program run, so an
instance is only good for one exploration); a pre-built instance is
analyzed in a single mode.

Apps whose source branches on ``protocol.uses_notices`` (the barnes
family adds locking under LRC) are analyzed in both modes and the
results merged: a finding in either mode is a finding, an annotation
needed in either mode is necessary.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analyze import drf
from repro.analyze.cfg import CfgBuilder
from repro.analyze.core import Finding, filter_noqa
from repro.analyze.dataflow import SiteContext, compute_contexts
from repro.analyze.falseshare import (
    FS_GRANULARITIES,
    FalseSharingAccum,
    merge_summaries,
    rank_cells,
)
from repro.analyze.footprint import explore
from repro.apps.base import Application, make_app

DEFAULT_NPROCS = 4
DEFAULT_SCALE = "tiny"


@dataclass
class ModeAnalysis:
    """One exploration mode (lrc_mode False = SC-family, True = LRC)."""

    lrc_mode: bool
    findings: List[Finding]
    sweep: drf.SweepResult
    fs_summary: Dict[int, dict]
    n_segments: int
    n_ops: int
    #: (file, line) -> (reason, exempted pair count) for entered scopes
    exempts: Dict[Tuple[str, int], Tuple[str, int]]
    scope_sites: Dict[Tuple[str, int], Set[drf.Site]]
    participants: Set[drf.Site]


@dataclass
class AppAnalysis:
    """Merged analysis of one app across its modes."""

    name: str
    nprocs: int
    scale: str
    modes: List[ModeAnalysis]
    findings: List[Finding]  # merged + noqa-filtered, sorted
    suppressed: List[Finding]  # what noqa removed (visible in reports)
    false_sharing: Dict[int, dict]
    lock_protected_pairs: int = 0
    exempted_pairs: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "app": self.name,
            "nprocs": self.nprocs,
            "scale": self.scale,
            "modes": [
                {"lrc_mode": m.lrc_mode, "segments": m.n_segments,
                 "ops": m.n_ops, "findings": len(m.findings)}
                for m in self.modes
            ],
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "lock_protected_pairs": self.lock_protected_pairs,
            "exempted_pairs": self.exempted_pairs,
            "false_sharing": {str(g): v for g, v in self.false_sharing.items()},
        }


@dataclass
class CorpusAnalysis:
    apps: List[AppAnalysis]
    ranking: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(a.ok for a in self.apps)

    @property
    def findings(self) -> List[Finding]:
        return [f for a in self.apps for f in a.findings]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "apps": [a.to_dict() for a in self.apps],
            "false_sharing_ranking": self.ranking,
        }


def _wants_both_modes(app_cls: type) -> bool:
    """True when the app's source branches on protocol.uses_notices."""
    for cls in app_cls.__mro__:
        mod = sys.modules.get(cls.__module__)
        file = getattr(mod, "__file__", None)
        if not file:
            continue
        try:
            if "uses_notices" in open(file).read():
                return True
        except OSError:
            continue
    return False


def _finding_key(f: Finding) -> tuple:
    sites = tuple(
        (s["file"], s["line"], s["kind"]) for s in f.extra.get("sites", ())
    )
    return (f.code, str(f.path), f.line, sites or f.message)


def _merge_findings(per_mode: List[List[Finding]]) -> List[Finding]:
    seen: Dict[tuple, Finding] = {}
    for findings in per_mode:
        for f in findings:
            seen.setdefault(_finding_key(f), f)
    return sorted(seen.values(), key=Finding.sort_key)


def _apply_noqa(findings: List[Finding]) -> Tuple[List[Finding], List[Finding]]:
    """Split into (kept, suppressed) using each file's # noqa lines."""
    sources: Dict[str, str] = {}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        path = str(f.path)
        if path not in sources:
            try:
                sources[path] = open(path).read()
            except OSError:
                sources[path] = ""
        if filter_noqa([f], sources[path]):
            kept.append(f)
        else:
            suppressed.append(f)
    return kept, suppressed


def analyze_app(
    app: Union[str, type, Application],
    *,
    nprocs: int = DEFAULT_NPROCS,
    scale: str = DEFAULT_SCALE,
    granularities: Sequence[int] = FS_GRANULARITIES,
    modes: Optional[Sequence[bool]] = None,
    overrides: Optional[dict] = None,
) -> AppAnalysis:
    """Statically verify one app's labeling and predict false sharing."""
    if isinstance(app, str):
        name = app

        def fresh() -> Application:
            return make_app(name, scale, **(overrides or {}))
    elif isinstance(app, type):
        app_cls = app

        def fresh() -> Application:
            return app_cls(scale=scale, **(overrides or {}))
    else:
        instance = app
        uses = [instance]

        def fresh() -> Application:
            if not uses:
                raise ValueError(
                    "an Application instance supports a single exploration; "
                    "pass the registry name or the class for multi-mode "
                    "analysis")
            return uses.pop()

    probe = fresh() if not isinstance(app, Application) else app
    app_cls = type(probe)
    app_name = getattr(probe, "name", app_cls.__name__)
    if modes is None:
        if isinstance(app, Application):
            modes = [False]
        else:
            modes = [False, True] if _wants_both_modes(app_cls) else [False]

    # AST side: CFG + dataflow contexts (mode-independent)
    cfg = CfgBuilder(app_cls).build()
    contexts: Dict[Tuple[str, int], SiteContext] = compute_contexts(cfg)
    cfg_findings = _merge_findings([cfg.findings])

    mode_results: List[ModeAnalysis] = []
    consumed_probe = False
    for lrc_mode in modes:
        if isinstance(app, Application) and not consumed_probe:
            inst = probe
            consumed_probe = True
        else:
            inst = fresh()
        expl = explore(inst, nprocs, lrc_mode=lrc_mode)
        fs = FalseSharingAccum(granularities)
        sweep_res = drf.sweep(expl, fs)
        findings = (drf.conflict_findings(sweep_res, contexts)
                    + drf.structural_findings(expl))
        exempts: Dict[Tuple[str, int], Tuple[str, int]] = {}
        scope_sites: Dict[Tuple[str, int], Set[drf.Site]] = {}
        for did, (file, line, reason) in enumerate(expl.disjoint_sites):
            key = (file, line)
            prev = exempts.get(key, (reason, 0))
            exempts[key] = (reason, prev[1] + sweep_res.exempt_by_site.get(did, 0))
            scope_sites.setdefault(key, set()).update(
                sweep_res.scope_sites.get(did, set()))
        mode_results.append(ModeAnalysis(
            lrc_mode=lrc_mode,
            findings=findings,
            sweep=sweep_res,
            fs_summary=fs.summary(),
            n_segments=len(expl.segments),
            n_ops=expl.n_ops,
            exempts=exempts,
            scope_sites=scope_sites,
            participants=set(sweep_res.exempt_participants),
        ))

    # merge the assume_disjoint audit across modes
    merged_exempts: Dict[Tuple[str, int], Tuple[str, int]] = {}
    merged_scopes: Dict[Tuple[str, int], Set[drf.Site]] = {}
    merged_participants: Set[drf.Site] = set()
    for m in mode_results:
        for key, (reason, n) in m.exempts.items():
            prev = merged_exempts.get(key, (reason, 0))
            merged_exempts[key] = (reason, prev[1] + n)
        for key, sites in m.scope_sites.items():
            merged_scopes.setdefault(key, set()).update(sites)
        merged_participants |= m.participants
    audit = drf.audit_findings(
        merged_exempts, merged_scopes, merged_participants,
        _dedup_ast_sites(cfg.disjoint_sites))

    all_findings = _merge_findings(
        [m.findings for m in mode_results] + [cfg_findings, audit])
    kept, suppressed = _apply_noqa(all_findings)
    return AppAnalysis(
        name=app_name,
        nprocs=nprocs,
        scale=scale,
        modes=mode_results,
        findings=kept,
        suppressed=suppressed,
        false_sharing=merge_summaries([m.fs_summary for m in mode_results]),
        lock_protected_pairs=max(
            (m.sweep.lock_protected_pairs for m in mode_results), default=0),
        exempted_pairs=max(
            (m.sweep.exempted_pairs for m in mode_results), default=0),
    )


def _dedup_ast_sites(sites) -> list:
    seen = set()
    out = []
    for file, line, reason, conditional in sites:
        if (file, line) in seen:
            continue
        seen.add((file, line))
        out.append((file, line, reason, conditional))
    return out


def analyze_corpus(
    names: Optional[Sequence[str]] = None,
    *,
    nprocs: int = DEFAULT_NPROCS,
    scale: str = DEFAULT_SCALE,
    granularities: Sequence[int] = FS_GRANULARITIES,
) -> CorpusAnalysis:
    """Analyze every app in ``names`` (default: the full 12-app corpus)."""
    from repro.apps import APP_NAMES

    apps = [
        analyze_app(n, nprocs=nprocs, scale=scale, granularities=granularities)
        for n in (names or APP_NAMES)
    ]
    ranking = rank_cells({a.name: a.false_sharing for a in apps})
    return CorpusAnalysis(apps=apps, ranking=ranking)
