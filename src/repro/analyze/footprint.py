"""Small-scope concretization: per-rank access footprints.

The labeling checker needs concrete byte ranges and concrete lock ids
-- "``100 + owner``" only becomes checkable once ``owner`` has a
value.  This module runs each app program against a **recording DSM
stub**: no simulator engine, no protocol, no timing -- just the
``runtime/dsm.py`` generator API surface, recording every access into
per-rank, per-synchronization-segment byte-interval sets.

The driver is a canonical round-robin coroutine scheduler: every rank
advances one DSM operation per turn, blocked ranks park on FIFO lock
queues or barrier arrival sets.  This is *one* schedule, but the
verdicts never depend on which one: the checker only uses
schedule-independent order (barrier episodes and common locksets),
never the accidental interleaving the driver happened to produce.
The near-lockstep interleaving only matters for *realism* of
value-dependent control flow (task queues drain evenly, steals happen
at the tail, like a real run).

A stuck exploration is itself a finding: ranks parked forever on a
barrier is phase skew (ANA102), on a lock it is a lost release
(ANA106).

Segments
--------
A rank's execution is cut into *segments* at every synchronization
event (lock acquire/release, barrier exit) and at every
``assume_disjoint`` scope boundary, so within one segment the
lockset, the barrier clock, and the exemption state are all constant.
Barrier-only vector clocks (one tick per barrier exit) give the
schedule-independent happens-before between segments.
"""

from __future__ import annotations

import sys
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.memory.address_space import AddressSpace
from repro.simcore import alloc_block

#: files whose frames are skipped when attributing an access to app
#: source (this module and the stdlib contextmanager plumbing)
_PLUMBING = ("repro/analyze/", "contextlib.py")


def _app_site() -> Tuple[str, int, str]:
    """(file, line, function) of the innermost app-code frame."""
    frame = sys._getframe(2)
    while frame is not None:
        fname = frame.f_code.co_filename.replace("\\", "/")
        if (not any(p in fname for p in _PLUMBING)
                or fname.endswith("/canary.py")):  # the planted app IS app code
            return (fname, frame.f_lineno, frame.f_code.co_name)
        frame = frame.f_back
    return ("<unknown>", 0, "?")


class IntervalSet:
    """Sorted, merged set of half-open byte intervals [lo, hi)."""

    __slots__ = ("_iv", "lo", "hi", "nbytes")

    def __init__(self):
        self._iv: List[Tuple[int, int]] = []
        self.lo = 1 << 62
        self.hi = -1
        self.nbytes = 0

    def add(self, lo: int, hi: int) -> None:
        if hi <= lo:
            return
        iv = self._iv
        i = bisect_left(iv, (lo, -1))
        # merge with a predecessor that overlaps/abuts
        if i > 0 and iv[i - 1][1] >= lo:
            i -= 1
            lo = iv[i][0]
        j = i
        while j < len(iv) and iv[j][0] <= hi:
            hi = max(hi, iv[j][1])
            j += 1
        removed = sum(b - a for a, b in iv[i:j])
        iv[i:j] = [(lo, hi)]
        self.nbytes += (hi - lo) - removed
        self.lo = min(self.lo, lo)
        self.hi = max(self.hi, hi)

    def intervals(self) -> List[Tuple[int, int]]:
        return self._iv

    def intersect(self, other: "IntervalSet") -> List[Tuple[int, int]]:
        """Intervals present in both sets."""
        if self.lo >= other.hi or other.lo >= self.hi:
            return []
        out: List[Tuple[int, int]] = []
        a, b = self._iv, other._iv
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                out.append((lo, hi))
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return out

    def blocks(self, g: int) -> FrozenSet[int]:
        """Ids of all size-``g`` blocks this set touches."""
        out = set()
        for lo, hi in self._iv:
            out.update(range(lo // g, (hi - 1) // g + 1))
        return frozenset(out)

    def __bool__(self) -> bool:
        return bool(self._iv)


class Segment:
    """A run of one rank's accesses with constant sync context."""

    __slots__ = ("rank", "index", "clock", "lockset", "disjoint", "accesses")

    def __init__(self, rank: int, index: int, clock: Tuple[int, ...],
                 lockset: FrozenSet[int], disjoint: Tuple[int, ...]):
        self.rank = rank
        self.index = index
        self.clock = clock  # barrier-only vector clock snapshot
        self.lockset = lockset  # concrete lock ids held
        self.disjoint = disjoint  # active disjoint-site ids (innermost last)
        #: (site_id, is_write) -> IntervalSet
        self.accesses: Dict[Tuple[int, bool], IntervalSet] = {}

    def add(self, site: int, is_write: bool, lo: int, hi: int) -> None:
        iv = self.accesses.get((site, is_write))
        if iv is None:
            iv = self.accesses[(site, is_write)] = IntervalSet()
        iv.add(lo, hi)


def ordered(s1: Segment, s2: Segment) -> bool:
    """True when the segments are barrier-ordered (either direction)."""
    return (s1.clock[s1.rank] <= s2.clock[s1.rank]
            or s2.clock[s2.rank] <= s1.clock[s2.rank])


@dataclass
class Stall:
    """One rank parked forever at exploration end."""

    rank: int
    kind: str  # 'barrier' | 'lock'
    detail: str  # e.g. 'barrier(2) with 3/4 arrivals'
    site: Tuple[str, int, str]


@dataclass
class LockError:
    rank: int
    lock: int
    message: str
    site: Tuple[str, int, str]


@dataclass
class Exploration:
    """Everything the checker needs from one small-scope run."""

    nprocs: int
    lrc_mode: bool
    segments: List[Segment] = field(default_factory=list)
    #: site_id -> (file, line, function)
    sites: List[Tuple[str, int, str]] = field(default_factory=list)
    #: disjoint site_id -> (file, line, reason); entered counts parallel
    disjoint_sites: List[Tuple[str, int, str]] = field(default_factory=list)
    disjoint_entered: List[int] = field(default_factory=list)
    stalls: List[Stall] = field(default_factory=list)
    lock_errors: List[LockError] = field(default_factory=list)
    crashes: List[Tuple[int, str]] = field(default_factory=list)
    #: named segment placements from setup(), for reporting
    placements: List[Tuple[int, int, int]] = field(default_factory=list)
    n_ops: int = 0

    def segments_by_rank(self) -> List[List[Segment]]:
        out: List[List[Segment]] = [[] for _ in range(self.nprocs)]
        for seg in self.segments:
            out[seg.rank].append(seg)
        return out


class _Recorder:
    """Shared recording state across all ranks of one exploration."""

    def __init__(self, result: Exploration):
        self.result = result
        self._site_ids: Dict[Tuple[str, int, str], int] = {}
        self._disjoint_ids: Dict[Tuple[str, int, str], int] = {}
        n = result.nprocs
        self.clocks: List[List[int]] = [[0] * n for _ in range(n)]
        for r in range(n):
            self.clocks[r][r] = 1
        self.held: List[List[int]] = [[] for _ in range(n)]
        self.disjoint: List[List[int]] = [[] for _ in range(n)]
        self._seg: List[Optional[Segment]] = [None] * n
        self._seg_count = [0] * n

    def site_id(self, site: Tuple[str, int, str]) -> int:
        sid = self._site_ids.get(site)
        if sid is None:
            sid = self._site_ids[site] = len(self.result.sites)
            self.result.sites.append(site)
        return sid

    def disjoint_id(self, site: Tuple[str, int, str]) -> int:
        did = self._disjoint_ids.get(site)
        if did is None:
            did = self._disjoint_ids[site] = len(self.result.disjoint_sites)
            self.result.disjoint_sites.append(site)
            self.result.disjoint_entered.append(0)
        return did

    def _cut(self, rank: int) -> None:
        self._seg[rank] = None

    def segment(self, rank: int) -> Segment:
        seg = self._seg[rank]
        if seg is None:
            seg = Segment(
                rank,
                self._seg_count[rank],
                tuple(self.clocks[rank]),
                frozenset(self.held[rank]),
                tuple(self.disjoint[rank]),
            )
            self._seg_count[rank] += 1
            self._seg[rank] = seg
            self.result.segments.append(seg)
        return seg

    # -- recording callbacks from the stub -----------------------------

    def access(self, rank: int, site: Tuple[str, int, str], is_write: bool,
               addr: int, size: int) -> None:
        if size <= 0:
            return
        self.result.n_ops += 1
        self.segment(rank).add(self.site_id(site), is_write, addr, addr + size)

    def lock_acquired(self, rank: int, lock: int) -> None:
        self.held[rank].append(lock)
        self._cut(rank)

    def lock_released(self, rank: int, lock: int) -> None:
        if lock in self.held[rank]:
            self.held[rank].remove(lock)
        self._cut(rank)

    def barrier_exit(self, rank: int, merged: Sequence[int]) -> None:
        clock = [max(a, b) for a, b in zip(self.clocks[rank], merged)]
        clock[rank] += 1
        self.clocks[rank] = clock
        self._cut(rank)

    def disjoint_enter(self, rank: int, site: Tuple[str, int, str]) -> None:
        did = self.disjoint_id(site)
        self.result.disjoint_entered[did] += 1
        self.disjoint[rank].append(did)
        self._cut(rank)

    def disjoint_exit(self, rank: int) -> None:
        if self.disjoint[rank]:
            self.disjoint[rank].pop()
        self._cut(rank)


class _StaticParams:
    """The parameter surface apps read during setup/program."""

    def __init__(self, n_nodes: int, granularity: int):
        self.n_nodes = n_nodes
        self.granularity = granularity


class _StaticProtocol:
    def __init__(self, uses_notices: bool):
        self.uses_notices = uses_notices
        self.name = "static-lrc" if uses_notices else "static-sc"


class StaticMachine:
    """Allocation + placement surface for ``app.setup(machine)``.

    Uses the real :class:`AddressSpace`, so segment addresses and
    page alignment match what a simulated run would see -- the
    false-sharing predictor folds *these* addresses against each
    granularity.
    """

    def __init__(self, nprocs: int, granularity: int = 4096,
                 lrc_mode: bool = False):
        self.params = _StaticParams(nprocs, granularity)
        self.space = AddressSpace()
        self.protocol = _StaticProtocol(lrc_mode)
        self.placements: List[Tuple[int, int, int]] = []

    def alloc(self, size: int, name: str, align: Optional[int] = None):
        if align is None:
            return self.space.alloc(size, name)
        return self.space.alloc(size, name, align=align)

    def place(self, addr: int, size: int, node: int) -> None:
        self.placements.append((addr, size, node))

    def place_segment(self, seg, node: int) -> None:
        self.placements.append((seg.base, seg.size, node))

    def init_data(self, *a, **kw) -> None:
        pass


class StaticDsm:
    """Recording stand-in for :class:`repro.runtime.dsm.Dsm`.

    Access methods are generator functions that record on first
    ``next()`` -- exactly the semantics that make a missing
    ``yield from`` (SIM007) a real bug: an undriven generator records
    nothing, matching the runtime where it simulates nothing.

    Synchronization methods yield a marker tuple to the exploration
    driver, which implements FIFO lock grants and barrier episodes.
    """

    def __init__(self, machine: StaticMachine, rank: int, rec: _Recorder):
        self.machine = machine
        self.rank = rank
        self.params = machine.params
        self._rec = rec

    @property
    def node_id(self) -> int:
        return self.rank

    @property
    def now(self) -> float:
        return 0.0

    def compute(self, us: float):
        return iter(())

    def read(self, addr: int, size: int):
        self._rec.access(self.rank, _app_site(), False, addr, size)
        yield ("step",)
        return alloc_block(size)

    def write(self, addr: int, data):
        self._rec.access(self.rank, _app_site(), True, addr, len(data))
        yield ("step",)

    def touch_read(self, addr: int, size: int):
        self._rec.access(self.rank, _app_site(), False, addr, size)
        yield ("step",)

    def touch_write(self, addr: int, size: int, *, pattern: int = -1):
        self._rec.access(self.rank, _app_site(), True, addr, size)
        yield ("step",)

    def assume_disjoint(self, reason: str):
        return _DisjointScope(self._rec, self.rank)

    def acquire(self, lock_id: int):
        yield ("acquire", int(lock_id), _app_site())
        self._rec.lock_acquired(self.rank, int(lock_id))

    def release(self, lock_id: int):
        yield ("release", int(lock_id), _app_site())
        self._rec.lock_released(self.rank, int(lock_id))

    def barrier(self, barrier_id: int, participants: Optional[int] = None):
        episode: dict = {}
        yield ("barrier", int(barrier_id), participants, _app_site(), episode)
        self._rec.barrier_exit(self.rank, episode["merged"])


class _DisjointScope:
    """Synchronous context manager mirroring ``Dsm.assume_disjoint``."""

    __slots__ = ("_rec", "_rank")

    def __init__(self, rec: _Recorder, rank: int):
        self._rec = rec
        self._rank = rank

    def __enter__(self):
        self._rec.disjoint_enter(self._rank, _app_site())
        return self

    def __exit__(self, *exc):
        self._rec.disjoint_exit(self._rank)
        return False


#: hard cap on driver steps -- a backstop against runaway programs,
#: far above what any tiny-scale app needs
MAX_STEPS = 5_000_000


def explore(app, nprocs: int = 4, *, granularity: int = 4096,
            lrc_mode: bool = False) -> Exploration:
    """Run ``app`` (an Application instance) through the recording
    stub under the canonical scheduler and return its footprints."""
    result = Exploration(nprocs=nprocs, lrc_mode=lrc_mode)
    machine = StaticMachine(nprocs, granularity=granularity, lrc_mode=lrc_mode)
    app.setup(machine)
    result.placements = machine.placements
    rec = _Recorder(result)
    gens = [app.program(StaticDsm(machine, r, rec), r, nprocs)
            for r in range(nprocs)]
    ready = deque(range(nprocs))
    state = ["ready"] * nprocs  # ready | lock | barrier | done | crashed
    wait_info: List[Optional[tuple]] = [None] * nprocs
    lock_holder: Dict[int, int] = {}
    lock_waiters: Dict[int, deque] = {}
    bar_arrivals: Dict[int, list] = {}  # bid -> [(rank, episode dict)]
    steps = 0

    def wake(rank: int) -> None:
        state[rank] = "ready"
        wait_info[rank] = None
        ready.append(rank)

    while ready and steps < MAX_STEPS:
        steps += 1
        rank = ready.popleft()
        try:
            item = next(gens[rank])
        except StopIteration:
            state[rank] = "done"
            continue
        except Exception as exc:  # app bug: surface, don't crash the tool
            state[rank] = "crashed"
            result.crashes.append((rank, f"{type(exc).__name__}: {exc}"))
            continue
        tag = item[0] if isinstance(item, tuple) and item else None
        if tag == "acquire":
            _, lock, site = item
            if lock not in lock_holder:
                lock_holder[lock] = rank
                ready.append(rank)  # resumes past the yield, records grant
            else:
                state[rank] = "lock"
                wait_info[rank] = (lock, site)
                lock_waiters.setdefault(lock, deque()).append(rank)
        elif tag == "release":
            _, lock, site = item
            if lock_holder.get(lock) != rank:
                result.lock_errors.append(LockError(
                    rank, lock,
                    f"release of lock {lock} not held by rank {rank}", site))
            else:
                del lock_holder[lock]
                waiters = lock_waiters.get(lock)
                if waiters:
                    nxt = waiters.popleft()
                    lock_holder[lock] = nxt
                    wake(nxt)
            ready.append(rank)
        elif tag == "barrier":
            _, bid, participants, site, episode = item
            need = participants if participants is not None else nprocs
            arrivals = bar_arrivals.setdefault(bid, [])
            arrivals.append((rank, episode))
            state[rank] = "barrier"
            wait_info[rank] = (bid, site)
            if len(arrivals) >= need:
                merged = [0] * nprocs
                for r, _ in arrivals:
                    for i, v in enumerate(rec.clocks[r]):
                        if v > merged[i]:
                            merged[i] = v
                for r, ep in arrivals:
                    ep["merged"] = merged
                    wake(r)
                bar_arrivals[bid] = []
        else:  # ("step",) or a stray plain yield from app code
            ready.append(rank)

    # -- stall / leak detection ----------------------------------------
    for rank in range(nprocs):
        if state[rank] == "lock":
            lock, site = wait_info[rank]
            holder = lock_holder.get(lock)
            result.stalls.append(Stall(
                rank, "lock",
                f"waiting forever for lock {lock} (held by rank {holder})",
                site))
        elif state[rank] == "barrier":
            bid, site = wait_info[rank]
            n_arrived = len(bar_arrivals.get(bid, []))
            absent = [r for r in range(nprocs)
                      if state[r] in ("done", "crashed")]
            result.stalls.append(Stall(
                rank, "barrier",
                f"waiting forever at barrier({bid}) with {n_arrived}/"
                f"{nprocs} arrivals (ranks {absent} never arrive)",
                site))
    for lock, holder in sorted(lock_holder.items()):
        if state[holder] == "done":
            result.lock_errors.append(LockError(
                holder, lock,
                f"lock {lock} still held by rank {holder} at program end "
                "(missing release)", ("<end>", 0, "?")))
    if steps >= MAX_STEPS:
        result.crashes.append((-1, f"exploration exceeded {MAX_STEPS} steps"))
    return result


__all__ = [
    "IntervalSet", "Segment", "ordered", "Exploration", "Stall", "LockError",
    "StaticMachine", "StaticDsm", "explore",
]
