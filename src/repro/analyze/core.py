"""Shared AST / finding / noqa core for static passes.

Both static front ends sit on this module:

* ``tools/lint_sim.py`` -- the SIM00x determinism lint;
* ``repro.analyze`` -- the ANA1xx labeling checker.

They share one ``Finding`` type, one ``# noqa`` suppression syntax,
one set of AST helpers, and one file-walking / reporting driver, so a
suppression or a report line means the same thing in both.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "Finding",
    "dotted",
    "contains_yield",
    "ann_head",
    "is_abstract_stub",
    "noqa_lines",
    "filter_noqa",
    "parse_source",
    "walk_files",
    "run_lint",
    "print_findings",
]


class Finding:
    """One static finding: a coded message anchored at a source line.

    ``detail`` lines render indented under the headline (used by the
    ANA rules to show both access sites, locksets, and overlapping
    index expressions); ``extra`` is a JSON-serializable payload.
    """

    def __init__(
        self,
        path,
        line: int,
        code: str,
        message: str,
        detail: Optional[List[str]] = None,
        extra: Optional[dict] = None,
    ):
        self.path = Path(path)
        self.line = line
        self.code = code
        self.message = message
        self.detail = detail or []
        self.extra = extra or {}

    def __str__(self) -> str:
        head = f"{self.path}:{self.line}: {self.code} {self.message}"
        if self.detail:
            head += "".join(f"\n    {d}" for d in self.detail)
        return head

    def __repr__(self) -> str:
        return f"Finding({self.code} @ {self.path}:{self.line})"

    def sort_key(self) -> Tuple[str, int, str]:
        return (str(self.path), self.line, self.code)

    def to_dict(self) -> dict:
        out = {
            "path": str(self.path),
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }
        if self.detail:
            out["detail"] = list(self.detail)
        if self.extra:
            out["extra"] = dict(self.extra)
        return out


# -- AST helpers -------------------------------------------------------


def dotted(node: ast.AST) -> Optional[str]:
    """'a.b.c' for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def contains_yield(fn: ast.AST) -> bool:
    """True if the function body itself contains yield / yield from.

    Nested function definitions are skipped: a nested generator does
    not make the outer function a generator.
    """
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def ann_head(node: ast.AST) -> Optional[str]:
    """Head name of an annotation: ``Dict[int, Set[int]]`` -> 'Dict'."""
    if isinstance(node, ast.Subscript):
        return ann_head(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_abstract_stub(fn: ast.FunctionDef) -> bool:
    """A body that only raises (after an optional docstring)."""
    body = fn.body
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]
    return bool(body) and all(isinstance(st, ast.Raise) for st in body)


# -- noqa suppression --------------------------------------------------


def noqa_lines(source: str) -> Dict[int, Set[str]]:
    """line number -> set of suppressed codes (empty set = all)."""
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(source.splitlines(), 1):
        if "# noqa" not in line:
            continue
        _, _, rest = line.partition("# noqa")
        rest = rest.strip()
        if rest.startswith(":"):
            out[i] = {c.strip() for c in rest[1:].split(",")}
        else:
            out[i] = set()
    return out


def filter_noqa(findings: Iterable[Finding], source: str) -> List[Finding]:
    """Drop findings suppressed by a ``# noqa`` on their line."""
    noqa = noqa_lines(source)
    return [
        f
        for f in findings
        if not (f.line in noqa and (not noqa[f.line] or f.code in noqa[f.line]))
    ]


# -- file walking / reporting driver -----------------------------------


def parse_source(path: Path) -> Tuple[Optional[ast.AST], str, Optional[Finding]]:
    """Parse a file; on syntax error return a code-000 finding."""
    path = Path(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, source, Finding(
            path, exc.lineno or 0, "SIM000", f"syntax error: {exc.msg}"
        )
    return tree, source, None


def walk_files(args: List[str]) -> List[Path]:
    """Expand path arguments into a sorted list of .py files."""
    files: List[Path] = []
    for arg in args:
        root = Path(arg)
        files.extend([root] if root.is_file() else sorted(root.rglob("*.py")))
    return files


def run_lint(
    args: List[str],
    lint_file: Callable[[Path], List[Finding]],
    *,
    label: str = "lint",
    out=None,
) -> int:
    """Walk paths, collect findings, print a report; exit-code style."""
    out = out or sys.stdout
    files = walk_files(args)
    findings: List[Finding] = []
    for f in files:
        findings.extend(lint_file(f))
    print_findings(findings, out=out)
    if findings:
        print(
            f"{len(findings)} finding(s) in {len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"{label}: {len(files)} file(s) clean", file=out)
    return 0


def print_findings(findings: Iterable[Finding], out=None) -> None:
    out = out or sys.stdout
    for f in sorted(findings, key=Finding.sort_key):
        print(f, file=out)
