"""Parallel, fault-tolerant scheduler for matrix cells.

Every cell of the evaluation matrix is an independent simulation, so
the sweep is embarrassingly parallel: ``execute_many`` fans cells out
over a ``ProcessPoolExecutor``, serves repeats from the on-disk cache,
and isolates failures -- a cell that exhausts its event budget or its
wall-clock timeout becomes a failed :class:`RunRecord` instead of
killing the sweep.  Because the simulation engine is deterministic
(bit-identical event ordering per ``sim/engine.py``), a parallel sweep
returns exactly the summaries a serial sweep would.

Fault model:

* ``SimulationError`` (event-budget exhaustion, deadlock) is a
  deterministic outcome: recorded as failed, cached, never retried.
* ``CellTimeout`` (per-run wall-clock limit, enforced by ``SIGALRM``
  inside the worker) is host-dependent: recorded as failed, not cached.
* A broken pool (worker killed, e.g. by the OOM killer) is transient:
  the affected cells are resubmitted to a fresh pool up to ``retries``
  times before being recorded as failed.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.events import EventLog
from repro.exec.serialize import RunRecord, config_to_dict
from repro.sim import engine as sim_engine

if TYPE_CHECKING:  # imported lazily at runtime: harness imports exec
    from repro.harness.experiment import RunConfig


class CellTimeout(Exception):
    """A single cell exceeded its wall-clock budget."""


#: Set by the SIGALRM handler, checked by ``_simulate_cell`` after the
#: run returns: a timeout whose interruption could not be delivered as
#: an exception still fails the cell.
_TIMED_OUT = False


def _alarm_handler(signum, frame):
    # Never raise from here.  The signal lands at an arbitrary bytecode
    # boundary: inside a GC callback or a __del__ the raise is silently
    # discarded, and inside exception-reporting machinery (the
    # unraisable hook formatting a traceback) it escapes through code
    # that has nothing to do with the cell.  Flag the timeout and
    # poison the running engine instead -- its dispatch loop raises
    # CellTimeout from a frame that always propagates to
    # _simulate_cell.  When no engine is dispatching (cell setup or
    # teardown), the flag alone fails the cell once the run returns.
    global _TIMED_OUT
    _TIMED_OUT = True
    active = sim_engine._ACTIVE
    if active is not None:
        active.interrupt(CellTimeout("per-run timeout expired"))


#: Cleanup hooks run inside a (pool-worker or serial) process after a
#: cell times out.  A timeout cuts the run off at an arbitrary point,
#: so any *process-level* memo being built at that instant may be left
#: half-populated -- and pool workers are warm: the next cell they run
#: would consult the poisoned memo.  Modules that keep process-level
#: memo state register a reset here.
_WORKER_RESETS: List[Callable[[], None]] = []


def register_worker_reset(fn: Callable[[], None]) -> Callable[[], None]:
    """Register a zero-arg callable that restores a process-level memo
    to its pristine state (returns ``fn`` so it can be used bare or as
    a decorator)."""
    _WORKER_RESETS.append(fn)
    return fn


def _reset_worker_state() -> None:
    """Drop every process-level memo after a CellTimeout.

    Known memos are reset directly (imported lazily: they may simply
    not be loaded yet in this worker); extension memos go through
    :func:`register_worker_reset`.
    """
    import sys

    import repro.exec.cache as _cache

    _cache._FINGERPRINT = None
    matrix = sys.modules.get("repro.harness.matrix")
    if matrix is not None:
        matrix._CACHE.clear()
    for fn in _WORKER_RESETS:
        fn()


def _simulate_cell(
    cfg: "RunConfig",
    max_events: Optional[int] = None,
    timeout_s: Optional[float] = None,
    attempt: int = 1,
    check: bool = False,
) -> RunRecord:
    """Run one cell to a RunRecord; never raises.

    Top-level so it pickles into pool workers.  The timeout uses
    ``SIGALRM``, which works both serially and in workers (pool workers
    execute jobs on their main thread) but is skipped when called from
    a non-main thread.

    ``check`` runs the cell under the :mod:`repro.check` race detector
    and invariant sanitizer: a cell with findings becomes a *failed*
    record (error_type ``CheckFailure``), a clean cell carries the
    checker counters in ``record.check``.
    """
    global _TIMED_OUT
    start = time.monotonic()
    use_alarm = (
        timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    old_handler = None
    if use_alarm:
        _TIMED_OUT = False
        old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        # Armed with a repeat interval, not one-shot: the handler only
        # flags and poisons, so a fire that lands before the engine
        # starts dispatching (cell setup) would otherwise be inert --
        # the re-fire delivers the poison once the event loop is live.
        signal.setitimer(signal.ITIMER_REAL, timeout_s, min(timeout_s, 0.05))
    try:
        from repro.harness.experiment import run_experiment

        result = run_experiment(cfg, max_events=max_events, check=check)
        if use_alarm and _TIMED_OUT:
            # Every fire landed outside the event loop and the run
            # still completed; over budget is over budget.
            raise CellTimeout("per-run timeout expired")
        if check and result.check is not None and not result.check.ok:
            from repro.check import CheckFailure

            raise CheckFailure(result.check, cfg.label())
        rec = RunRecord.from_stats(
            cfg, result.stats, duration_s=time.monotonic() - start, attempts=attempt
        )
        if check and result.check is not None:
            rep = result.check
            rec.check = {
                "races": rep.races_total,
                "false_sharing": rep.false_sharing_total,
                "violations": rep.violations_total,
            }
        return rec
    except Exception as exc:
        if isinstance(exc, CellTimeout):
            # The poison cut the run off at an arbitrary event: assume
            # nothing about half-built process-level memo state.
            _reset_worker_state()
        return RunRecord.from_failure(
            cfg, exc, duration_s=time.monotonic() - start, attempts=attempt
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
            _TIMED_OUT = False


def execute(
    cfg: "RunConfig",
    *,
    cache: Optional[ResultCache] = None,
    events: Optional[EventLog] = None,
    max_events: Optional[int] = None,
    timeout: Optional[float] = None,
    check: bool = False,
) -> RunRecord:
    """Run (or fetch) a single cell through the engine."""
    log = events if events is not None else EventLog()
    extra = _cache_extra(max_events, check)
    if cache is not None:
        hit = cache.get(cfg, extra)
        if hit is not None:
            log.emit("cache_hit", config=config_to_dict(cfg))
            return hit
    log.emit("run_started", config=config_to_dict(cfg), attempt=1)
    rec = _simulate_cell(cfg, max_events=max_events, timeout_s=timeout, check=check)
    _finish(rec, cache, log, extra)
    return rec


def _cache_extra(max_events, check: bool = False):
    """Non-default execution knobs that must partition the cache.

    An unchecked sweep's extra dict (and hence its cache keys) is
    byte-for-byte what it was before checking existed; ``check=True``
    gains a key so checked records never shadow unchecked ones."""
    extra = {}
    if max_events is not None:
        extra["max_events"] = max_events
    if check:
        extra["check"] = True
    return extra or None


def _finish(
    rec: RunRecord,
    cache: Optional[ResultCache],
    log: EventLog,
    extra: Optional[Dict] = None,
) -> None:
    """Emit the terminal event for a record and cache it."""
    cfg_d = config_to_dict(rec.config)
    if rec.ok:
        log.emit(
            "run_finished",
            config=cfg_d,
            duration_s=rec.duration_s,
            speedup=rec.speedup,
        )
    else:
        log.emit(
            "run_failed",
            config=cfg_d,
            error=rec.error,
            error_type=rec.error_type,
            duration_s=rec.duration_s,
        )
    if cache is not None:
        cache.put(rec, extra)


def execute_many(
    configs: Sequence["RunConfig"],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    events: Optional[EventLog] = None,
    max_events: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
    check: bool = False,
) -> Dict["RunConfig", RunRecord]:
    """Execute a batch of cells, ``jobs`` at a time.

    Returns config -> record in the order given (duplicates collapse to
    one execution).  ``retries`` bounds how many times a cell is
    resubmitted after transient pool failures.
    """
    t0 = time.monotonic()
    log = events if events is not None else EventLog()
    ordered: List["RunConfig"] = []
    for cfg in configs:
        if cfg not in ordered:
            ordered.append(cfg)
    log.emit(
        "sweep_started",
        cells=len(ordered),
        jobs=jobs,
        cache_backend=str(cache.cache_dir) if cache is not None else None,
    )

    out: Dict["RunConfig", RunRecord] = {}
    pending: List["RunConfig"] = []
    extra = _cache_extra(max_events, check)
    for cfg in ordered:
        if progress:
            progress(cfg.label())
        hit = cache.get(cfg, extra) if cache is not None else None
        if hit is not None:
            log.emit("cache_hit", config=config_to_dict(cfg))
            out[cfg] = hit
        else:
            pending.append(cfg)

    if pending:
        if jobs <= 1:
            for cfg in pending:
                log.emit("run_started", config=config_to_dict(cfg), attempt=1)
                rec = _simulate_cell(
                    cfg, max_events=max_events, timeout_s=timeout, check=check
                )
                _finish(rec, cache, log, extra)
                out[cfg] = rec
        else:
            _execute_pool(
                pending, out, jobs, cache, log, max_events, timeout, retries,
                check,
            )

    results = {cfg: out[cfg] for cfg in ordered}
    n_ok = sum(1 for r in results.values() if r.ok)
    log.emit(
        "sweep_finished",
        ok=n_ok,
        failed=len(results) - n_ok,
        cache_hits=sum(1 for r in results.values() if r.cached),
        duration_s=time.monotonic() - t0,
    )
    return results


def _execute_pool(
    pending: List["RunConfig"],
    out: Dict["RunConfig", RunRecord],
    jobs: int,
    cache: Optional[ResultCache],
    log: EventLog,
    max_events: Optional[int],
    timeout: Optional[float],
    retries: int,
    check: bool = False,
) -> None:
    """Fan ``pending`` out over worker processes, retrying cells whose
    worker died (broken pool) up to ``retries`` extra attempts."""
    attempt = 1
    extra = _cache_extra(max_events, check)
    while pending:
        retry: List["RunConfig"] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {}
            for cfg in pending:
                log.emit("run_started", config=config_to_dict(cfg), attempt=attempt)
                futures[
                    pool.submit(
                        _simulate_cell, cfg, max_events, timeout, attempt, check
                    )
                ] = cfg
            for fut in as_completed(futures):
                cfg = futures[fut]
                try:
                    rec = fut.result()
                except BrokenProcessPool:
                    retry.append(cfg)
                    continue
                except Exception as exc:  # e.g. result failed to unpickle
                    rec = RunRecord.from_failure(cfg, exc, attempts=attempt)
                _finish(rec, cache, log, extra)
                out[cfg] = rec
        if retry and attempt > retries:
            for cfg in retry:
                rec = RunRecord.from_failure(
                    cfg,
                    BrokenProcessPool("worker died; retries exhausted"),
                    attempts=attempt,
                )
                _finish(rec, cache, log, extra)
                out[cfg] = rec
            retry = []
        pending = retry
        attempt += 1
