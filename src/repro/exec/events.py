"""Structured JSONL event log for the execution engine.

One line per event, each a JSON object with at least ``type`` and
``ts`` (wall-clock seconds since the epoch).  Event types emitted by
the engine:

==============  ========================================================
sweep_started   a batch of cells was handed to the engine
                (``cells``, ``jobs``, ``cached_backend``)
cache_hit       a cell was served from the on-disk cache (``config``)
run_started     a cell began simulating (``config``, ``attempt``)
run_finished    a cell completed (``config``, ``duration_s``,
                ``speedup``)
run_failed      a cell raised or timed out (``config``, ``error``,
                ``error_type``, ``duration_s``)
sweep_finished  the batch completed (``ok``, ``failed``, ``cache_hits``,
                ``duration_s``)
==============  ========================================================

``config`` is the flat ``RunConfig`` dictionary, so logs are grep-able
by app/protocol/granularity without joining against anything else.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

RUN_EVENT_TYPES = ("run_started", "run_finished", "run_failed")


class EventLog:
    """Append-only JSONL sink; also keeps events in memory.

    Construct with a path to append to a file, or with no arguments for
    an in-memory log (tests, programmatic inspection).  Safe to share
    between the scheduler and cache layers; writes are line-buffered so
    a crashed sweep still leaves a readable log.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.events: List[Dict] = []
        self._fh = open(path, "a", buffering=1) if path else None

    def emit(self, etype: str, **fields) -> Dict:
        ev = {"type": etype, "ts": time.time(), **fields}
        self.events.append(ev)
        if self._fh is not None:
            self._fh.write(json.dumps(ev, sort_keys=True) + "\n")
        return ev

    def types(self) -> List[str]:
        return [e["type"] for e in self.events]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str) -> List[Dict]:
    """Parse a JSONL event log back into a list of dictionaries."""
    out: List[Dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
