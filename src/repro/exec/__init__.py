"""repro.exec: the experiment execution engine.

Turns the evaluation matrix -- (12 apps x 3 protocols x 4
granularities x 2 mechanisms) independent simulations -- into an
embarrassingly parallel, disk-cached, fault-tolerant batch job:

* :mod:`repro.exec.serialize` -- slim picklable/JSONable ``RunRecord``
  results that cross process boundaries without the ``Machine``;
* :mod:`repro.exec.cache` -- content-addressed on-disk store keyed by
  ``RunConfig`` + a source/calibration fingerprint, so results survive
  interpreter restarts and auto-invalidate when the simulator changes;
* :mod:`repro.exec.pool` -- a ``ProcessPoolExecutor`` scheduler with
  per-run timeouts, bounded retry of transient failures, and per-cell
  error capture;
* :mod:`repro.exec.events` -- a structured JSONL event log of every
  run/cache/failure.

See ``docs/EXECUTION.md`` for the full story.
"""

from repro.exec.cache import ResultCache, code_fingerprint, default_cache_dir
from repro.exec.events import EventLog, read_events
from repro.exec.pool import CellTimeout, execute, execute_many
from repro.exec.serialize import RunRecord, config_from_dict, config_to_dict

__all__ = [
    "RunRecord",
    "ResultCache",
    "EventLog",
    "CellTimeout",
    "execute",
    "execute_many",
    "code_fingerprint",
    "default_cache_dir",
    "read_events",
    "config_to_dict",
    "config_from_dict",
]
