"""Slim, process-boundary-safe result records.

``run_experiment`` returns a ``RunResult`` that drags the whole
``Machine`` and ``Application`` along -- perfect for interactive
inspection, useless for a process pool or a disk cache.  ``RunRecord``
keeps exactly what the paper's tables need: the configuration, the
summary dictionary, the full :class:`~repro.stats.counters.Stats`
(per-node counters and message counters included), and the failure
information when a cell blew its event budget or timed out.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.stats.counters import Stats

if TYPE_CHECKING:  # imported lazily at runtime: harness imports exec
    from repro.harness.experiment import RunConfig


def config_to_dict(cfg: "RunConfig") -> Dict:
    # ``faults`` is omitted entirely when None so that fault-free
    # configs serialize exactly as they did before the chaos layer
    # existed -- pre-existing cache keys and result files stay valid.
    d = dataclasses.asdict(cfg)
    if d.get("faults") is None:
        d.pop("faults", None)
    return d


def config_from_dict(d: Dict) -> "RunConfig":
    from repro.harness.experiment import RunConfig
    from repro.net.faultplan import FaultSpec

    d = dict(d)
    faults = d.get("faults")
    if faults is not None and not isinstance(faults, FaultSpec):
        d["faults"] = FaultSpec.from_dict(faults)
    return RunConfig(**d)


@dataclass
class RunRecord:
    """Outcome of one matrix cell, successful or failed.

    Quacks like ``RunResult`` for the table/figure renderers (``stats``,
    ``speedup``, ``config``) while staying picklable and
    JSON-serializable.
    """

    config: "RunConfig"
    ok: bool
    stats: Optional[Stats] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: wall-clock seconds the simulation took (0.0 for cache hits)
    duration_s: float = 0.0
    #: how many executions it took (>1 after transient-failure retries)
    attempts: int = 1
    #: True when this record came from the on-disk cache
    cached: bool = False
    #: checker summary counters for runs executed with ``check=True``
    #: ({"races": .., "false_sharing": .., "violations": ..,
    #: "exempted": ..}); None for unchecked runs
    check: Optional[Dict] = None

    @property
    def speedup(self) -> float:
        return self.stats.speedup if self.stats is not None else 0.0

    def summary(self) -> Dict[str, float]:
        return self.stats.summary() if self.stats is not None else {}

    def label(self) -> str:
        return self.config.label()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_stats(
        cls, cfg: RunConfig, stats: Stats, duration_s: float = 0.0, attempts: int = 1
    ) -> "RunRecord":
        return cls(
            config=cfg, ok=True, stats=stats, duration_s=duration_s, attempts=attempts
        )

    @classmethod
    def from_failure(
        cls,
        cfg: RunConfig,
        exc: BaseException,
        duration_s: float = 0.0,
        attempts: int = 1,
    ) -> "RunRecord":
        return cls(
            config=cfg,
            ok=False,
            error=str(exc),
            error_type=type(exc).__name__,
            duration_s=duration_s,
            attempts=attempts,
        )

    # ------------------------------------------------------------------
    # JSON round trip (the disk-cache format)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict:
        return {
            "config": config_to_dict(self.config),
            "ok": self.ok,
            "stats": None if self.stats is None else self.stats.to_dict(),
            "error": self.error,
            "error_type": self.error_type,
            "duration_s": self.duration_s,
            "attempts": self.attempts,
            "check": self.check,
        }

    @classmethod
    def from_json_dict(cls, d: Dict) -> "RunRecord":
        return cls(
            config=config_from_dict(d["config"]),
            ok=d["ok"],
            stats=None if d["stats"] is None else Stats.from_dict(d["stats"]),
            error=d.get("error"),
            error_type=d.get("error_type"),
            duration_s=d.get("duration_s", 0.0),
            attempts=d.get("attempts", 1),
            check=d.get("check"),
        )
