"""Content-addressed on-disk result store.

Each matrix cell is stored as one JSON file named by the SHA-256 of its
``RunConfig`` plus a *fingerprint* of the simulator itself -- the hash
of every ``repro`` source file and the calibrated machine constants.
Touch a protocol handler, a cost constant, or an application model and
every previously cached result silently stops matching; nothing stale
can ever be served.

Default location: ``~/.cache/repro-dsm`` (``$REPRO_DSM_CACHE`` or the
``--cache-dir`` CLI flag override it).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional

from repro.exec.serialize import RunRecord, config_to_dict

if TYPE_CHECKING:  # imported lazily at runtime: harness imports exec
    from repro.harness.experiment import RunConfig

_FINGERPRINT: Optional[str] = None

#: failures worth caching: deterministic simulation outcomes.  Timeouts
#: and pool breakage depend on the host and must be retried next time.
#: TransportError (retransmit budget exhausted under a fault plan) is
#: deterministic -- the fault plan is seeded and part of the config.
_CACHEABLE_FAILURES = ("SimulationError", "TransportError")

#: Sub-packages that can never change a simulation outcome: they only
#: *measure* (perf regression harness), *post-process* (analysis), or
#: inspect source without running it (the analyze static checker) --
#: editing them must not invalidate the result cache.
_FINGERPRINT_EXCLUDE_DIRS = ("perf", "analysis", "analyze")

#: Presentation/orchestration modules inside otherwise-semantic
#: packages: report/table/figure renderers and the CLI read finished
#: Stats, they never touch the simulation.  harness/experiment.py and
#: harness/matrix.py stay IN the fingerprint (they build the Machine
#: and define cell parameters).
_FINGERPRINT_EXCLUDE_FILES = frozenset(
    {
        "harness/report.py",
        "harness/tables.py",
        "harness/figures.py",
        "harness/cli.py",
    }
)


def _fingerprint_relevant(rel_posix: str) -> bool:
    """Whether a ``repro``-relative source path feeds the fingerprint."""
    top = rel_posix.split("/", 1)[0]
    if top in _FINGERPRINT_EXCLUDE_DIRS:
        return False
    return rel_posix not in _FINGERPRINT_EXCLUDE_FILES


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_DSM_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-dsm")


def code_fingerprint() -> str:
    """SHA-256 over the *simulation-semantics* ``repro`` sources plus
    the default machine cost constants.  Memoized per process.

    Scoped deliberately: measurement, presentation, and static-analysis
    code (``repro/perf``, ``repro/analysis``, ``repro/analyze``, the
    harness report/table/figure/CLI modules -- see
    ``_FINGERPRINT_EXCLUDE_*``) is hashed
    *out*, so tuning a benchmark threshold or a table format does not
    stampede-invalidate every cached simulation result.  Everything
    that can influence a :class:`~repro.stats.counters.Stats` -- apps,
    cluster, core, memory, net, runtime, sim, sync, check, exec --
    stays in.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        _FINGERPRINT = _fingerprint_tree(Path(repro.__file__).parent)
    return _FINGERPRINT


def _fingerprint_tree(pkg_root: Path) -> str:
    """The fingerprint of one source tree (unmemoized; tests hash
    scratch copies of the package through this)."""
    import repro
    from repro.cluster.config import MachineParams

    h = hashlib.sha256()
    h.update(repro.__version__.encode())
    h.update(repr(sorted(dataclasses.asdict(MachineParams()).items())).encode())
    for path in sorted(pkg_root.rglob("*.py")):
        rel = path.relative_to(pkg_root).as_posix()
        if not _fingerprint_relevant(rel):
            continue
        h.update(rel.encode())
        h.update(path.read_bytes())
    return h.hexdigest()


class ResultCache:
    """Dictionary-shaped view over the cache directory.

    ``get`` returns a :class:`RunRecord` (flagged ``cached=True``) or
    ``None``; ``put`` writes atomically (temp file + rename) so
    concurrent sweeps sharing a directory never read torn JSON.
    """

    def __init__(
        self, cache_dir: Optional[str] = None, fingerprint: Optional[str] = None
    ):
        self.cache_dir = Path(cache_dir or default_cache_dir())
        self.fingerprint = fingerprint or code_fingerprint()
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def key(self, cfg: "RunConfig", extra: Optional[Dict] = None) -> str:
        """``extra`` captures execution knobs that change the outcome
        (e.g. a non-default event budget) so they address distinct
        entries."""
        payload = json.dumps(
            {
                "config": config_to_dict(cfg),
                "fingerprint": self.fingerprint,
                "extra": extra or None,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, cfg: "RunConfig", extra: Optional[Dict] = None) -> Path:
        return self.cache_dir / f"{self.key(cfg, extra)}.json"

    # ------------------------------------------------------------------
    def get(self, cfg: "RunConfig", extra: Optional[Dict] = None) -> Optional[RunRecord]:
        path = self._path(cfg, extra)
        try:
            with open(path) as fh:
                envelope = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if envelope.get("fingerprint") != self.fingerprint:
            return None
        try:
            rec = RunRecord.from_json_dict(envelope["record"])
        except (KeyError, TypeError):
            return None
        rec.cached = True
        return rec

    def put(self, rec: RunRecord, extra: Optional[Dict] = None) -> bool:
        """Store a record; returns False for uncacheable failures."""
        if not rec.ok and rec.error_type not in _CACHEABLE_FAILURES:
            return False
        envelope = {
            "fingerprint": self.fingerprint,
            "label": rec.config.label(),
            "record": rec.to_json_dict(),
        }
        path = self._path(rec.config, extra)
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(envelope, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        n = 0
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n

    def stats(self) -> Dict[str, float]:
        files = list(self.cache_dir.glob("*.json"))
        return {
            "entries": len(files),
            "bytes": float(sum(p.stat().st_size for p in files)),
        }
