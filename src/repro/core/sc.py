"""Sequential consistency protocol (paper Section 2.1).

A Stache-style home-based directory protocol:

* each coherence block has either a single writer (the *owner*, holding
  an exclusive RW copy) or any number of readers (RO copies), never
  both;
* on a miss, a request is sent to the block's home;
* the home serializes transactions per block (``busy`` + pending
  queue), recalls exclusive copies, invalidates read copies and
  collects acknowledgements before granting;
* invalidation at a node immediately invalidates RO copies and writes
  back + invalidates RW copies (modulo the polling/interrupt
  notification delay -- which is exactly the Section 5.4 effect).

The home's own copy is the master whenever no remote owner exists; the
home participates in sharing through the same tag table as everyone
else, using node-local messages (no wire cost) for its own misses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, Iterator, Optional, Set

from repro.core.protocol import CoherenceProtocol, register
from repro.memory.access_control import RO, RW
from repro.net.message import HEADER_BYTES, Message
from repro.sim.process import CountdownLatch, Future

#: widest machine the directory keeps plain-set copysets for; above
#: this :func:`make_copyset` switches to the sharded sparse form.
#: Matches the clock threshold in ``core/timestamps.py`` so every
#: paper-scale (16-node) structure keeps its exact seed representation
#: -- the bit-identity contract.
PLAIN_COPYSET_MAX = 64

#: nodes per copyset shard (and the shard-index shift)
_SHARD_SHIFT = 6

#: modeled bytes per registered sharer / per allocated shard
COPYSET_ENTRY_BYTES = 4
_SHARD_OVERHEAD_BYTES = 8


class ShardedCopyset:
    """A directory copyset as a dict of per-64-node shards.

    On wide machines a block's sharer set is usually tiny relative to
    N but *can* reach N (a barrier-broadcast block); sharding keeps
    membership ops O(1) on small sets while bounding the per-shard set
    sizes, and makes the storage capacity-honest: bytes scale with
    registered sharers, never with machine width.  Small machines
    (<= :data:`PLAIN_COPYSET_MAX` nodes) keep the plain ``set`` the
    seed used -- same iteration order, same message order, same
    stats-sha.
    """

    __slots__ = ("_shards",)

    def __init__(self) -> None:
        self._shards: Dict[int, Set[int]] = {}

    def add(self, node: int) -> None:
        shard = self._shards.get(node >> _SHARD_SHIFT)
        if shard is None:
            shard = self._shards[node >> _SHARD_SHIFT] = set()
        shard.add(node)

    def discard(self, node: int) -> None:
        shard = self._shards.get(node >> _SHARD_SHIFT)
        if shard is not None:
            shard.discard(node)
            if not shard:
                del self._shards[node >> _SHARD_SHIFT]

    def clear(self) -> None:
        self._shards.clear()

    def __contains__(self, node: int) -> bool:
        shard = self._shards.get(node >> _SHARD_SHIFT)
        return shard is not None and node in shard

    def __iter__(self) -> Iterator[int]:
        # Deterministic shard-major order (no bit-identity contract
        # above the plain-set threshold, but determinism still holds).
        for idx in sorted(self._shards):
            yield from sorted(self._shards[idx])

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards.values())

    def __sub__(self, other) -> Set[int]:
        return set(self) - set(other)

    def __eq__(self, other) -> bool:
        if isinstance(other, (set, frozenset, ShardedCopyset)):
            return set(self) == set(other)
        return NotImplemented

    def __hash__(self) -> None:  # pragma: no cover - mutable container
        raise TypeError("ShardedCopyset is unhashable")

    def bytes_used(self) -> int:
        return (COPYSET_ENTRY_BYTES * len(self)
                + _SHARD_OVERHEAD_BYTES * len(self._shards))


def make_copyset(n_nodes: int):
    """The capacity-honest copyset for an ``n_nodes``-wide directory."""
    if n_nodes <= PLAIN_COPYSET_MAX:
        return set()
    return ShardedCopyset()


def copyset_bytes(sharers) -> int:
    """Modeled storage bytes of a copyset of either representation."""
    if isinstance(sharers, ShardedCopyset):
        return sharers.bytes_used()
    return COPYSET_ENTRY_BYTES * len(sharers)


@dataclass
class DirEntry:
    """Home-side directory state for one block."""

    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    busy: bool = False
    pending: Deque[Message] = field(default_factory=deque)


@register
class SCProtocol(CoherenceProtocol):
    name = "sc"
    uses_notices = False
    touch_on_load = True  # a touch is a load or a store for SC

    def __init__(self, machine):
        super().__init__(machine)
        #: home-side directory, keyed by block (only the home node's
        #: handlers touch an entry, so a single dict is safe)
        self.dir: Dict[int, DirEntry] = {}
        #: (node, block) faults currently awaiting their data reply
        self._inflight: Set[tuple] = set()
        #: in-flight faults that an invalidation raced past
        self._poisoned: Set[tuple] = set()
        #: recalls that raced a pending grant: (node, block) -> [msgs]
        self._deferred_recalls: Dict[tuple, list] = {}
        #: (node, block) pairs between a poisoned/deferred install and
        #: its zero-delay _apply_deferred tick (the one window where a
        #: freshly installed tag is already scheduled to drop; external
        #: state checkers must treat these blocks as in transaction)
        self._settling: Set[tuple] = set()
        #: (node, block) pairs where the node knows it holds authoritative
        #: ownership (set at write-grant install, cleared when a recall
        #: is served) -- lets a recall be served immediately even while
        #: an unrelated fault for the same block is in flight, which
        #: breaks the home-waits-for-us / we-wait-for-home cycle
        self._owned: Set[tuple] = set()

    def _register_handlers(self) -> None:
        self._register_common()
        self._handlers.update(
            {
                "read_req": self._h_read_req,
                "write_req": self._h_write_req,
                "read_reply": self._h_data_reply,
                "write_reply": self._h_data_reply,
                "upgrade_reply": self._h_generic_ack,
                "recall_ro": self._h_recall_ro,
                "recall_inv": self._h_recall_inv,
                "writeback": self._h_writeback,
                "inval": self._h_inval,
                "inval_ack": self._h_inval_ack,
            }
        )

    def on_place(self, block: int, home_id: int) -> None:
        """Init-phase touches leave the home owning its placed blocks
        exclusively: home-memory writes never fault (Stache semantics,
        and the reason LU's Table 3 shows zero write faults).

        Re-placement (a block spanning two regions placed to different
        nodes -- e.g. an unaligned partition boundary) revokes the
        previous home's access."""
        for n in self.m.nodes:
            if n.id != home_id:
                n.access.invalidate(block)
                self._owned.discard((n.id, block))
        e = self._entry(block)
        e.owner = home_id
        e.sharers.clear()
        self._owned.add((home_id, block))
        self.m.nodes[home_id].access.set_tag(block, RW)


    def _entry(self, block: int) -> DirEntry:
        e = self.dir.get(block)
        if e is None:
            e = DirEntry(sharers=make_copyset(self.params.n_nodes))
            self.dir[block] = e
        return e

    # ==================================================================
    # application-side fault handling
    # ==================================================================
    def read_fault(self, node, block: int) -> Generator:
        yield from self.maybe_claim_first_touch(node.id, block, store=False)
        if self.home.home_or_static(block) == node.id:
            # Home-memory accesses are classified as local re-opens --
            # the paper's fault tables count faults taken on *cached*
            # remote data, which is why LU and Ocean-Original report
            # zero write faults (their writes are all home-local) even
            # though the home's tag still toggles and the directory
            # still invalidates/recalls remote copies (costs modeled).
            self.stats.record_local_reopen(node.id)
            yield from self._local_home_fault(node, block, write=False)
            return
        self.stats.record_read_fault(node.id)
        fut = Future(self.engine)
        key = (node.id, block)
        self._poisoned.discard(key)
        self._inflight.add(key)
        self.send(
            node.id,
            self.route_home(node.id, block),
            "read_req",
            block=block,
            reply_to=fut,
        )
        reply = yield from node.wait(fut, "fault_wait_us")
        self._install_reply(node, block, reply, RO)

    def write_fault(self, node, block: int) -> Generator:
        yield from self.maybe_claim_first_touch(node.id, block, store=True)
        if self.home.home_or_static(block) == node.id:
            self.stats.record_local_reopen(node.id)
            yield from self._local_home_fault(node, block, write=True)
            return
        self.stats.record_write_fault(node.id)
        fut = Future(self.engine)
        key = (node.id, block)
        self._poisoned.discard(key)
        self._inflight.add(key)
        self.send(
            node.id,
            self.route_home(node.id, block),
            "write_req",
            block=block,
            reply_to=fut,
        )
        reply = yield from node.wait(fut, "fault_wait_us")
        self._install_reply(node, block, reply, RW)

    def _install_reply(self, node, block: int, reply: dict, tag: int) -> None:
        if tag == RW:
            self._owned.add((node.id, block))
        self.home.learn(node.id, block, reply["home"])
        data = reply.get("data")
        if data is not None:
            node.store.install(block, data)
        key = (node.id, block)
        self._inflight.discard(key)
        node.access.set_tag(block, tag)
        # Forward-progress rule: the access that faulted always
        # completes under this grant.  The runtime copies its bytes for
        # this block synchronously in the same engine callback as this
        # install, so effects of racing invalidations/recalls are
        # deferred by one zero-delay tick -- by then the access is done
        # and dropping the tag merely forces the *next* access to
        # re-fault (no data is lost: tags gate access, the local store
        # keeps the bytes, and the home still records us as owner).
        poisoned = key in self._poisoned
        if poisoned:
            self._poisoned.discard(key)
        deferred = self._deferred_recalls.pop(key, None)
        if poisoned or deferred:
            self._settling.add(key)
            self.engine.post(
                0.0, self._apply_deferred, node, block, poisoned, deferred or []
            )

    def _apply_deferred(self, node, block: int, poisoned: bool, recalls) -> None:
        self._settling.discard((node.id, block))
        if poisoned and not recalls:
            # A stale invalidation raced the grant: honor it late.  The
            # copy we installed was valid at the home's serialization
            # point of this access, so the access that just completed
            # with it is linearizable.
            if node.access.invalidate(block):
                self.stats.invalidations += 1
        for recall in recalls:
            if recall.mtype == "recall_ro":
                self._h_recall_ro(node, recall)
            else:
                self._h_recall_inv(node, recall)

    def _local_home_fault(self, node, block: int, write: bool) -> Generator:
        """The home node itself faulted: run the directory transaction
        through the node-local message path (cheap, no wire)."""
        fut = Future(self.engine)
        key = (node.id, block)
        self._poisoned.discard(key)
        self._inflight.add(key)
        mtype = "write_req" if write else "read_req"
        self.send(node.id, node.id, mtype, block=block, reply_to=fut)
        reply = yield from node.wait(fut, "fault_wait_us")
        self._install_reply(node, block, reply, RW if write else RO)

    # ==================================================================
    # home-side directory transactions
    # ==================================================================
    def _h_read_req(self, node, msg: Message) -> None:
        if self.forward_if_not_home(node, msg):
            return
        e = self._entry(msg.block)
        if e.busy:
            e.pending.append(msg)
            return
        self._start_read(node, msg, e)

    def _start_read(self, node, msg: Message, e: DirEntry) -> None:
        requester, _ = self.requester_of(msg)
        block = msg.block
        if e.owner == requester:
            # The owner re-faulted (its tag was dropped by a stale
            # invalidation that raced an earlier reply).  Its local copy
            # is the authoritative one -- regrant without data.
            if requester == node.id:
                msg.reply_to.resolve({"home": node.id, "data": None})
            else:
                self.send(node.id, requester, "upgrade_reply", block=block,
                          payload={"home": node.id, "data": None},
                          reply_to=msg.reply_to)
            self._complete_transaction(node, e)
            return
        if e.owner is not None:
            # Recall the exclusive copy: owner writes back and keeps a
            # read-only copy (downgrade), then we serve from home memory.
            e.busy = True
            self.send(
                node.id,
                e.owner,
                "recall_ro",
                block=block,
                payload={"pending": msg},
                cost=self.params.handler_base_us + self.params.tag_change_us,
            )
            return
        self._finish_read(node, msg, e)

    def _finish_read(self, node, msg: Message, e: DirEntry) -> None:
        requester, _ = self.requester_of(msg)
        block = msg.block
        e.sharers.add(requester)
        if requester == node.id:
            # Home's own read: master copy is already local.
            msg.reply_to.resolve({"home": node.id, "data": None})
        else:
            self.send(
                node.id,
                requester,
                "read_reply",
                size=HEADER_BYTES + self.params.granularity,
                block=block,
                payload={"home": node.id, "data": node.store.snapshot(block)},
                cost=self.data_reply_cost(),
                reply_to=msg.reply_to,
            )
        self._complete_transaction(node, e)

    def _h_write_req(self, node, msg: Message) -> None:
        if self.forward_if_not_home(node, msg):
            return
        e = self._entry(msg.block)
        if e.busy:
            e.pending.append(msg)
            return
        self._start_write(node, msg, e)

    def _start_write(self, node, msg: Message, e: DirEntry) -> None:
        requester, _ = self.requester_of(msg)
        block = msg.block
        if e.owner is not None and e.owner != requester:
            e.busy = True
            self.send(
                node.id,
                e.owner,
                "recall_inv",
                block=block,
                payload={"pending": msg},
                cost=self.params.handler_base_us + self.params.tag_change_us,
            )
            return
        # Invalidate every reader other than the requester (the home's
        # own copy is represented by its tag like any sharer's).
        targets = [s for s in e.sharers if s != requester]
        if targets:
            e.busy = True
            latch = CountdownLatch(self.engine, len(targets))
            for t in targets:
                self.send(
                    node.id,
                    t,
                    "inval",
                    block=block,
                    payload={"latch": latch},
                    cost=self.params.handler_base_us + self.params.tag_change_us,
                )
            latch.add_callback(lambda _: self._grant_write(node, msg, e))
            return
        self._grant_write(node, msg, e)

    def _grant_write(self, node, msg: Message, e: DirEntry) -> None:
        requester, _payload = self.requester_of(msg)
        block = msg.block
        # Only home-side state decides whether the requester's copy is
        # current: a stale "I have a read-only copy" hint from the
        # requester could have been invalidated while the request was
        # in flight.
        had_copy = requester in e.sharers or e.owner == requester
        e.sharers.clear()
        e.owner = requester
        if requester == node.id:
            # Home upgrades its own copy.
            msg.reply_to.resolve({"home": node.id, "data": None})
        elif had_copy:
            # Upgrade: requester already holds current data.
            self.send(
                node.id,
                requester,
                "upgrade_reply",
                block=block,
                payload={"home": node.id, "data": None},
                reply_to=msg.reply_to,
            )
        else:
            self.send(
                node.id,
                requester,
                "write_reply",
                size=HEADER_BYTES + self.params.granularity,
                block=block,
                payload={"home": node.id, "data": node.store.snapshot(block)},
                cost=self.data_reply_cost(),
                reply_to=msg.reply_to,
            )
        # Home memory is stale while an owner exists; the home's own
        # access tag must drop unless the home is the new owner.
        if requester != node.id:
            if node.access.invalidate(block):
                self.stats.invalidations += 1
        self._complete_transaction(node, e)

    def _complete_transaction(self, node, e: DirEntry) -> None:
        e.busy = False
        if e.pending:
            nxt = e.pending.popleft()
            if nxt.mtype == "read_req":
                self._start_read(node, nxt, e)
            else:
                self._start_write(node, nxt, e)

    # ==================================================================
    # remote-side coherence actions
    # ==================================================================
    def _recall_must_defer(self, node, block: int) -> bool:
        """Defer only when the recalled ownership is still in flight to
        us (we are not yet owner).  If we already own the block, our
        store is authoritative regardless of any unrelated in-flight
        fault, and deferring could deadlock (our fault may be queued at
        the home behind the very transaction awaiting this recall)."""
        key = (node.id, block)
        if key in self._owned:
            # Serve now; whatever fault is in flight must not leave a
            # stale tag behind once it installs.
            if key in self._inflight:
                self._poisoned.add(key)
            return False
        return key in self._inflight

    def _h_recall_ro(self, node, msg: Message) -> None:
        """Owner downgrades RW -> RO and writes the data back home."""
        block = msg.block
        if self._recall_must_defer(node, block):
            # The recall overtook the grant that made us owner; act on
            # it right after the grant installs (see _install_reply).
            self._deferred_recalls.setdefault((node.id, block), []).append(msg)
            return
        self._owned.discard((node.id, block))
        node.access.downgrade(block)
        self.stats.writebacks += 1
        self.send(
            node.id,
            msg.src,
            "writeback",
            size=HEADER_BYTES + self.params.granularity,
            block=block,
            payload={
                "data": node.store.snapshot(block),
                "pending": msg.payload["pending"],
                "keep_sharer": True,
                "from": node.id,
            },
            cost=self.data_reply_cost(),
        )

    def _h_recall_inv(self, node, msg: Message) -> None:
        """Owner writes back and invalidates (write request elsewhere)."""
        block = msg.block
        if self._recall_must_defer(node, block):
            self._deferred_recalls.setdefault((node.id, block), []).append(msg)
            return
        self._owned.discard((node.id, block))
        if node.access.invalidate(block):
            self.stats.invalidations += 1
        self.stats.writebacks += 1
        self.send(
            node.id,
            msg.src,
            "writeback",
            size=HEADER_BYTES + self.params.granularity,
            block=block,
            payload={
                "data": node.store.snapshot(block),
                "pending": msg.payload["pending"],
                "keep_sharer": False,
                "from": node.id,
            },
            cost=self.data_reply_cost(),
        )

    def _h_writeback(self, node, msg: Message) -> None:
        """Home absorbs a recalled copy, then continues the transaction."""
        e = self._entry(msg.block)
        payload = msg.payload
        node.store.install(msg.block, payload["data"])
        old_owner = payload["from"]
        e.owner = None
        if payload["keep_sharer"]:
            e.sharers.add(old_owner)
        pending: Message = payload["pending"]
        e.busy = False
        if pending.mtype == "read_req":
            self._start_read(node, pending, e)
        else:
            self._start_write(node, pending, e)

    def _h_inval(self, node, msg: Message) -> None:
        """A sharer drops its read-only copy and acknowledges.

        RW copies never see 'inval' (owners get recalls), so no data
        moves here.
        """
        if node.access.invalidate(msg.block):
            self.stats.invalidations += 1
        key = (node.id, msg.block)
        if key in self._inflight:
            self._poisoned.add(key)
        self.send(
            node.id,
            msg.src,
            "inval_ack",
            block=msg.block,
            payload={"latch": msg.payload["latch"]},
        )

    def _h_inval_ack(self, node, msg: Message) -> None:
        msg.payload["latch"].hit()

    def _h_data_reply(self, node, msg: Message) -> None:
        msg.reply_to.resolve(msg.payload)
