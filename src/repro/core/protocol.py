"""Coherence-protocol base class: fault entry points, home routing with
first-touch claims and stale-hint forwarding, and the synchronization
hooks that let the lock/barrier services piggyback protocol actions.

Contract
--------
The DSM runtime calls, from the application process (generators):

* ``read_fault(node, block)`` / ``write_fault(node, block)`` when an
  access-control check misses.  On return the block's tag permits the
  access and the node's local copy holds correct data.
* ``release_prepare(node)`` before a lock release / barrier arrival
  (HLRC flushes diffs here; LRC protocols close the current interval).
* ``apply_sync(node, payload)`` after a lock grant / barrier release
  delivered ``payload`` (LRC protocols apply write notices, possibly
  flushing dirty blocks first).

The machine calls ``on_message(node, msg)`` from the handler context
for every protocol message type the subclass registered.

Sub-classes: :class:`~repro.core.sc.SCProtocol`,
:class:`~repro.core.swlrc.SWLRCProtocol`,
:class:`~repro.core.hlrc.HLRCProtocol`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.core import registry as _registry
from repro.net.message import CONTROL_BYTES, HEADER_BYTES, Message
from repro.sim.process import Future


class CoherenceProtocol:
    """Shared plumbing for the three protocols."""

    name = "base"
    #: consistency contract for the model checker's litmus catalog:
    #: "sc" (every outcome sequentially consistent) or "lrc" (writes
    #: propagate at synchronization).  Registered alongside the class.
    memory_model = "sc"
    #: True for the LRC protocols: locks/barriers carry write notices
    uses_notices = False
    #: does a load claim an untouched block's home (SC: yes; LRC: no --
    #: the paper says a "touch" is a store for HLRC)
    touch_on_load = False

    def __init__(self, machine):
        self.m = machine
        self.engine = machine.engine
        self.params = machine.params
        self.stats = machine.stats
        self.home = machine.home
        #: optional invariant sanitizer (repro.check); called after
        #: every handled message.  None keeps the dispatch hot path a
        #: single attribute test.
        self.checker = None
        self._handlers: Dict[str, Callable] = {}
        self._register_handlers()

    # ------------------------------------------------------------------
    # subclass registration
    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        """Populate self._handlers: mtype -> bound method."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # messaging helpers
    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        mtype: str,
        *,
        size: int = HEADER_BYTES + CONTROL_BYTES,
        block: int = -1,
        payload: Any = None,
        cost: Optional[float] = None,
        reply_to: Optional[Future] = None,
    ) -> None:
        msg = Message(
            src=src,
            dst=dst,
            mtype=mtype,
            size_bytes=size,
            block=block,
            payload=payload,
            handle_cost_us=self.params.handler_base_us if cost is None else cost,
            reply_to=reply_to,
        )
        self.m.send(msg)

    def data_reply_cost(self) -> float:
        """Handler cost of receiving a whole-block data message."""
        p = self.params
        return p.handler_base_us + p.copy_per_byte_us * p.granularity

    # ------------------------------------------------------------------
    # home routing
    # ------------------------------------------------------------------
    def route_home(self, node_id: int, block: int) -> int:
        """Where this node should send a home-directed request."""
        return self.home.route_target(node_id, block)

    def forward_if_not_home(self, node, msg: Message) -> bool:
        """Receiver-side: if we are not the block's home, forward the
        request to the real home (one extra hop) and return True.

        Used by home-directed request handlers; the eventual reply
        teaches the requester the real home.
        """
        actual = self.home.home_or_static(msg.block)
        if actual == node.id:
            return False
        self.stats.forwarded_requests += 1
        requester, inner = self.requester_of(msg)
        # The forward physically leaves *this* node; the original
        # requester travels inside the payload so the eventual reply
        # goes straight back to it (and teaches it the real home).
        fwd = Message(
            src=node.id,
            dst=actual,
            mtype=msg.mtype,
            size_bytes=msg.size_bytes,
            block=msg.block,
            payload={"__fwd_src": requester, "inner": inner},
            handle_cost_us=msg.handle_cost_us,
            reply_to=msg.reply_to,
        )
        self.m.send(fwd)
        return True

    @staticmethod
    def requester_of(msg: Message) -> Tuple[int, Any]:
        """Unwrap a possibly-forwarded request: (requester, payload)."""
        if isinstance(msg.payload, dict) and "__fwd_src" in msg.payload:
            return msg.payload["__fwd_src"], msg.payload["inner"]
        return msg.src, msg.payload

    def maybe_claim_first_touch(self, node_id: int, block: int, store: bool) -> Generator:
        """First-touch home migration for unclaimed blocks (Section 2).

        A generator run in the app context: claiming a block whose
        static home is remote costs one control round trip to update
        the distributed home table.
        """
        if self.home.is_claimed(block):
            return
        if not store and not self.touch_on_load:
            # Loads do not claim under the LRC protocols; the static
            # home will claim the block for itself when the read
            # request arrives there.
            return
        self.home.claim_first_touch(block, node_id)
        self.home.learn(node_id, block, node_id)
        static = self.home.static_home(block)
        if static != node_id:
            # Tell the static home where the block now lives.
            fut = Future(self.engine)
            self.send(
                node_id,
                static,
                "home_claim",
                block=block,
                payload={"new_home": node_id},
                reply_to=fut,
            )
            node = self.m.nodes[node_id]
            yield from node.wait(fut, "fault_wait_us")

    def _h_home_claim(self, node, msg: Message) -> None:
        requester, payload = self.requester_of(msg)
        # The static home records the migration in its local cache so
        # it can forward later requests.
        self.home.learn(node.id, msg.block, payload["new_home"])
        if msg.reply_to is not None:
            self.send(node.id, requester, "home_claim_ack", block=msg.block,
                      reply_to=msg.reply_to)

    @staticmethod
    def _h_generic_ack(node, msg: Message) -> None:
        if msg.reply_to is not None:
            msg.reply_to.resolve(msg.payload)

    def _register_common(self) -> None:
        self._handlers["home_claim"] = self._h_home_claim
        self._handlers["home_claim_ack"] = self._h_generic_ack

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def on_message(self, node, msg: Message) -> None:
        handler = self._handlers.get(msg.mtype)
        if handler is None:
            raise KeyError(f"{self.name}: no handler for message type {msg.mtype!r}")
        handler(node, msg)
        if self.checker is not None:
            self.checker.after_message(self, node, msg)

    def on_place(self, block: int, home_id: int) -> None:
        """Setup-time hook: a block was declaratively placed at a home
        (models the init-phase first touch).  Protocols initialize the
        home's access tag / directory state here."""

    # ------------------------------------------------------------------
    # fault entry points (app context)
    # ------------------------------------------------------------------
    def read_fault(self, node, block: int) -> Generator:
        raise NotImplementedError

    def write_fault(self, node, block: int) -> Generator:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # synchronization hooks (SC: all trivial)
    # ------------------------------------------------------------------
    def release_prepare(self, node) -> Generator:
        """Run in app context immediately before a release is visible."""
        return
        yield  # pragma: no cover - makes this a generator

    def grant_payload(self, granter_id: int, acq_vt) -> Tuple[Any, int]:
        """Payload attached to a lock grant and its notice count."""
        return None, 0

    def barrier_payloads(self, vts: Dict[int, Any]) -> Dict[int, Tuple[Any, int]]:
        """Per-node tailored release payloads for a barrier.

        ``vts`` maps node -> the vector timestamp it sent at arrival
        (None under SC).  Returns node -> (payload, notice_count).
        """
        return {n: (None, 0) for n in vts}

    def current_vt(self, node_id: int):
        """The node's vector timestamp (None for SC)."""
        return None

    def apply_sync(self, node, payload) -> Generator:
        """Run in app context after a grant/barrier-release delivered
        ``payload``: apply write notices (LRC), flush conflicting dirty
        blocks, merge timestamps."""
        return
        yield  # pragma: no cover


#: live name -> class view over the registry (legacy alias; the
#: authoritative store is repro.core.registry, filled in by the
#: @register decorations the repro.core.__init__ imports trigger)
PROTOCOLS: Dict[str, type] = _registry.CLASSES


def register(cls) -> type:
    """Class decorator: register ``cls`` under its ``name`` attribute,
    carrying its declared memory model and notice usage into the
    registry metadata."""
    return _registry.register_protocol(
        cls.name, cls,
        memory_model=cls.memory_model,
        uses_notices=cls.uses_notices,
    )


def make_protocol(name: str, machine) -> CoherenceProtocol:
    return _registry.get_protocol(name)(machine)
