"""The protocol registry: one string -> implementation mapping.

Before this module existed the name -> class mapping was duplicated as
literal lists across ``cluster/machine.py``, ``harness/matrix.py``,
``harness/cli.py`` and ``mc/litmus.py``; adding a protocol meant
touching all four.  Now every protocol -- the paper's three, the
extension protocols (dc/erc), the ``tardis`` timestamp-lease protocol
and the deliberately-broken model-checker canary -- registers itself
here at class-definition time, and every consumer derives its choices
from the registry.

Each entry also carries the two pieces of *metadata* consumers need
without instantiating the class:

* ``memory_model`` -- the consistency contract the protocol implements
  (``"sc"`` or ``"lrc"``); the model checker's litmus catalog selects
  allowed-outcome sets by this, not by protocol name.
* ``uses_notices`` -- whether synchronization messages carry vector
  timestamps and write notices (sizes the lock/barrier wire messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: consistency contracts a protocol may declare
MEMORY_MODELS = ("sc", "lrc")

#: the paper's evaluated trio, in paper (Figure 1) column order
PAPER_PROTOCOLS: Tuple[str, ...] = ("sc", "swlrc", "hlrc")


@dataclass(frozen=True)
class ProtocolInfo:
    """One registered protocol: implementation class plus the metadata
    consumers (CLI, model checker, sync services) select behavior by."""

    name: str
    cls: type
    memory_model: str
    uses_notices: bool


_REGISTRY: Dict[str, ProtocolInfo] = {}

#: live name -> class view (kept in lock-step with the registry; the
#: legacy ``repro.core.protocol.PROTOCOLS`` name aliases this dict)
CLASSES: Dict[str, type] = {}


def register_protocol(name: str, cls: type, *, memory_model: str,
                      uses_notices: bool) -> type:
    """Register a protocol implementation under ``name``.

    Re-registration under the same name replaces the entry (the broken
    canary intentionally shadows nothing, but tests re-import modules).
    Returns ``cls`` so the call composes with decorators.
    """
    if memory_model not in MEMORY_MODELS:
        raise ValueError(
            f"protocol {name!r} declares memory model {memory_model!r}; "
            f"must be one of {MEMORY_MODELS}"
        )
    _REGISTRY[name] = ProtocolInfo(
        name=name, cls=cls, memory_model=memory_model,
        uses_notices=uses_notices,
    )
    CLASSES[name] = cls
    return cls


def _ensure_populated() -> None:
    # Protocols register at class-definition time; importing the core
    # package defines the standard set.  Consumers may query the
    # registry before anything imported repro.core (the CLI does).
    if not _REGISTRY:
        import repro.core  # noqa: F401  (populates via @register)


def protocol_info(name: str) -> ProtocolInfo:
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def get_protocol(name: str) -> type:
    """The implementation class registered under ``name``."""
    return protocol_info(name).cls


def available_protocols() -> Tuple[str, ...]:
    """All registered protocol names, sorted."""
    _ensure_populated()
    return tuple(sorted(_REGISTRY))


def memory_model_of(name: str) -> str:
    """The consistency contract ``name`` declares ("sc" or "lrc")."""
    return protocol_info(name).memory_model


def evaluated_protocols() -> Tuple[str, ...]:
    """The paper's three evaluated protocols, validated against the
    registry (paper order, not sorted)."""
    _ensure_populated()
    missing = [p for p in PAPER_PROTOCOLS if p not in _REGISTRY]
    if missing:
        raise RuntimeError(f"paper protocols not registered: {missing}")
    return PAPER_PROTOCOLS


def scaling_protocols() -> Tuple[str, ...]:
    """The four protocols the node-count scaling study compares: the
    paper trio plus the O(1)-metadata timestamp-lease protocol."""
    base = evaluated_protocols()
    return base + ("tardis",) if "tardis" in _REGISTRY else base
