"""The coherence protocols: the paper's three, plus extensions.

* :class:`~repro.core.sc.SCProtocol` -- sequential consistency
  (Stache-style home-based directory with recall/invalidate).
* :class:`~repro.core.swlrc.SWLRCProtocol` -- single-writer lazy
  release consistency (versioned blocks, ownership migration, acquire-
  time invalidation from write notices, one-hop read service).
* :class:`~repro.core.hlrc.HLRCProtocol` -- home-based multiple-writer
  lazy release consistency (twin/diff, eager flush to home at release,
  whole-block fetch on miss).

Extensions beyond the paper:

* :class:`~repro.core.delayed.DelayedSCProtocol` (``dc``) and
  :class:`~repro.core.erc.ERCProtocol` (``erc``) -- the sensitivity-
  study protocols;
* :class:`~repro.core.tardis.TardisProtocol` (``tardis``) --
  timestamp-lease coherence with O(1) per-block metadata (no
  directories, no vector clocks, no invalidations), the scaling
  study's fourth protocol.

All of them share the message-routing/home-forwarding helpers in
:mod:`repro.core.protocol`; the LRC protocols additionally share the
interval/vector-timestamp machinery in :mod:`repro.core.timestamps`.
Importing this package registers every protocol with
:mod:`repro.core.registry`, the single name -> implementation mapping
consumers (CLI, harness, model checker) derive their choices from.
"""

from repro.core.protocol import PROTOCOLS, CoherenceProtocol, make_protocol
from repro.core.registry import (
    available_protocols,
    get_protocol,
    memory_model_of,
    register_protocol,
)
from repro.core.sc import SCProtocol
from repro.core.swlrc import SWLRCProtocol
from repro.core.hlrc import HLRCProtocol
from repro.core.delayed import DelayedSCProtocol
from repro.core.erc import ERCProtocol
from repro.core.tardis import TardisProtocol

__all__ = [
    "CoherenceProtocol",
    "SCProtocol",
    "SWLRCProtocol",
    "HLRCProtocol",
    "DelayedSCProtocol",
    "ERCProtocol",
    "TardisProtocol",
    "PROTOCOLS",
    "make_protocol",
    "register_protocol",
    "get_protocol",
    "available_protocols",
    "memory_model_of",
]
