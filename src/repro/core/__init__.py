"""The paper's primary contribution: the three coherence protocols.

* :class:`~repro.core.sc.SCProtocol` -- sequential consistency
  (Stache-style home-based directory with recall/invalidate).
* :class:`~repro.core.swlrc.SWLRCProtocol` -- single-writer lazy
  release consistency (versioned blocks, ownership migration, acquire-
  time invalidation from write notices, one-hop read service).
* :class:`~repro.core.hlrc.HLRCProtocol` -- home-based multiple-writer
  lazy release consistency (twin/diff, eager flush to home at release,
  whole-block fetch on miss).

All three share the interval/vector-timestamp machinery in
:mod:`repro.core.timestamps` (only the LRC protocols use it) and the
message-routing/home-forwarding helpers in
:mod:`repro.core.protocol`.
"""

from repro.core.protocol import PROTOCOLS, CoherenceProtocol, make_protocol
from repro.core.sc import SCProtocol
from repro.core.swlrc import SWLRCProtocol
from repro.core.hlrc import HLRCProtocol
from repro.core.delayed import DelayedSCProtocol
from repro.core.erc import ERCProtocol

__all__ = [
    "CoherenceProtocol",
    "SCProtocol",
    "SWLRCProtocol",
    "HLRCProtocol",
    "DelayedSCProtocol",
    "ERCProtocol",
    "PROTOCOLS",
    "make_protocol",
]
