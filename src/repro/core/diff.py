"""Twin/diff machinery for the multiple-writer HLRC protocol.

Before the first write to a block in an interval, the writer snapshots
a *twin* (clean copy).  At release time the dirty copy is word-compared
against the twin; the changed runs form a *diff* which is shipped to
the block's home and applied there.  Diffs from concurrent writers to
disjoint words compose; overlapping concurrent writes are a data race
the programming model excludes (and our tests exercise anyway to pin
last-applier-wins behavior).

Diff runs are computed with vectorized numpy (flatnonzero over the
byte-inequality mask) -- this is the hot path of the HLRC simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: per-run encoding overhead on the wire (offset + length words)
RUN_HEADER_BYTES = 4


@dataclass(slots=True)
class Diff:
    """The changed byte runs of one block."""

    block: int
    #: list of (offset, data) runs, offsets ascending, non-adjacent
    runs: List[Tuple[int, np.ndarray]]

    @property
    def payload_bytes(self) -> int:
        """Bytes of changed data (the paper's 'diff size')."""
        return sum(len(d) for _, d in self.runs)

    @property
    def wire_bytes(self) -> int:
        """Encoded size on the wire."""
        return self.payload_bytes + RUN_HEADER_BYTES * len(self.runs)

    @property
    def empty(self) -> bool:
        return not self.runs


def create_diff(block: int, dirty: np.ndarray, twin: np.ndarray) -> Diff:
    """Compare a dirty copy against its twin and extract changed runs."""
    if dirty.shape != twin.shape:
        raise ValueError("dirty/twin shape mismatch")
    neq = dirty != twin
    idx = np.flatnonzero(neq)
    runs: List[Tuple[int, np.ndarray]] = []
    if idx.size:
        # Split the changed-byte indices into maximal contiguous runs.
        breaks = np.flatnonzero(np.diff(idx) > 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [idx.size - 1]))
        for s, e in zip(starts, ends):
            lo = int(idx[s])
            hi = int(idx[e]) + 1
            runs.append((lo, dirty[lo:hi].copy()))
    return Diff(block=block, runs=runs)


def apply_diff(target: np.ndarray, diff: Diff) -> int:
    """Apply a diff's runs to a block copy; returns bytes written."""
    written = 0
    n = len(target)
    for off, data in diff.runs:
        if off < 0 or off + len(data) > n:
            raise ValueError(
                f"diff run [{off}, {off + len(data)}) outside block of {n} bytes"
            )
        target[off : off + len(data)] = data
        written += len(data)
    return written
