"""Twin/diff machinery for the multiple-writer HLRC protocol.

Before the first write to a block in an interval, the writer snapshots
a *twin* (clean copy).  At release time the dirty copy is word-compared
against the twin; the changed runs form a *diff* which is shipped to
the block's home and applied there.  Diffs from concurrent writers to
disjoint words compose; overlapping concurrent writes are a data race
the programming model excludes (and our tests exercise anyway to pin
last-applier-wins behavior).

Run extraction is the hot path of the HLRC simulation and lives in
:mod:`repro.simcore` -- a whole-buffer memcmp plus ``flatnonzero``-style
splitting under the fast backend, an equivalent word-scan under the
pure-python fallback.  Both produce identical run boundaries and bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.simcore import diff_runs

#: per-run encoding overhead on the wire (offset + length words)
RUN_HEADER_BYTES = 4


@dataclass(slots=True)
class Diff:
    """The changed byte runs of one block."""

    block: int
    #: list of (offset, data) runs, offsets ascending, non-adjacent;
    #: data is a byte buffer of the active simcore backend
    runs: List[Tuple[int, Sequence[int]]]

    @property
    def payload_bytes(self) -> int:
        """Bytes of changed data (the paper's 'diff size')."""
        return sum(len(d) for _, d in self.runs)

    @property
    def wire_bytes(self) -> int:
        """Encoded size on the wire."""
        return self.payload_bytes + RUN_HEADER_BYTES * len(self.runs)

    @property
    def empty(self) -> bool:
        return not self.runs


def create_diff(block: int, dirty, twin) -> Diff:
    """Compare a dirty copy against its twin and extract changed runs."""
    if len(dirty) != len(twin):
        raise ValueError("dirty/twin shape mismatch")
    return Diff(block=block, runs=diff_runs(dirty, twin))


def apply_diff(target, diff: Diff) -> int:
    """Apply a diff's runs to a block copy; returns bytes written."""
    written = 0
    n = len(target)
    for off, data in diff.runs:
        size = len(data)
        end = off + size
        if off < 0 or end > n:
            raise ValueError(
                f"diff run [{off}, {end}) outside block of {n} bytes"
            )
        if isinstance(data, (bytes, bytearray)) and not isinstance(target, bytearray):
            # bytes runs applied to a foreign buffer target (a numpy
            # array in mixed test environments): numpy would *parse*
            # digit-looking bytes as an int literal, so route the copy
            # through a byte view instead of slice assignment.
            memoryview(target).cast("B")[off:end] = data
        else:
            target[off:end] = data
        written += size
    return written
