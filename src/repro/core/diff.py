"""Twin/diff machinery for the multiple-writer HLRC protocol.

Before the first write to a block in an interval, the writer snapshots
a *twin* (clean copy).  At release time the dirty copy is word-compared
against the twin; the changed runs form a *diff* which is shipped to
the block's home and applied there.  Diffs from concurrent writers to
disjoint words compose; overlapping concurrent writes are a data race
the programming model excludes (and our tests exercise anyway to pin
last-applier-wins behavior).

Diff runs are computed with vectorized numpy (flatnonzero over the
byte-inequality mask) -- this is the hot path of the HLRC simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: per-run encoding overhead on the wire (offset + length words)
RUN_HEADER_BYTES = 4


@dataclass(slots=True)
class Diff:
    """The changed byte runs of one block."""

    block: int
    #: list of (offset, data) runs, offsets ascending, non-adjacent
    runs: List[Tuple[int, np.ndarray]]

    @property
    def payload_bytes(self) -> int:
        """Bytes of changed data (the paper's 'diff size')."""
        return sum(len(d) for _, d in self.runs)

    @property
    def wire_bytes(self) -> int:
        """Encoded size on the wire."""
        return self.payload_bytes + RUN_HEADER_BYTES * len(self.runs)

    @property
    def empty(self) -> bool:
        return not self.runs


def create_diff(block: int, dirty: np.ndarray, twin: np.ndarray) -> Diff:
    """Compare a dirty copy against its twin and extract changed runs."""
    if dirty.shape != twin.shape:
        raise ValueError("dirty/twin shape mismatch")
    # Fast path: unchanged block (write fault taken, same bytes stored
    # back).  A memoryview compare is a single C memcmp for the
    # contiguous uint8 blocks the storage layer hands us -- much
    # cheaper than materializing the inequality mask.
    if dirty.data == twin.data:
        return Diff(block=block, runs=[])
    idx = np.flatnonzero(dirty != twin)
    lo = int(idx[0])
    hi = int(idx[-1]) + 1
    if hi - lo == idx.size:
        # Single contiguous run (a sequential sweep over the block):
        # skip the run-splitting machinery entirely.
        return Diff(block=block, runs=[(lo, dirty[lo:hi].copy())])
    runs: List[Tuple[int, np.ndarray]] = []
    # Split the changed-byte indices into maximal contiguous runs.
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    for s, e in zip(starts, ends):
        lo = int(idx[s])
        hi = int(idx[e]) + 1
        runs.append((lo, dirty[lo:hi].copy()))
    return Diff(block=block, runs=runs)


def apply_diff(target: np.ndarray, diff: Diff) -> int:
    """Apply a diff's runs to a block copy; returns bytes written."""
    written = 0
    n = len(target)
    for off, data in diff.runs:
        size = len(data)
        end = off + size
        if off < 0 or end > n:
            raise ValueError(
                f"diff run [{off}, {end}) outside block of {n} bytes"
            )
        target[off:end] = data
        written += size
    return written
