"""Delayed Consistency: the extension the paper names but does not
evaluate ("We have also not examined delayed consistency protocols
that can delay invalidation messages to some extent without using
high-overhead protocol operations at synchronization points",
Section 7; the model is Dubois et al.'s delayed consistency [8]).

The protocol is sequential consistency's state machine with one
receiver-side relaxation: while a node is *computing*, incoming
invalidations and recalls are buffered instead of being processed at
the next poll, and are flushed

* when the node reaches a synchronization point (lock release or
  barrier arrival), or
* after a bounded delay (``DELAY_US``), whichever comes first.

This is exactly the accidental behaviour the paper observes for SC
under the *interrupt* mechanism (Section 5.4: the delayed invalidations
let a processor complete multiple local accesses and damp the
false-sharing ping-pong) -- here made deliberate and available under
polling too.

Because the flush deadline is bounded, the home's ack collection only
ever stretches by ``DELAY_US``; no deadlock is possible.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.core.protocol import register
from repro.core.sc import SCProtocol
from repro.cluster.node import COMPUTE
from repro.net.message import Message


@register
class DelayedSCProtocol(SCProtocol):
    name = "dc"
    #: deferring invalidations opens stale-read windows SC forbids, so
    #: dc only claims the relaxed contract (matches the pre-registry
    #: model_of rule: everything but "sc" maps to "lrc")
    memory_model = "lrc"

    #: bound on how long a coherence action may be deferred
    DELAY_US = 200.0

    def __init__(self, machine):
        super().__init__(machine)
        #: per-node buffered coherence messages awaiting the flush
        self._delayed: Dict[int, List[Message]] = {
            i: [] for i in range(machine.params.n_nodes)
        }
        self._flush_scheduled: Dict[int, bool] = {
            i: False for i in range(machine.params.n_nodes)
        }
        self.delayed_actions = 0

    # ------------------------------------------------------------------
    # deferral plumbing
    # ------------------------------------------------------------------
    def _maybe_delay(self, node, msg: Message) -> bool:
        """Buffer the message if the node is busy computing."""
        if node.cpu.state != COMPUTE:
            return False
        self.delayed_actions += 1
        self._delayed[node.id].append(msg)
        if not self._flush_scheduled[node.id]:
            self._flush_scheduled[node.id] = True
            self.engine.post(self.DELAY_US, self._flush, node)
        return True

    def _flush(self, node) -> None:
        """Process everything buffered for this node."""
        self._flush_scheduled[node.id] = False
        pending, self._delayed[node.id] = self._delayed[node.id], []
        for msg in pending:
            super_handler = {
                "inval": super()._h_inval,
                "recall_ro": super()._h_recall_ro,
                "recall_inv": super()._h_recall_inv,
            }[msg.mtype]
            super_handler(node, msg)

    # ------------------------------------------------------------------
    # deferred message types
    # ------------------------------------------------------------------
    def _h_inval(self, node, msg: Message) -> None:
        if not self._maybe_delay(node, msg):
            super()._h_inval(node, msg)

    def _h_recall_ro(self, node, msg: Message) -> None:
        if not self._maybe_delay(node, msg):
            super()._h_recall_ro(node, msg)

    def _h_recall_inv(self, node, msg: Message) -> None:
        if not self._maybe_delay(node, msg):
            super()._h_recall_inv(node, msg)

    # ------------------------------------------------------------------
    # synchronization points flush eagerly (this is what keeps the
    # model "consistent enough": all deferred actions complete before
    # any synchronization is visible to others)
    # ------------------------------------------------------------------
    def release_prepare(self, node) -> Generator:
        self._flush(node)
        return
        yield  # pragma: no cover - generator protocol
