"""Home-based Lazy Release Consistency (paper Section 2.3).

Multiple concurrent writers are supported through twins and diffs:

* the first write to a block in an interval snapshots a *twin*;
* at release, the dirty copy is compared against the twin and the
  changed runs (the *diff*) are **eagerly sent to the block's home**
  and applied there, keeping the home copy up to date;
* a miss fetches the **whole block** from the home (one round trip);
* write notices propagate with synchronization; at acquire, noticed
  blocks are invalidated unless the node is the writer or the block's
  home (whose copy is always current).

The release waits for diff acknowledgements, which is what makes
synchronization expensive under HLRC -- the effect that dominates
Barnes-Original in Section 5.2.2.

A node that receives a notice for a block it has *dirty* (concurrent
writers under different locks) flushes its own diff before
invalidating, so no local writes are ever lost; the block stays in the
interval's dirty set so the next release still advertises it.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.core.diff import apply_diff, create_diff
from repro.core.lrc_base import LRCBase
from repro.core.protocol import register
from repro.core.timestamps import WriteNotice
from repro.memory.access_control import INV, RO, RW
from repro.net.message import HEADER_BYTES, Message
from repro.sim.process import CountdownLatch, Future


@register
class HLRCProtocol(LRCBase):
    name = "hlrc"

    def __init__(self, machine):
        super().__init__(machine)
        n = machine.params.n_nodes
        #: per-node twins for blocks with unflushed modifications
        self.twins: List[Dict[int, bytearray]] = [dict() for _ in range(n)]
        #: per-node interval counter per block (notice versions)
        self._epoch: List[Dict[int, int]] = [dict() for _ in range(n)]

    def _register_handlers(self) -> None:
        self._register_common()
        self._handlers.update(
            {
                "fetch_req": self._h_fetch_req,
                "fetch_reply": self._h_generic_ack,
                "diff": self._h_diff,
                "diff_ack": self._h_diff_ack,
            }
        )

    # ==================================================================
    # faults (app context)
    # ==================================================================
    def _is_home(self, node_id: int, block: int) -> bool:
        return self.home.home_or_static(block) == node_id

    def on_place(self, block: int, home_id: int) -> None:
        """The home's copy is current by construction, but stays RO so
        the home's own writes are detected (dirty set -> notices).
        Re-placement revokes the previous home's access."""
        for n in self.m.nodes:
            if n.id != home_id:
                n.access.invalidate(block)
        self.m.nodes[home_id].access.set_tag(block, RO)

    def read_fault(self, node, block: int) -> Generator:
        # Loads never claim a home under HLRC; an unclaimed block is
        # claimed by its static home when the fetch arrives there.
        if self._is_home(node.id, block):
            self.stats.record_local_reopen(node.id)
            self.home.claim_first_touch(block, node.id)
            yield self.params.tag_change_us
            node.access.set_tag(block, RO)
            return
        self.stats.record_read_fault(node.id)
        yield from self._fetch(node, block, RO)

    def write_fault(self, node, block: int) -> Generator:
        yield from self.maybe_claim_first_touch(node.id, block, store=True)
        if self._is_home(node.id, block):
            # The home writes its master copy in place; no twin needed,
            # but the write must be advertised at the next release.
            # A cheap local re-open, not a protocol fault (Table 5
            # shows zero write faults for single-writer home data).
            self.stats.record_local_reopen(node.id)
            self.dirty[node.id].add(block)
            yield self.params.tag_change_us
            node.access.set_tag(block, RW)
            return
        self.stats.record_write_fault(node.id)
        if node.access.tag(block) == INV:
            yield from self._fetch(node, block, RO)
        # Twin the clean copy, then open the block for writing.
        if block not in self.twins[node.id]:
            self.twins[node.id][block] = node.store.snapshot(block)
            self.stats.twins_created += 1
            yield (self.params.twin_fixed_us
                   + self.params.twin_per_byte_us * self.params.granularity)
        self.dirty[node.id].add(block)
        node.access.set_tag(block, RW)
        yield self.params.tag_change_us

    def _fetch(self, node, block: int, tag: int) -> Generator:
        """Whole-block fetch from the home."""
        fut = Future(self.engine)
        self.send(
            node.id,
            self.route_home(node.id, block),
            "fetch_req",
            block=block,
            reply_to=fut,
        )
        reply = yield from node.wait(fut, "fault_wait_us")
        self.home.learn(node.id, block, reply["home"])
        node.store.install(block, reply["data"])
        node.access.set_tag(block, tag)

    # ==================================================================
    # release: eager diff flush (app context)
    # ==================================================================
    def _release_flush(self, node) -> Generator:
        p = self.params
        notices: List[WriteNotice] = []
        dirty = self.dirty[node.id]
        if not dirty:
            return notices
        pending_sends = []
        for block in sorted(dirty):
            epoch = self._epoch[node.id].get(block, 0) + 1
            self._epoch[node.id][block] = epoch
            if self._is_home(node.id, block):
                # Master copy already current; just advertise.  Dropping
                # back to RO makes the next interval's writes fault again
                # so they too are advertised.
                notices.append(WriteNotice(block, epoch, node.id))
                node.access.set_tag(block, RO)
                continue
            twin = self.twins[node.id].pop(block, None)
            if twin is None:
                # Already flushed early by a notice during this interval;
                # the notice list must still cover it.
                notices.append(WriteNotice(block, epoch, node.id))
                continue
            diff = create_diff(block, node.store.block(block), twin)
            yield p.diff_create_fixed_us + p.diff_create_per_byte_us * p.granularity
            self.stats.diffs_created += 1
            if diff.empty:
                # Nothing actually changed; no one needs an invalidation.
                node.access.set_tag(block, RO)
                continue
            self.stats.diff_bytes += diff.payload_bytes
            pending_sends.append((block, diff))
            notices.append(WriteNotice(block, epoch, node.id))
            node.access.set_tag(block, RO)
        if pending_sends:
            latch = CountdownLatch(self.engine, len(pending_sends))
            for block, diff in pending_sends:
                self.send(
                    node.id,
                    self.route_home(node.id, block),
                    "diff",
                    size=HEADER_BYTES + diff.wire_bytes,
                    block=block,
                    payload={"diff": diff, "latch": latch},
                    cost=p.handler_base_us + p.diff_apply_fixed_us
                    + p.diff_apply_per_byte_us * diff.payload_bytes,
                )
            yield from node.wait(latch, "fault_wait_us")
        dirty.clear()
        return notices

    # ==================================================================
    # notice application (app context, from apply_sync)
    # ==================================================================
    def _apply_notice(self, node, wn: WriteNotice) -> Generator:
        if wn.owner == node.id:
            return
        if self._is_home(node.id, wn.block):
            # The home's copy absorbed the writer's diff eagerly; it is
            # current by construction.
            return
        if wn.block in self.twins[node.id]:
            # Concurrent writer under a different lock: preserve our own
            # modifications by flushing them before invalidating.
            yield from self._flush_one(node, wn.block)
        if node.access.invalidate(wn.block):
            self.stats.invalidations += 1

    def _apply_notices(self, node, notices) -> Generator:
        # Flat-loop batch form of _apply_notice (see LRCBase).  A block
        # repeated across the payload's intervals is invalidated (and
        # its twin flushed) by its first foreign notice; later repeats
        # find no twin and an already-invalid tag, so they are skipped
        # outright.
        nid = node.id
        twins = self.twins[nid]
        is_home = self._is_home
        invalidate = node.access.invalidate
        stats = self.stats
        seen = set()
        for wn in notices:
            if wn.owner == nid:
                continue
            block = wn.block
            if block in seen:
                continue
            seen.add(block)
            if is_home(nid, block):
                continue
            if block in twins:
                yield from self._flush_one(node, block)
            if invalidate(block):
                stats.invalidations += 1

    def _flush_one(self, node, block: int) -> Generator:
        p = self.params
        twin = self.twins[node.id].pop(block)
        diff = create_diff(block, node.store.block(block), twin)
        yield p.diff_create_fixed_us + p.diff_create_per_byte_us * p.granularity
        self.stats.diffs_created += 1
        if diff.empty:
            return
        self.stats.diff_bytes += diff.payload_bytes
        fut = Future(self.engine)
        self.send(
            node.id,
            self.route_home(node.id, block),
            "diff",
            size=HEADER_BYTES + diff.wire_bytes,
            block=block,
            payload={"diff": diff, "future": fut},
            cost=p.handler_base_us + p.diff_apply_fixed_us
            + p.diff_apply_per_byte_us * diff.payload_bytes,
        )
        yield from node.wait(fut, "fault_wait_us")

    # ==================================================================
    # handlers
    # ==================================================================
    def _h_fetch_req(self, node, msg: Message) -> None:
        block = msg.block
        if not self.home.is_claimed(block):
            # First (load) touch lands at the static home, which keeps
            # the block (reads do not migrate homes under HLRC).
            if self.home.static_home(block) == node.id:
                self.home.claim_first_touch(block, node.id)
        if self.forward_if_not_home(node, msg):
            return
        requester, _ = self.requester_of(msg)
        self.send(
            node.id,
            requester,
            "fetch_reply",
            size=HEADER_BYTES + self.params.granularity,
            block=block,
            payload={"home": node.id, "data": node.store.snapshot(block)},
            cost=self.data_reply_cost(),
            reply_to=msg.reply_to,
        )

    def _h_diff(self, node, msg: Message) -> None:
        payload = msg.payload
        diff = payload["diff"]
        apply_diff(node.store.block(msg.block), diff)
        self.stats.diffs_applied += 1
        ack_target = payload.get("latch") or payload.get("future")
        self.send(
            node.id,
            msg.src,
            "diff_ack",
            block=msg.block,
            payload={"ack": ack_target},
        )

    @staticmethod
    def _h_diff_ack(node, msg: Message) -> None:
        ack = msg.payload["ack"]
        if isinstance(ack, CountdownLatch):
            ack.hit()
        else:
            ack.resolve(None)
