"""Timestamp-lease coherence (Tardis-2.0 style, adapted to DSM).

The fourth protocol exists for one reason the paper's three cannot
deliver: **O(1) coherence metadata per block**.  SC keeps a directory
copyset (O(sharers), up to O(N)); the LRC protocols keep per-node
vector clocks (O(N) each, O(N^2) machine-wide).  Tardis replaces both
with two logical timestamps per block and one per node:

* ``wts`` -- the block's *write timestamp*: the logical time of the
  version currently stored at the home;
* ``rts`` -- the block's *read timestamp* (lease end): readers have
  been promised this version is readable up to logical time ``rts``;
* ``pts`` -- each node's *program timestamp*: a lower bound on the
  logical time of everything the node has observed.

Rules (all timestamp arithmetic is max/increment -- no vectors):

* **lease extension on read**: a read grant sets
  ``rts = max(rts, pts_reader + LEASE, wts)`` and the reader caches the
  block tagged read-only together with its lease end;
* **write-timestamp bump on exclusive acquisition**: a write grant sets
  ``wts = max(wts, rts) + 1`` (jumping over every outstanding lease)
  and ``rts = wts``; the writer's ``pts`` rises to ``wts``;
* **pts advance on acquire**: lock grants and barrier releases carry
  the granter's ``pts`` (one integer -- compare the LRC protocols'
  vector + write-notice payloads); the acquirer takes the max.

Why there are **no invalidations**: a reader holding a lease simply
keeps reading its copy -- possibly stale, which release consistency
permits between synchronizations.  Staleness ends at the acquire:
after ``pts`` advances, every cached lease with ``lease_end < pts`` is
*expired locally* (the writer that made the copy stale bumped ``wts``
above the old lease and carried ``pts >= wts`` through the
synchronization chain, so the acquirer's new ``pts`` is provably above
the stale lease).  Expiry sends no messages and consults no directory:
the home never needs to know who cached what, which is exactly why the
copyset disappears.

Exclusive copies migrate like SW-LRC ownership: the home serializes
transfers (busy/pending), recalls the current owner's data when
someone else faults (the owner *downgrades* to a leased read-only copy
-- again, no invalidation), and keeps the transfer pipeline closed
until the new owner confirms.

Memory model: ``lrc`` -- writes become visible at synchronization, so
the model checker vets tardis against the same litmus outcome sets as
SW-LRC/HLRC.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.core.protocol import CoherenceProtocol, register
from repro.memory.access_control import INV, RO, RW
from repro.net.message import HEADER_BYTES, Message
from repro.sim.process import Future

#: wire bytes of a (wts, rts) timestamp pair on a data reply
TS_BYTES = 16


@dataclass
class TardisEntry:
    """Home-side per-block record -- the *entire* coherence metadata.

    Fixed size regardless of node count: two timestamps, an owner id,
    and transfer-serialization plumbing.  No copyset.
    """

    wts: int = 0
    rts: int = 0
    owner: Optional[int] = None
    busy: bool = False
    #: request stalled behind an owner recall
    stalled: Optional[Message] = None
    pending: Deque[Message] = field(default_factory=deque)


@register
class TardisProtocol(CoherenceProtocol):
    name = "tardis"
    memory_model = "lrc"
    #: sync messages carry one integer, not vectors + notices
    uses_notices = False
    touch_on_load = False  # a "touch" is a store, as for the LRC protocols

    #: logical lease length granted per read (Tardis's only tunable;
    #: longer leases mean fewer re-reads but more staleness headroom --
    #: correctness never depends on the value)
    LEASE = 10

    def __init__(self, machine):
        super().__init__(machine)
        n = machine.params.n_nodes
        #: home-side block records (O(1) each -- the point of tardis)
        self.entries: Dict[int, TardisEntry] = {}
        #: per-node program timestamp
        self.pts: List[int] = [0] * n
        #: per-node cached-copy lease ends: block -> rts at grant
        self.lease: List[Dict[int, int]] = [dict() for _ in range(n)]
        #: node-local knowledge "I hold the exclusive copy"
        self.owned: List[Set[int]] = [set() for _ in range(n)]

    def _register_handlers(self) -> None:
        self._register_common()
        self._handlers.update(
            {
                "t_read_req": self._h_req,
                "t_write_req": self._h_req,
                "t_read_reply": self._h_generic_ack,
                "t_write_reply": self._h_generic_ack,
                "t_wb_req": self._h_wb_req,
                "t_wb_data": self._h_wb_data,
                "t_own_ack": self._h_own_ack,
            }
        )

    def _entry(self, block: int) -> TardisEntry:
        e = self.entries.get(block)
        if e is None:
            e = TardisEntry()
            self.entries[block] = e
        return e

    def _is_home(self, node_id: int, block: int) -> bool:
        return self.home.home_or_static(block) == node_id

    # ==================================================================
    # placement
    # ==================================================================
    def on_place(self, block: int, home_id: int) -> None:
        """The home's copy is readable from t=0; re-placement revokes
        every other node's copy and any stale ownership."""
        for n in self.m.nodes:
            if n.id != home_id:
                n.access.invalidate(block)
                self.owned[n.id].discard(block)
                self.lease[n.id].pop(block, None)
        self.m.nodes[home_id].access.set_tag(block, RO)
        e = self._entry(block)
        e.owner = None

    # ==================================================================
    # read fault: lease acquisition (app context)
    # ==================================================================
    def read_fault(self, node, block: int) -> Generator:
        yield from self.maybe_claim_first_touch(node.id, block, store=False)
        e = self.entries.get(block)
        if self._is_home(node.id, block) and (
            e is None or (not e.busy and e.owner in (None, node.id))
        ):
            # Home copy is current; extend the lease purely locally.
            self.stats.record_local_reopen(node.id)
            self.home.claim_first_touch(block, node.id)
            e = self._entry(block)
            e.rts = max(e.rts, self.pts[node.id] + self.LEASE, e.wts)
            self.lease[node.id][block] = e.rts
            node.access.set_tag(block, RO)
            yield self.params.tag_change_us
            return
        self.stats.record_read_fault(node.id)
        fut = Future(self.engine)
        self.send(
            node.id,
            self.route_home(node.id, block),
            "t_read_req",
            block=block,
            payload={"pts": self.pts[node.id]},
            reply_to=fut,
        )
        reply = yield from node.wait(fut, "fault_wait_us")
        self.home.learn(node.id, block, reply["home"])
        if reply["data"] is not None:
            node.store.install(block, reply["data"])
        # Read rule: observing version wts lifts the program timestamp.
        if reply["wts"] > self.pts[node.id]:
            self.pts[node.id] = reply["wts"]
        self.lease[node.id][block] = reply["rts"]
        node.access.set_tag(block, RO)

    # ==================================================================
    # write fault: exclusive acquisition (app context)
    # ==================================================================
    def write_fault(self, node, block: int) -> Generator:
        yield from self.maybe_claim_first_touch(node.id, block, store=True)
        e = self.entries.get(block)
        if self._is_home(node.id, block) and (
            e is None or (not e.busy and e.owner in (None, node.id))
        ):
            # Home memory is current: bump the write timestamp over
            # every outstanding lease and take exclusivity locally.
            self.stats.record_local_reopen(node.id)
            e = self._entry(block)
            e.wts = max(e.wts, e.rts) + 1
            e.rts = e.wts
            if e.wts > self.pts[node.id]:
                self.pts[node.id] = e.wts
            e.owner = node.id
            self.owned[node.id].add(block)
            self.lease[node.id].pop(block, None)
            node.access.set_tag(block, RW)
            yield self.params.tag_change_us
            return
        self.stats.record_write_fault(node.id)
        fut = Future(self.engine)
        self.send(
            node.id,
            self.route_home(node.id, block),
            "t_write_req",
            block=block,
            payload={"pts": self.pts[node.id]},
            reply_to=fut,
        )
        reply = yield from node.wait(fut, "fault_wait_us")
        self.home.learn(node.id, block, reply["home"])
        if reply["data"] is not None:
            node.store.install(block, reply["data"])
        if reply["wts"] > self.pts[node.id]:
            self.pts[node.id] = reply["wts"]
        self.lease[node.id].pop(block, None)
        self.owned[node.id].add(block)
        node.access.set_tag(block, RW)
        yield self.params.tag_change_us
        # Confirm after the tag flip (the caller stores its bytes in
        # the same event as this resumption); the home keeps the
        # block's transfer pipeline closed until then.
        self.send(
            node.id,
            reply["home"],
            "t_own_ack",
            block=block,
            payload={"new_owner": node.id},
        )

    # ==================================================================
    # home-side request serialization
    # ==================================================================
    def _h_req(self, node, msg: Message) -> None:
        if self.forward_if_not_home(node, msg):
            return
        e = self._entry(msg.block)
        if e.busy:
            e.pending.append(msg)
            return
        self._start(node, msg, e)

    def _start(self, node, msg: Message, e: TardisEntry) -> None:
        block = msg.block
        requester, _ = self.requester_of(msg)
        if (not self.home.is_claimed(block)
                and self.home.static_home(block) == node.id):
            # Loads do not claim at the requester; the static home
            # claims for itself when the request arrives.
            self.home.claim_first_touch(block, node.id)
        if e.owner is not None and e.owner not in (node.id, requester):
            # Fresh data lives at the exclusive owner: recall it.  The
            # owner downgrades to a leased read-only copy -- this is a
            # writeback, not an invalidation; nobody's copy dies here.
            e.busy = True
            e.stalled = msg
            self.send(
                node.id,
                e.owner,
                "t_wb_req",
                block=block,
                payload={"home": node.id, "rts": e.rts},
            )
            return
        if msg.mtype == "t_read_req":
            self._grant_read(node, msg, e)
        else:
            self._grant_write(node, msg, e)

    def _grant_read(self, node, msg: Message, e: TardisEntry) -> None:
        block = msg.block
        requester, payload = self.requester_of(msg)
        req_pts = payload["pts"] if payload else 0
        p = self.params
        if e.owner == node.id:
            # Granting a lease ends the home's exclusivity so its next
            # write re-faults (and re-bumps wts above this lease).
            self.owned[node.id].discard(block)
            node.access.downgrade(block)
            e.owner = None
        elif e.owner == requester:
            # Transient retry by a recalled owner; its copy is current.
            e.owner = None
        e.rts = max(e.rts, req_pts + self.LEASE, e.wts)
        if e.owner is None and node.access.tag(block) != INV:
            # The home's readable copy is covered by the block lease.
            self.lease[node.id][block] = e.rts
        send_data = requester != node.id
        self.send(
            node.id,
            requester,
            "t_read_reply",
            size=(HEADER_BYTES + p.granularity + TS_BYTES if send_data
                  else HEADER_BYTES + TS_BYTES),
            block=block,
            payload={
                "home": node.id,
                "data": node.store.snapshot(block) if send_data else None,
                "wts": e.wts,
                "rts": e.rts,
            },
            cost=self.data_reply_cost() if send_data else None,
            reply_to=msg.reply_to,
        )
        self._complete(node, e)

    def _grant_write(self, node, msg: Message, e: TardisEntry) -> None:
        block = msg.block
        requester, _ = self.requester_of(msg)
        p = self.params
        had_owner = e.owner
        if e.owner == node.id:
            self.owned[node.id].discard(block)
            node.access.downgrade(block)
            e.owner = None
        if (requester != node.id and node.access.tag(block) != INV
                and block not in self.owned[node.id]):
            # The home keeps a readable (soon stale) copy under the
            # pre-bump lease; it expires at the home's next acquire.
            self.lease[node.id][block] = max(
                self.lease[node.id].get(block, 0), e.rts
            )
        # The bump: jump over every lease ever granted on this block,
        # so stale copies are provably below the new version.
        e.wts = max(e.wts, e.rts) + 1
        e.rts = e.wts
        send_data = requester not in (node.id, had_owner)
        e.owner = None
        e.busy = True  # closed until t_own_ack
        self.send(
            node.id,
            requester,
            "t_write_reply",
            size=(HEADER_BYTES + p.granularity + TS_BYTES if send_data
                  else HEADER_BYTES + TS_BYTES),
            block=block,
            payload={
                "home": node.id,
                "data": node.store.snapshot(block) if send_data else None,
                "wts": e.wts,
                "rts": e.rts,
            },
            cost=self.data_reply_cost() if send_data else None,
            reply_to=msg.reply_to,
        )

    def _complete(self, node, e: TardisEntry) -> None:
        e.busy = False
        if e.pending:
            self._start(node, e.pending.popleft(), e)

    # ------------------------------------------------------------------
    # owner recall (downgrade + writeback -- never an invalidation)
    # ------------------------------------------------------------------
    def _h_wb_req(self, node, msg: Message) -> None:
        block = msg.block
        p = self.params
        self.owned[node.id].discard(block)
        node.access.downgrade(block)
        # The old owner's copy stays readable under the block's lease.
        self.lease[node.id][block] = msg.payload["rts"]
        self.send(
            node.id,
            msg.payload["home"],
            "t_wb_data",
            size=HEADER_BYTES + p.granularity,
            block=block,
            payload={"data": node.store.snapshot(block)},
            cost=self.data_reply_cost(),
        )

    def _h_wb_data(self, node, msg: Message) -> None:
        e = self._entry(msg.block)
        node.store.install(msg.block, msg.payload["data"])
        e.owner = None
        stalled, e.stalled = e.stalled, None
        if stalled is None:  # pragma: no cover - defensive
            self._complete(node, e)
            return
        self._start(node, stalled, e)

    def _h_own_ack(self, node, msg: Message) -> None:
        e = self._entry(msg.block)
        e.owner = msg.payload["new_owner"]
        self._complete(node, e)

    # ==================================================================
    # synchronization: one integer instead of vectors + notices
    # ==================================================================
    def current_vt(self, node_id: int) -> int:
        return self.pts[node_id]

    def grant_payload(self, granter_id: int, acq_vt) -> Tuple[Any, int]:
        return {"pts": self.pts[granter_id]}, 0

    def barrier_payloads(
        self, vts: Dict[int, Any]
    ) -> Dict[int, Tuple[Any, int]]:
        merged = 0
        for v in vts.values():
            if v is not None and v > merged:
                merged = v
        return {nid: ({"pts": merged}, 0) for nid in vts}

    def apply_sync(self, node, payload) -> Generator:
        if not payload:
            return
        nid = node.id
        pts = self.pts[nid]
        if payload["pts"] > pts:
            pts = payload["pts"]
            self.pts[nid] = pts
        # Lease expiry -- tardis's entire acquire-side coherence work.
        # Purely local: drop cached copies whose lease ended before the
        # program timestamp we just advanced to.
        lease = self.lease[nid]
        expired = [b for b, r in lease.items() if r < pts]
        if expired:
            for b in expired:
                del lease[b]
                if node.access.invalidate(b):
                    self.stats.invalidations += 1
            yield self.params.tag_change_us * len(expired)
