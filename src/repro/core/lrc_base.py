"""Shared machinery of the two lazy-release-consistency protocols.

Both SW-LRC and HLRC use timestamp-based coherence control (paper
Sections 2.2/2.3): each node's execution is split into intervals at
release operations; write notices describing modified blocks propagate
with lock grants and barrier releases; invalidations are applied at
acquire time.  The subclasses differ in

* what happens at a release (:meth:`_release_flush`): HLRC eagerly
  diffs and flushes to homes, SW-LRC only bumps versions;
* how a write notice is applied (:meth:`_apply_notice`): HLRC
  invalidates unless home/writer, SW-LRC compares versions;
* how misses are serviced.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Set, Tuple

from repro.core.protocol import CoherenceProtocol
from repro.core.timestamps import Clock, IntervalLog, WriteNotice, make_clock


class LRCBase(CoherenceProtocol):
    """Intervals, vector timestamps and write-notice plumbing."""

    memory_model = "lrc"
    uses_notices = True
    touch_on_load = False  # a "touch" is a store for the LRC protocols

    def __init__(self, machine):
        super().__init__(machine)
        n = machine.params.n_nodes
        # Representation picked by width: dense at paper scale, sparse
        # above DENSE_CLOCK_MAX (same observable behavior by contract).
        self.vt: List[Clock] = [make_clock(n) for _ in range(n)]
        self.ilog = IntervalLog(n)
        #: blocks written since the node's last release (notice sources)
        self.dirty: List[Set[int]] = [set() for _ in range(n)]

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _release_flush(self, node) -> Generator:
        """Flush pending modifications; returns the interval's notices."""
        raise NotImplementedError

    def _apply_notice(self, node, wn: WriteNotice) -> Generator:
        """Apply one write notice at acquire time (app context)."""
        raise NotImplementedError

    def _apply_notices(self, node, notices: List[WriteNotice]) -> Generator:
        """Apply a notice batch; semantically ``_apply_notice`` in a loop.

        Subclasses override this with a single flat loop because
        creating one generator per notice (barrier releases carry
        thousands) shows up in profiles.  An override must stay
        behavior-identical to iterating :meth:`_apply_notice`."""
        for wn in notices:
            yield from self._apply_notice(node, wn)

    # ------------------------------------------------------------------
    # synchronization hooks (called by the lock/barrier services)
    # ------------------------------------------------------------------
    def current_vt(self, node_id: int) -> Tuple[int, ...]:
        return self.vt[node_id].as_tuple()

    def release_prepare(self, node) -> Generator:
        """Close the current interval (and flush, for HLRC)."""
        notices = yield from self._release_flush(node)
        self.ilog.close_interval(node.id, notices)
        self.vt[node.id].tick(node.id)
        self.stats.write_notices_sent += len(notices)
        yield self.params.interval_us

    def grant_payload(self, granter_id: int, acq_vt) -> Tuple[Any, int]:
        if acq_vt is None:
            acq_vt = (0,) * self.params.n_nodes
        notices = self.ilog.notices_between(acq_vt, self.vt[granter_id].as_tuple())
        payload = {"vt": self.vt[granter_id].as_tuple(), "notices": notices}
        return payload, self.ilog.compressed_count(notices)

    def barrier_payloads(
        self, vts: Dict[int, Any]
    ) -> Dict[int, Tuple[Any, int]]:
        n = self.params.n_nodes
        merged = [0] * n
        for vt in vts.values():
            for i, x in enumerate(vt):
                if x > merged[i]:
                    merged[i] = x
        out: Dict[int, Tuple[Any, int]] = {}
        for node_id, vt in vts.items():
            notices = self.ilog.notices_between(vt, merged)
            out[node_id] = (
                {"vt": tuple(merged), "notices": notices},
                self.ilog.compressed_count(notices),
            )
        return out

    def apply_sync(self, node, payload) -> Generator:
        if not payload:
            return
        self.vt[node.id].merge(payload["vt"])
        notices = payload["notices"]
        if notices:
            self.stats.write_notices_applied += len(notices)
            # Bookkeeping cost of walking the notice list.
            yield self.params.write_notice_us * len(notices)
            yield from self._apply_notices(node, notices)
