"""Vector timestamps, intervals, and write notices (LRC machinery).

Lazy release consistency divides each node's execution into *intervals*
delimited by release operations.  Each interval carries the set of
*write notices* -- identifiers of blocks the node wrote during the
interval.  A vector timestamp ``vt`` on node ``n`` counts, per node
``i``, how many of ``i``'s intervals ``n`` has seen.  At an acquire the
granter sends every interval the acquirer has not seen (the vector
difference), and the acquirer invalidates its copies of the noticed
blocks.

The :class:`IntervalLog` is conceptually replicated through these
messages; we store it centrally for the simulation and charge message
sizes for the notices actually shipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.simcore import vc_alloc, vc_dominates, vc_merge_into


@dataclass(frozen=True, slots=True)
class WriteNotice:
    """One modified block, as advertised through synchronization.

    ``version`` and ``owner`` are meaningful for SW-LRC (block version
    at the writer's release, used to skip stale invalidations and to
    find the copy for one-hop read service).  HLRC only needs ``block``
    and ``owner``.
    """

    block: int
    version: int
    owner: int


#: anything a clock method accepts as "the other side": a component
#: sequence (the wire form) or another clock object
ClockLike = Union[Sequence[int], "Clock"]

#: widest clock the dense representation is kept for; above this
#: :func:`make_clock` switches to the sparse dict form.  16-node paper
#: runs sit far below the threshold, so representation selection cannot
#: perturb paper-scale results (the bit-identity contract).
DENSE_CLOCK_MAX = 64

#: modeled storage cost of one dense component / one sparse entry
_DENSE_COMPONENT_BYTES = 8
_SPARSE_ENTRY_BYTES = 16  # 8-byte key + 8-byte count


def _components(other: ClockLike) -> Sequence[int]:
    """The component sequence of a clock-or-sequence operand."""
    if isinstance(other, VectorClock):
        return other.v  # zero-copy: the kernels take any int sequence
    if isinstance(other, SparseClock):
        return other.as_tuple()
    return other


class Clock:
    """The minimal vector-clock interface consumers may rely on.

    Concrete representations (:class:`VectorClock` dense,
    :class:`SparseClock` dict-backed) are interchangeable behind it;
    call sites must not reach into representation internals (the dense
    buffer attribute is private to the dense class).  Contract:

    * ``merge(other)`` -- elementwise max into self;
    * ``dominates(other)`` -- ``self[i] >= other[i]`` for every i;
    * ``advance(node)`` -- bump one component (interval start);
    * ``bytes_used()`` -- honest storage bytes of this representation;
    * plus ``as_tuple``/``copy``/``__getitem__``/``__len__``.

    ``other`` may be any component sequence (the wire form of a clock)
    or another clock of either representation.
    """

    __slots__ = ()

    def merge(self, other: ClockLike) -> None:
        raise NotImplementedError

    def dominates(self, other: ClockLike) -> bool:
        raise NotImplementedError

    def advance(self, node: int) -> int:
        raise NotImplementedError

    def bytes_used(self) -> int:
        raise NotImplementedError

    def as_tuple(self) -> Tuple[int, ...]:
        raise NotImplementedError


class VectorClock(Clock):
    """A mutable dense vector timestamp over ``n`` nodes.

    The component container comes from ``simcore.vc_alloc``: a plain
    list for the paper's narrow clocks (fastest to index and loop
    over), a dense ``array('q')`` for wide clocks so the fast backend's
    merge/dominates kernels can vectorize over the raw int64 buffer.
    Either way ``v`` supports indexing and item assignment.
    """

    __slots__ = ("v",)

    def __init__(self, n: int):
        self.v = vc_alloc(n)

    def copy(self) -> "VectorClock":
        out = VectorClock.__new__(VectorClock)
        out.v = self.v[:]
        return out

    def merge(self, other: ClockLike) -> None:
        # Hot path (every grant/barrier application).
        vc_merge_into(self.v, _components(other))

    def tick(self, node: int) -> int:
        """Start a new interval for ``node``; returns the new count."""
        self.v[node] += 1
        return self.v[node]

    advance = tick

    def bytes_used(self) -> int:
        """Dense cost: every component is materialized."""
        return _DENSE_COMPONENT_BYTES * len(self.v)

    def __getitem__(self, i: int) -> int:
        return self.v[i]

    def __len__(self) -> int:
        return len(self.v)

    def as_tuple(self) -> Tuple[int, ...]:
        return tuple(self.v)

    def dominates(self, other: ClockLike) -> bool:
        return vc_dominates(self.v, _components(other))

    def __repr__(self) -> str:  # pragma: no cover
        return f"VC{list(self.v)}"


class SparseClock(Clock):
    """A dict-backed vector timestamp: only nonzero components stored.

    Above :data:`DENSE_CLOCK_MAX` nodes a dense clock costs 8N bytes
    per clock and every node holds one (plus one per lock episode in
    the race detector): O(N^2) machine-wide.  Most components stay zero
    in real executions -- a node's clock has nonzero entries only for
    nodes whose intervals it has transitively synchronized with -- so a
    dict of nonzero components is capacity-honest.

    Observable behavior (every method result, including
    ``as_tuple()``) is identical to :class:`VectorClock` by contract;
    the differential suite in ``tests/test_scaling.py`` pins this
    op-by-op on seeded random schedules.
    """

    __slots__ = ("n", "c")

    def __init__(self, n: int):
        self.n = n
        #: nonzero components only: node -> count
        self.c: Dict[int, int] = {}

    def copy(self) -> "SparseClock":
        out = SparseClock.__new__(SparseClock)
        out.n = self.n
        out.c = dict(self.c)
        return out

    def merge(self, other: ClockLike) -> None:
        c = self.c
        if isinstance(other, SparseClock):
            for i, x in other.c.items():
                if x > c.get(i, 0):
                    c[i] = x
            return
        comps = _components(other)
        for i, x in enumerate(comps):
            if x > c.get(i, 0):
                c[i] = x

    def tick(self, node: int) -> int:
        nxt = self.c.get(node, 0) + 1
        self.c[node] = nxt
        return nxt

    advance = tick

    def bytes_used(self) -> int:
        """Sparse cost: one entry per nonzero component."""
        return _SPARSE_ENTRY_BYTES * len(self.c)

    def __getitem__(self, i: int) -> int:
        return self.c.get(i, 0)

    def __len__(self) -> int:
        return self.n

    def as_tuple(self) -> Tuple[int, ...]:
        c = self.c
        return tuple(c.get(i, 0) for i in range(self.n))

    def dominates(self, other: ClockLike) -> bool:
        c = self.c
        if isinstance(other, SparseClock):
            return all(c.get(i, 0) >= x for i, x in other.c.items())
        comps = _components(other)
        for i, x in enumerate(comps):
            if c.get(i, 0) < x:
                return False
        return True

    def nonzero_items(self) -> Iterable[Tuple[int, int]]:
        """(node, count) pairs of the nonzero components."""
        return self.c.items()

    def __repr__(self) -> str:  # pragma: no cover
        return f"SparseVC(n={self.n}, {dict(sorted(self.c.items()))})"


def make_clock(n: int) -> Clock:
    """The capacity-honest clock for an ``n``-node machine: dense at
    and below :data:`DENSE_CLOCK_MAX` nodes (paper scale -- fastest,
    and byte-identical to the pre-refactor representation), sparse
    above it."""
    if n <= DENSE_CLOCK_MAX:
        return VectorClock(n)
    return SparseClock(n)


class IntervalLog:
    """Per-node sequences of closed intervals and their notices.

    ``log[i][k]`` is the list of write notices of node ``i``'s
    ``k``-th closed interval (0-based).  A node's vector component
    ``vt[i] == m`` means it has seen intervals ``0..m-1`` of node ``i``.
    """

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self._log: List[List[List[WriteNotice]]] = [[] for _ in range(n_nodes)]

    def close_interval(self, node: int, notices: List[WriteNotice]) -> int:
        """Append a closed interval for ``node``; returns its index."""
        self._log[node].append(notices)
        return len(self._log[node]) - 1

    def intervals_of(self, node: int) -> int:
        return len(self._log[node])

    def notices_between(
        self, seen: Sequence[int], upto: Sequence[int]
    ) -> List[WriteNotice]:
        """All notices in intervals the acquirer (``seen``) lacks,
        bounded by what the granter has seen (``upto``)."""
        out: List[WriteNotice] = []
        log = self._log
        extend = out.extend
        for i in range(self.n_nodes):
            lo, hi = seen[i], upto[i]
            if hi > lo:
                for interval in log[i][lo:hi]:
                    extend(interval)
        return out

    @staticmethod
    def compressed_count(notices: List[WriteNotice]) -> int:
        """Number of contiguous block runs in a notice batch.

        Write notices for consecutive blocks (a processor's contiguous
        partition) are run-length encoded on the wire, so a sweep that
        dirties 100 adjacent blocks costs one notice record, while
        scattered tree-cell notices (Barnes) compress not at all."""
        if not notices:
            return 0
        blocks = sorted({wn.block for wn in notices})
        runs = 1
        for a, b in zip(blocks, blocks[1:]):
            if b != a + 1:
                runs += 1
        return runs

    def notice_count_between(self, seen: Sequence[int], upto: Sequence[int]) -> int:
        total = 0
        for i in range(self.n_nodes):
            lo, hi = seen[i], upto[i]
            for k in range(lo, hi):
                total += len(self._log[i][k])
        return total
