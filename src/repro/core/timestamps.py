"""Vector timestamps, intervals, and write notices (LRC machinery).

Lazy release consistency divides each node's execution into *intervals*
delimited by release operations.  Each interval carries the set of
*write notices* -- identifiers of blocks the node wrote during the
interval.  A vector timestamp ``vt`` on node ``n`` counts, per node
``i``, how many of ``i``'s intervals ``n`` has seen.  At an acquire the
granter sends every interval the acquirer has not seen (the vector
difference), and the acquirer invalidates its copies of the noticed
blocks.

The :class:`IntervalLog` is conceptually replicated through these
messages; we store it centrally for the simulation and charge message
sizes for the notices actually shipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.simcore import vc_alloc, vc_dominates, vc_merge_into


@dataclass(frozen=True, slots=True)
class WriteNotice:
    """One modified block, as advertised through synchronization.

    ``version`` and ``owner`` are meaningful for SW-LRC (block version
    at the writer's release, used to skip stale invalidations and to
    find the copy for one-hop read service).  HLRC only needs ``block``
    and ``owner``.
    """

    block: int
    version: int
    owner: int


class VectorClock:
    """A mutable vector timestamp over ``n`` nodes.

    The component container comes from ``simcore.vc_alloc``: a plain
    list for the paper's narrow clocks (fastest to index and loop
    over), a dense ``array('q')`` for wide clocks so the fast backend's
    merge/dominates kernels can vectorize over the raw int64 buffer.
    Either way ``v`` supports indexing and item assignment.
    """

    __slots__ = ("v",)

    def __init__(self, n: int):
        self.v = vc_alloc(n)

    def copy(self) -> "VectorClock":
        out = VectorClock.__new__(VectorClock)
        out.v = self.v[:]
        return out

    def merge(self, other: Sequence[int]) -> None:
        # Hot path (every grant/barrier application).
        vc_merge_into(self.v, other)

    def tick(self, node: int) -> int:
        """Start a new interval for ``node``; returns the new count."""
        self.v[node] += 1
        return self.v[node]

    def __getitem__(self, i: int) -> int:
        return self.v[i]

    def __len__(self) -> int:
        return len(self.v)

    def as_tuple(self) -> Tuple[int, ...]:
        return tuple(self.v)

    def dominates(self, other: Sequence[int]) -> bool:
        return vc_dominates(self.v, other)

    def __repr__(self) -> str:  # pragma: no cover
        return f"VC{list(self.v)}"


class IntervalLog:
    """Per-node sequences of closed intervals and their notices.

    ``log[i][k]`` is the list of write notices of node ``i``'s
    ``k``-th closed interval (0-based).  A node's vector component
    ``vt[i] == m`` means it has seen intervals ``0..m-1`` of node ``i``.
    """

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self._log: List[List[List[WriteNotice]]] = [[] for _ in range(n_nodes)]

    def close_interval(self, node: int, notices: List[WriteNotice]) -> int:
        """Append a closed interval for ``node``; returns its index."""
        self._log[node].append(notices)
        return len(self._log[node]) - 1

    def intervals_of(self, node: int) -> int:
        return len(self._log[node])

    def notices_between(
        self, seen: Sequence[int], upto: Sequence[int]
    ) -> List[WriteNotice]:
        """All notices in intervals the acquirer (``seen``) lacks,
        bounded by what the granter has seen (``upto``)."""
        out: List[WriteNotice] = []
        log = self._log
        extend = out.extend
        for i in range(self.n_nodes):
            lo, hi = seen[i], upto[i]
            if hi > lo:
                for interval in log[i][lo:hi]:
                    extend(interval)
        return out

    @staticmethod
    def compressed_count(notices: List[WriteNotice]) -> int:
        """Number of contiguous block runs in a notice batch.

        Write notices for consecutive blocks (a processor's contiguous
        partition) are run-length encoded on the wire, so a sweep that
        dirties 100 adjacent blocks costs one notice record, while
        scattered tree-cell notices (Barnes) compress not at all."""
        if not notices:
            return 0
        blocks = sorted({wn.block for wn in notices})
        runs = 1
        for a, b in zip(blocks, blocks[1:]):
            if b != a + 1:
                runs += 1
        return runs

    def notice_count_between(self, seen: Sequence[int], upto: Sequence[int]) -> int:
        total = 0
        for i in range(self.n_nodes):
            lo, hi = seen[i], upto[i]
            for k in range(lo, hi):
                total += len(self._log[i][k])
        return total
