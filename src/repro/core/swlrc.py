"""Single-Writer Lazy Release Consistency (paper Section 2.2).

A single writable copy co-exists with multiple read-only copies:

* a write fault migrates *ownership* (the writable copy) to the
  faulting node, but read-only copies are **not** invalidated;
* stale copies are invalidated lazily at acquire time using write
  notices carrying block versions;
* because the notice records both the version and the writer, a read
  fault is serviced in a **one-hop** round trip to the noticed writer,
  and copies whose version already covers the notice skip the
  invalidation ("avoid unnecessary invalidations").

Versioning rule (consistent lower-bound semantics):

* an ownership transfer hands the new owner ``old_version + 1``;
* a release in which the owner wrote the block bumps its version and
  the notice carries the bumped value.

A copy with version ``v`` is guaranteed to include every write
advertised by notices with version ``<= v``, so the invalidation test
``notice.version > my_version`` is safe (see tests for the
mid-interval-transfer corner cases).

The block's home keeps the authoritative owner identity and serializes
ownership transfers; reads chase hint chains (hints always point at
strictly newer versions, so chains terminate at the current owner).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.core.lrc_base import LRCBase
from repro.core.protocol import register
from repro.core.timestamps import WriteNotice
from repro.memory.access_control import INV, RO, RW
from repro.net.message import HEADER_BYTES, Message
from repro.sim.process import Future


@dataclass
class OwnerEntry:
    """Home-side authoritative ownership record for one block."""

    owner: Optional[int] = None
    busy: bool = False
    pending: Deque[Message] = field(default_factory=deque)


@register
class SWLRCProtocol(LRCBase):
    name = "swlrc"

    def __init__(self, machine):
        super().__init__(machine)
        n = machine.params.n_nodes
        #: version of each node's local copy
        self.version: List[Dict[int, int]] = [dict() for _ in range(n)]
        #: freshest writer hint per node: block -> (version, writer)
        self.hint: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
        #: home-side ownership directory
        self.owners: Dict[int, OwnerEntry] = {}
        #: node-local knowledge "I am the current owner" -- lets a
        #: re-write after a release re-open the block without messages
        self.owned: List[Set[int]] = [set() for _ in range(n)]

    def _register_handlers(self) -> None:
        self._register_common()
        self._handlers.update(
            {
                "own_req": self._h_own_req,
                "own_fwd": self._h_own_fwd,
                "own_reply": self._h_generic_ack,
                "owner_update": self._h_owner_update,
                "rread_req": self._h_rread_req,
                "rread_reply": self._h_generic_ack,
            }
        )

    def _entry(self, block: int) -> OwnerEntry:
        e = self.owners.get(block)
        if e is None:
            e = OwnerEntry()
            self.owners[block] = e
        return e

    def _is_home(self, node_id: int, block: int) -> bool:
        return self.home.home_or_static(block) == node_id

    # ==================================================================
    # write fault: ownership migration (app context)
    # ==================================================================
    def on_place(self, block: int, home_id: int) -> None:
        """The home's copy is readable; its first write acquires
        ownership through the cheap local path.  Re-placement revokes
        the previous home's access."""
        for n in self.m.nodes:
            if n.id != home_id:
                n.access.invalidate(block)
                self.owned[n.id].discard(block)
        self.m.nodes[home_id].access.set_tag(block, RO)

    def write_fault(self, node, block: int) -> Generator:
        yield from self.maybe_claim_first_touch(node.id, block, store=True)
        e = self.owners.get(block)
        if self._is_home(node.id, block) and (
            e is None or e.owner in (None, node.id)
        ):
            self.stats.record_local_reopen(node.id)
        elif block in self.owned[node.id]:
            self.stats.record_local_reopen(node.id)
        else:
            self.stats.record_write_fault(node.id)
        if block in self.owned[node.id]:
            # Still the single writer; the release-time downgrade to RO
            # exists only to *detect* the next interval's writes.
            # Re-opening is purely local.
            self.dirty[node.id].add(block)
            node.access.set_tag(block, RW)
            yield self.params.tag_change_us
            return
        fut = Future(self.engine)
        self.send(
            node.id,
            self.route_home(node.id, block),
            "own_req",
            block=block,
            reply_to=fut,
        )
        reply = yield from node.wait(fut, "fault_wait_us")
        self.home.learn(node.id, block, reply["home"])
        if reply["data"] is not None:
            node.store.install(block, reply["data"])
        self.version[node.id][block] = reply["version"]
        self.dirty[node.id].add(block)
        self.owned[node.id].add(block)
        node.access.set_tag(block, RW)
        yield self.params.tag_change_us
        if reply.get("confirm"):
            # Tell the home the transfer completed; it keeps the block's
            # transfer pipeline closed (busy) until then, so ownership
            # can never be granted away from a node that does not hold
            # it yet.  Sent after the tag flip: the caller copies its
            # bytes in the same event as this resumption, strictly
            # before any handler can act on the confirmation.
            self.send(
                node.id,
                reply["home"],
                "owner_update",
                block=block,
                payload={"new_owner": node.id},
            )

    def _h_own_req(self, node, msg: Message) -> None:
        if self.forward_if_not_home(node, msg):
            return
        e = self._entry(msg.block)
        if e.busy:
            e.pending.append(msg)
            return
        self._start_own(node, msg, e)

    def _start_own(self, node, msg: Message, e: OwnerEntry) -> None:
        requester, _ = self.requester_of(msg)
        block = msg.block
        p = self.params
        if e.owner == requester:
            # Re-request by the current owner (a retry after a theft
            # race): regrant without data.
            version = self.version[requester].get(block, 0) + 1
            self.send(
                node.id,
                requester,
                "own_reply",
                block=block,
                payload={"home": node.id, "data": None, "version": version,
                         "confirm": False},
                reply_to=msg.reply_to,
            )
            self._complete_own(node, e)
        elif e.owner is None or e.owner == node.id:
            # Grant straight from home memory.
            version = self.version[node.id].get(block, 0) + 1
            if requester == node.id:
                # Even the home's own grant stays busy until confirmed:
                # the app-level tag flip happens later, and granting the
                # block away in between would be invisible to the app.
                e.busy = True
                self.send(
                    node.id,
                    requester,
                    "own_reply",
                    block=block,
                    payload={"home": node.id, "data": None, "version": version,
                             "confirm": True},
                    reply_to=msg.reply_to,
                )
                return
            if e.owner == node.id:
                self.owned[node.id].discard(block)
                node.access.downgrade(block)
            # Ownership is in flight until the requester confirms; any
            # competing transfer queues behind it.
            e.busy = True
            self.send(
                node.id,
                requester,
                "own_reply",
                size=HEADER_BYTES + p.granularity,
                block=block,
                payload={"home": node.id, "data": node.store.snapshot(block),
                         "version": version, "confirm": True},
                cost=self.data_reply_cost(),
                reply_to=msg.reply_to,
            )
        else:
            e.busy = True
            self.send(
                node.id,
                e.owner,
                "own_fwd",
                block=block,
                payload={"requester": requester, "reply_to": msg.reply_to,
                         "home": node.id},
            )

    def _h_own_fwd(self, node, msg: Message) -> None:
        """The current owner hands the block (and ownership) over."""
        block = msg.block
        p = self.params
        payload = msg.payload
        requester = payload["requester"]
        version = self.version[node.id].get(block, 0) + 1
        # The old owner keeps a read-only copy (the SW-LRC relaxation:
        # readers are not invalidated on a write elsewhere).
        self.owned[node.id].discard(block)
        node.access.downgrade(block)
        self.send(
            node.id,
            requester,
            "own_reply",
            size=HEADER_BYTES + p.granularity,
            block=block,
            payload={"home": payload["home"], "data": node.store.snapshot(block),
                     "version": version, "confirm": True},
            cost=self.data_reply_cost(),
            reply_to=payload["reply_to"],
        )

    def _h_owner_update(self, node, msg: Message) -> None:
        e = self._entry(msg.block)
        e.owner = msg.payload["new_owner"]
        self._complete_own(node, e)

    def _complete_own(self, node, e: OwnerEntry) -> None:
        e.busy = False
        if e.pending:
            self._start_own(node, e.pending.popleft(), e)

    # ==================================================================
    # read fault: one-hop service from the hinted writer (app context)
    # ==================================================================
    def read_fault(self, node, block: int) -> Generator:
        hint = self.hint[node.id].get(block)
        if hint is None and self._is_home(node.id, block):
            e = self._entry(block)
            if e.owner is None or e.owner == node.id:
                # Home copy is current; purely local.
                self.stats.record_local_reopen(node.id)
                self.home.claim_first_touch(block, node.id)
                node.access.set_tag(block, RO)
                yield self.params.tag_change_us
                return
            self.stats.record_read_fault(node.id)
            target = e.owner
        elif hint is not None:
            self.stats.record_read_fault(node.id)
            target = hint[1]
        else:
            self.stats.record_read_fault(node.id)
            target = self.route_home(node.id, block)
        fut = Future(self.engine)
        self.send(node.id, target, "rread_req", block=block, reply_to=fut)
        reply = yield from node.wait(fut, "fault_wait_us")
        if reply.get("home") is not None:
            self.home.learn(node.id, block, reply["home"])
        node.store.install(block, reply["data"])
        self.version[node.id][block] = reply["version"]
        node.access.set_tag(block, RO)

    def _h_rread_req(self, node, msg: Message) -> None:
        block = msg.block
        requester, _ = self.requester_of(msg)
        p = self.params
        if node.access.tag(block) != INV and node.store.has_block(block):
            # Serve from the local (possibly past-owner) copy: its
            # version is at least the version of the notice that led
            # the requester here, which is all causality requires.
            self.send(
                node.id,
                requester,
                "rread_reply",
                size=HEADER_BYTES + p.granularity,
                block=block,
                payload={
                    "home": node.id if self._is_home(node.id, block) else None,
                    "data": node.store.snapshot(block),
                    "version": self.version[node.id].get(block, 0),
                },
                cost=self.data_reply_cost(),
                reply_to=msg.reply_to,
            )
            return
        # No usable copy here: chase a fresher hint, or fall back home.
        hint = self.hint[node.id].get(block)
        if hint is not None and hint[1] != node.id:
            target = hint[1]
        elif self._is_home(node.id, block):
            e = self._entry(block)
            if e.owner is None or e.owner == node.id:
                # Unowned block at its (claimed or static) home: the
                # home copy is the initial/current content.
                if self.home.static_home(block) == node.id:
                    self.home.claim_first_touch(block, node.id)
                self.send(
                    node.id,
                    requester,
                    "rread_reply",
                    size=HEADER_BYTES + p.granularity,
                    block=block,
                    payload={
                        "home": node.id,
                        "data": node.store.snapshot(block),
                        "version": self.version[node.id].get(block, 0),
                    },
                    cost=self.data_reply_cost(),
                    reply_to=msg.reply_to,
                )
                return
            target = e.owner
        else:
            target = self.home.home_or_static(block)
        self.stats.forwarded_requests += 1
        fwd = Message(
            src=node.id,
            dst=target,
            mtype="rread_req",
            size_bytes=msg.size_bytes,
            block=block,
            payload={"__fwd_src": requester, "inner": None},
            handle_cost_us=msg.handle_cost_us,
            reply_to=msg.reply_to,
        )
        self.m.send(fwd)

    # ==================================================================
    # release / notices
    # ==================================================================
    def _release_flush(self, node) -> Generator:
        """No data moves at a release under SW-LRC; versions bump and
        notices are recorded (the protocol's cheap-release advantage)."""
        notices: List[WriteNotice] = []
        for block in sorted(self.dirty[node.id]):
            v = self.version[node.id].get(block, 0) + 1
            self.version[node.id][block] = v
            notices.append(WriteNotice(block, v, node.id))
            if block in self.owned[node.id]:
                # Write-protect so the next interval's first write
                # faults (locally) and is advertised again.
                node.access.downgrade(block)
        self.dirty[node.id].clear()
        if notices:
            yield self.params.handler_base_us
        return notices

    def _apply_notice(self, node, wn: WriteNotice) -> Generator:
        if wn.owner == node.id:
            return
        # Remember the freshest writer for one-hop read service.
        cur = self.hint[node.id].get(wn.block)
        if cur is None or wn.version > cur[0]:
            self.hint[node.id][wn.block] = (wn.version, wn.owner)
        my_version = self.version[node.id].get(wn.block)
        if my_version is not None and my_version >= wn.version:
            # Copy already covers this notice: skip the invalidation
            # ("avoid unnecessary invalidations", Section 2.2).
            return
        self.owned[node.id].discard(wn.block)
        if node.access.invalidate(wn.block):
            self.stats.invalidations += 1
            self.version[node.id].pop(wn.block, None)
        return
        yield  # pragma: no cover - generator protocol

    def _apply_notices(self, node, notices) -> Generator:
        # Flat-loop batch form of _apply_notice (see LRCBase).  Barrier
        # payloads repeat blocks across many intervals; per block only
        # the highest-version notice has any effect (the hint keeps the
        # max version, and one invalidation covers every lower version),
        # so aggregate first and touch each block once.  The first
        # notice reaching the max version wins, matching the sequential
        # loop's strict-greater hint update.
        nid = node.id
        best: dict = {}
        for wn in notices:
            if wn.owner == nid:
                continue
            block = wn.block
            cur = best.get(block)
            if cur is None or wn.version > cur.version:
                best[block] = wn
        hint = self.hint[nid]
        version = self.version[nid]
        owned = self.owned[nid]
        invalidate = node.access.invalidate
        stats = self.stats
        for block, wn in best.items():
            wv = wn.version
            cur = hint.get(block)
            if cur is None or wv > cur[0]:
                hint[block] = (wv, wn.owner)
            my_version = version.get(block)
            if my_version is not None and my_version >= wv:
                continue
            owned.discard(block)
            if invalidate(block):
                stats.invalidations += 1
                version.pop(block, None)
        return
        yield  # pragma: no cover - generator protocol
