"""Eager Release Consistency (ERC) -- the pre-lazy relaxed protocol of
the paper's related work (release consistency [10] and its SVM
implementation [5], Munin-style, with write-invalidate propagation as
in Keleher's ERC/LRC comparison).

Like HLRC it is a home-based multiple-writer protocol (twins, diffs,
whole-block fetch from the home), but coherence is enforced **at the
release instead of the acquire**:

* at a release, every dirty block's diff goes to its home, and the home
  *eagerly invalidates every other cached copy* before acknowledging;
  the releaser blocks until all of that completes;
* acquires are plain lock transfers -- no vector timestamps, no write
  notices (``uses_notices = False``), so acquire-side cost matches SC's
  cheap synchronization;
* the home tracks the copyset (who fetched the block) to know whom to
  invalidate.

The classic trade-off versus LRC: eager releases pay for invalidating
copies that may never be read again, and the release critical path
grows with the copyset -- which is exactly why the LRC protocols the
paper evaluates became the norm.  ``bench_erc_vs_lrc`` quantifies it.

Concurrent writers under different locks are preserved the Munin way:
an invalidation arriving at a node holding a *dirty* copy piggybacks
that node's diff on the acknowledgement; the home merges it, so no
write is ever lost.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Set

from repro.core.diff import apply_diff, create_diff
from repro.core.protocol import CoherenceProtocol, register
from repro.memory.access_control import INV, RO, RW
from repro.net.message import HEADER_BYTES, Message
from repro.sim.process import CountdownLatch, Future


@register
class ERCProtocol(CoherenceProtocol):
    name = "erc"
    memory_model = "lrc"
    uses_notices = False
    touch_on_load = False  # stores migrate homes, as for the LRC protocols

    def __init__(self, machine):
        super().__init__(machine)
        n = machine.params.n_nodes
        self.twins: List[Dict[int, bytearray]] = [dict() for _ in range(n)]
        self.dirty: List[Set[int]] = [set() for _ in range(n)]
        #: home-side copyset per block: nodes holding a cached copy
        self.copyset: Dict[int, Set[int]] = {}
        #: (node, block) faults in flight + those an inval raced past
        self._inflight: Set[tuple] = set()
        self._poisoned: Set[tuple] = set()
        #: home-side open invalidation transactions per block, and the
        #: fetch requests parked until they close (see _h_fetch_req)
        self._storms: Dict[int, int] = {}
        self._parked: Dict[int, List[Message]] = {}

    def _register_handlers(self) -> None:
        self._register_common()
        self._handlers.update(
            {
                "fetch_req": self._h_fetch_req,
                "fetch_reply": self._h_generic_ack,
                "erc_flush": self._h_flush,
                "erc_flush_ack": self._h_flush_ack,
                "erc_inval": self._h_inval,
                "erc_inval_ack": self._h_inval_ack,
            }
        )

    def _is_home(self, node_id: int, block: int) -> bool:
        return self.home.home_or_static(block) == node_id

    def on_place(self, block: int, home_id: int) -> None:
        for n in self.m.nodes:
            if n.id != home_id:
                n.access.invalidate(block)
        self.m.nodes[home_id].access.set_tag(block, RO)

    # ==================================================================
    # faults (app context)
    # ==================================================================
    def read_fault(self, node, block: int) -> Generator:
        if self._is_home(node.id, block):
            self.stats.record_local_reopen(node.id)
            self.home.claim_first_touch(block, node.id)
            yield self.params.tag_change_us
            node.access.set_tag(block, RO)
            return
        self.stats.record_read_fault(node.id)
        yield from self._fetch(node, block, RO)

    def write_fault(self, node, block: int) -> Generator:
        yield from self.maybe_claim_first_touch(node.id, block, store=True)
        if self._is_home(node.id, block):
            self.stats.record_local_reopen(node.id)
            self.dirty[node.id].add(block)
            yield self.params.tag_change_us
            node.access.set_tag(block, RW)
            return
        self.stats.record_write_fault(node.id)
        key = (node.id, block)
        while True:
            self._poisoned.discard(key)
            self._inflight.add(key)
            if node.access.tag(block) == INV:
                yield from self._fetch(node, block, RO, track=False)
            if block not in self.twins[node.id]:
                self.twins[node.id][block] = node.store.snapshot(block)
                self.stats.twins_created += 1
                yield (self.params.twin_fixed_us
                       + self.params.twin_per_byte_us * self.params.granularity)
            self._inflight.discard(key)
            if key in self._poisoned:
                # A release-time invalidation raced our fetch/twin: our
                # base copy is stale.  Drop it and retry on the fresh
                # home contents (the invalidation's piggyback already
                # carried away nothing -- we had not written yet).
                self._poisoned.discard(key)
                self.twins[node.id].pop(block, None)
                node.access.invalidate(block)
                continue
            break
        self.dirty[node.id].add(block)
        node.access.set_tag(block, RW)
        yield self.params.tag_change_us

    def _fetch(self, node, block: int, tag: int, track: bool = True) -> Generator:
        key = (node.id, block)
        if track:
            self._poisoned.discard(key)
            self._inflight.add(key)
        fut = Future(self.engine)
        self.send(node.id, self.route_home(node.id, block), "fetch_req",
                  block=block, reply_to=fut)
        reply = yield from node.wait(fut, "fault_wait_us")
        self.home.learn(node.id, block, reply["home"])
        node.store.install(block, reply["data"])
        node.access.set_tag(block, tag)
        if track:
            self._inflight.discard(key)
            if key in self._poisoned:
                # The copy we fetched was snapshotted before a diff
                # that the racing invalidation covers: usable for the
                # access that faulted, but not cacheable.
                self._poisoned.discard(key)
                self.engine.post(0.0, self._late_invalidate, node, block)

    def _late_invalidate(self, node, block: int) -> None:
        if node.access.invalidate(block):
            self.stats.invalidations += 1

    # ==================================================================
    # the eager release (app context)
    # ==================================================================
    def release_prepare(self, node) -> Generator:
        p = self.params
        dirty = self.dirty[node.id]
        if not dirty:
            return
        pending = []
        for block in sorted(dirty):
            if self._is_home(node.id, block):
                # Master copy current; invalidate remote copies directly.
                node.access.set_tag(block, RO)
                pending.append((block, None))
                continue
            twin = self.twins[node.id].pop(block, None)
            if twin is None:
                # Our changes were already merged by a piggybacked ack.
                continue
            diff = create_diff(block, node.store.block(block), twin)
            yield (p.diff_create_fixed_us
                   + p.diff_create_per_byte_us * p.granularity)
            self.stats.diffs_created += 1
            # Downgrade, never upgrade: a concurrent release's
            # invalidation may have dropped our tag during the
            # diff-create sleep, and re-opening it would leave a stale
            # readable copy.
            node.access.downgrade(block)
            if diff.empty:
                continue
            self.stats.diff_bytes += diff.payload_bytes
            pending.append((block, diff))
        dirty.clear()
        if not pending:
            return
        latch = CountdownLatch(self.engine, len(pending))
        for block, diff in pending:
            home_id = self.home.home_or_static(block)
            if home_id == node.id:
                # Run the home-side invalidation storm locally.
                self._invalidate_copies(self.m.nodes[node.id], block,
                                        node.id, latch)
            else:
                wire = diff.wire_bytes if diff else 0
                self.send(
                    node.id, home_id, "erc_flush",
                    size=HEADER_BYTES + wire,
                    block=block,
                    payload={"diff": diff, "latch": latch, "writer": node.id},
                    cost=p.handler_base_us + p.diff_apply_fixed_us
                    + p.diff_apply_per_byte_us
                    * (diff.payload_bytes if diff else 0),
                )
        yield from node.wait(latch, "fault_wait_us")

    # ==================================================================
    # handlers
    # ==================================================================
    def _h_fetch_req(self, node, msg: Message) -> None:
        block = msg.block
        if not self.home.is_claimed(block):
            if self.home.static_home(block) == node.id:
                self.home.claim_first_touch(block, node.id)
        if self.forward_if_not_home(node, msg):
            return
        if self._storms.get(block):
            # An eager-release invalidation transaction is open for this
            # block: a snapshot taken now could miss a concurrent
            # writer's piggybacked diff that merges before the storm
            # closes, and nothing would ever invalidate the requester's
            # copy.  Park the request until the storm completes.
            self._parked.setdefault(block, []).append(msg)
            return
        requester, _ = self.requester_of(msg)
        self.copyset.setdefault(block, set()).add(requester)
        self.send(
            node.id, requester, "fetch_reply",
            size=HEADER_BYTES + self.params.granularity,
            block=block,
            payload={"home": node.id, "data": node.store.snapshot(block)},
            cost=self.data_reply_cost(),
            reply_to=msg.reply_to,
        )

    def _h_flush(self, node, msg: Message) -> None:
        """Home: apply the writer's diff, then eagerly invalidate every
        other cached copy before acknowledging the release."""
        payload = msg.payload
        diff = payload["diff"]
        if diff is not None:
            apply_diff(node.store.block(msg.block), diff)
            self.stats.diffs_applied += 1
        self._invalidate_copies(node, msg.block, payload["writer"],
                                payload["latch"], remote_ack=msg.src)

    def _invalidate_copies(self, home_node, block: int, writer: int,
                           latch: CountdownLatch, remote_ack: int = None
                           ) -> None:
        # Open an invalidation transaction: fetches of this block park
        # until it closes (_release_ack), so no node can cache a
        # mid-storm snapshot that a piggybacked diff then invalidates
        # behind its back.
        self._storms[block] = self._storms.get(block, 0) + 1
        targets = [
            c for c in sorted(self.copyset.get(block, ()))
            if c not in (writer, home_node.id)
        ]
        self.copyset[block] = {writer}
        if not targets:
            self._release_ack(home_node, block, latch, remote_ack, False)
            return
        # Shared transaction context: counts acks and remembers whether
        # any of them piggybacked a concurrent writer's diff -- in that
        # case the releaser's own copy is missing those merged writes
        # and must be invalidated too.
        ctx = {"remaining": len(targets), "stale": False,
               "home_node": home_node, "block": block, "latch": latch,
               "remote_ack": remote_ack}
        for t in targets:
            self.send(
                home_node.id, t, "erc_inval",
                block=block,
                payload={"ctx": ctx, "home": home_node.id},
                cost=self.params.handler_base_us + self.params.tag_change_us,
            )

    def _release_ack(self, home_node, block: int, latch: CountdownLatch,
                     remote_ack, stale: bool) -> None:
        if remote_ack is None:
            # The releaser is the home; its master copy absorbed every
            # piggybacked diff, so it is never stale.
            latch.hit()
        else:
            if stale:
                self.copyset[block] = set()
            self.send(home_node.id, remote_ack, "erc_flush_ack",
                      block=block, payload={"latch": latch, "stale": stale})
        # Close the transaction; serve fetches parked behind it (they
        # now snapshot the fully merged home copy).
        remaining = self._storms[block] - 1
        if remaining:
            self._storms[block] = remaining
            return
        del self._storms[block]
        for parked in self._parked.pop(block, ()):
            self._h_fetch_req(home_node, parked)

    def _h_flush_ack(self, node, msg: Message) -> None:
        if msg.payload["stale"]:
            # A concurrent writer's diff merged at the home during our
            # release: our cached copy lacks it.
            if node.access.invalidate(msg.block):
                self.stats.invalidations += 1
        msg.payload["latch"].hit()

    def _h_inval(self, node, msg: Message) -> None:
        """Invalidate our copy; if it is dirty, piggyback our diff on
        the ack so no concurrent writer's data is lost (Munin merge)."""
        block = msg.block
        key = (node.id, block)
        if key in self._inflight:
            self._poisoned.add(key)
        piggy = None
        twin = self.twins[node.id].pop(block, None)
        if twin is not None:
            piggy = create_diff(block, node.store.block(block), twin)
            self.stats.diffs_created += 1
            if piggy.empty:
                piggy = None
            else:
                self.stats.diff_bytes += piggy.payload_bytes
            self.dirty[node.id].discard(block)
        if node.access.invalidate(block):
            self.stats.invalidations += 1
        size = HEADER_BYTES + (piggy.wire_bytes if piggy else 0)
        self.send(
            node.id, msg.src, "erc_inval_ack",
            size=size,
            block=block,
            payload={"ctx": msg.payload["ctx"], "diff": piggy},
            cost=self.params.handler_base_us
            + (self.params.diff_apply_per_byte_us * piggy.payload_bytes
               if piggy else 0.0),
        )

    def _h_inval_ack(self, node, msg: Message) -> None:
        ctx = msg.payload["ctx"]
        piggy = msg.payload["diff"]
        if piggy is not None:
            apply_diff(node.store.block(msg.block), piggy)
            self.stats.diffs_applied += 1
            ctx["stale"] = True
        ctx["remaining"] -= 1
        if ctx["remaining"] == 0:
            self._release_ack(ctx["home_node"], ctx["block"], ctx["latch"],
                              ctx["remote_ack"], ctx["stale"])
