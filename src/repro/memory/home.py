"""Home assignment with first-touch migration (paper Section 2).

Each block has a *home* node.  Blocks start out statically assigned
(round-robin by page over the nodes).  "After the beginning of an
application's parallel phase, page homes migrate to the first node that
touches them"; a touch is a load or store for SC, a store for HLRC.
When another node later touches an already-migrated block it sends its
request to the static home, learns the new home from the forward, and
caches it.

Two paths exist:

* :meth:`place` -- setup-time declarative placement used by the
  applications to mirror the first-touch layout their SPLASH-2
  counterparts establish during initialization (zero simulated cost,
  happens before timing starts).
* :meth:`claim_first_touch` -- runtime migration for blocks nobody
  pre-placed; the protocol charges a control round trip to the static
  home when the claimer is remote.

The per-node ``cached`` map models the "distributed table ... cached in
a local table" of Section 2; a request routed through a stale entry
costs one forwarding hop, which the protocols count in
``stats.forwarded_requests``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.config import PAGE_SIZE


class HomeTable:
    """Tracks the home node of every block plus per-node caches."""

    def __init__(self, n_nodes: int, granularity: int):
        self.n_nodes = n_nodes
        self.granularity = granularity
        self.blocks_per_page = max(1, PAGE_SIZE // granularity)
        #: authoritative home per block (None until touched/placed)
        self._home: Dict[int, int] = {}
        #: per-node cached home hints
        self._cached: List[Dict[int, int]] = [dict() for _ in range(n_nodes)]
        self.migrations = 0

    # ------------------------------------------------------------------
    # static assignment
    # ------------------------------------------------------------------
    def static_home(self, block: int) -> int:
        """Initial static owner: pages round-robin across nodes.

        All blocks of one page share a static home, matching a
        page-grained initial distribution of the address space.
        """
        page = (block * self.granularity) // PAGE_SIZE
        return page % self.n_nodes

    # ------------------------------------------------------------------
    # authoritative state
    # ------------------------------------------------------------------
    def home(self, block: int) -> Optional[int]:
        """The current home, or None if the block was never touched."""
        return self._home.get(block)

    def home_or_static(self, block: int) -> int:
        h = self._home.get(block)
        return self.static_home(block) if h is None else h

    def is_claimed(self, block: int) -> bool:
        return block in self._home

    def place(self, block: int, node: int) -> None:
        """Setup-time placement (no cost, models init-phase first touch)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"bad node {node}")
        self._home[block] = node

    def place_region(self, addr: int, size: int, node: int) -> None:
        first = addr // self.granularity
        last = (addr + size - 1) // self.granularity
        for b in range(first, last + 1):
            self._home[b] = node

    def claim_first_touch(self, block: int, node: int) -> bool:
        """Runtime first-touch migration.

        Returns True if this call performed the migration (the caller
        then charges the claim message cost); False if the block already
        has a home.
        """
        if block in self._home:
            return False
        self._home[block] = node
        if node != self.static_home(block):
            self.migrations += 1
        return True

    # ------------------------------------------------------------------
    # per-node cached hints
    # ------------------------------------------------------------------
    def cached_home(self, node: int, block: int) -> Optional[int]:
        return self._cached[node].get(block)

    def learn(self, node: int, block: int, home: int) -> None:
        self._cached[node][block] = home

    def route_target(self, node: int, block: int) -> int:
        """Where this node sends a request for ``block``.

        The cached hint if present, else the static home.  The receiver
        forwards if it is not the current home.
        """
        hint = self._cached[node].get(block)
        return self.static_home(block) if hint is None else hint
