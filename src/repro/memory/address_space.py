"""The shared virtual address space and its allocator.

Applications allocate named segments before the parallel phase (the
SPLASH-2 ``G_MALLOC`` idiom).  Segments are page-aligned by default --
separate data structures never share a page unless the application
explicitly packs them, which is exactly how the real programs behave
and is what creates (or avoids) false sharing at coarse granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.config import PAGE_SIZE


@dataclass(frozen=True)
class Segment:
    """A named allocation in the shared address space."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, offset: int) -> int:
        """Byte address of ``offset`` inside the segment, bounds-checked."""
        if not 0 <= offset < self.size:
            raise IndexError(
                f"offset {offset} out of range for segment {self.name!r} "
                f"(size {self.size})"
            )
        return self.base + offset

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressSpace:
    """Bump allocator over the shared virtual address space."""

    def __init__(self, base: int = 0x10000):
        self._next = base
        self._segments: Dict[str, Segment] = {}
        self._ordered: List[Segment] = []

    def alloc(self, size: int, name: str, align: int = PAGE_SIZE) -> Segment:
        """Allocate ``size`` bytes with the given alignment.

        ``align`` must be a power of two.  Unique names are enforced so
        application code can look segments up by name.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        if name in self._segments:
            raise ValueError(f"segment {name!r} already allocated")
        base = (self._next + align - 1) & ~(align - 1)
        seg = Segment(name=name, base=base, size=size)
        self._next = base + size
        self._segments[name] = seg
        self._ordered.append(seg)
        return seg

    def segment(self, name: str) -> Segment:
        return self._segments[name]

    def segment_at(self, addr: int) -> Optional[Segment]:
        """The segment containing ``addr``, or None (linear scan; used
        only for diagnostics, never on the hot path)."""
        for seg in self._ordered:
            if seg.contains(addr):
                return seg
        return None

    @property
    def segments(self) -> List[Segment]:
        return list(self._ordered)

    @property
    def high_water(self) -> int:
        """One past the highest allocated address."""
        return self._next
