"""Shared-memory substrate: address space, blocks, access-control tags,
per-node backing stores, and the home directory with first-touch
migration (paper Section 2).
"""

from repro.memory.blocks import BlockSpace
from repro.memory.address_space import AddressSpace, Segment
from repro.memory.access_control import INV, RO, RW, AccessControl, tag_name
from repro.memory.storage import NodeStore
from repro.memory.home import HomeTable

__all__ = [
    "BlockSpace",
    "AddressSpace",
    "Segment",
    "AccessControl",
    "INV",
    "RO",
    "RW",
    "tag_name",
    "NodeStore",
    "HomeTable",
]
