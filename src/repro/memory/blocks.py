"""Block/granularity arithmetic.

A *block* is the unit of coherence (64, 256, 1024 or 4096 bytes); a
*page* is the 4096-byte unit of virtual-memory mapping.  All protocols
operate on block ids; applications operate on byte regions which the
runtime decomposes into blocks here.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.cluster.config import PAGE_SIZE


class BlockSpace:
    """Maps byte addresses to coherence-block ids for one granularity."""

    __slots__ = ("granularity", "blocks_per_page")

    def __init__(self, granularity: int):
        if granularity <= 0 or not (
            PAGE_SIZE % granularity == 0 or granularity % PAGE_SIZE == 0
        ):
            raise ValueError(
                f"granularity {granularity} must divide the page size or be "
                "a multiple of it"
            )
        self.granularity = granularity
        self.blocks_per_page = max(1, PAGE_SIZE // granularity)

    def block_of(self, addr: int) -> int:
        if addr < 0:
            raise ValueError("negative address")
        return addr // self.granularity

    def base_of(self, block: int) -> int:
        return block * self.granularity

    def page_of_block(self, block: int) -> int:
        return (block * self.granularity) // PAGE_SIZE

    def blocks_in_region(self, addr: int, size: int) -> range:
        """All block ids overlapping ``[addr, addr+size)``."""
        if size <= 0:
            return range(0)
        first = addr // self.granularity
        last = (addr + size - 1) // self.granularity
        return range(first, last + 1)

    def block_slices(self, addr: int, size: int) -> Iterator[Tuple[int, int, int, int]]:
        """Decompose a region into per-block pieces.

        Yields ``(block, offset_in_block, region_offset, length)`` for
        each overlapped block, in address order.  Used when real bytes
        move between application buffers and block copies.
        """
        g = self.granularity
        end = addr + size
        pos = addr
        while pos < end:
            block = pos // g
            off = pos - block * g
            length = min(g - off, end - pos)
            yield block, off, pos - addr, length
            pos += length

    def fragmentation(self, useful_bytes: int, blocks_touched: int) -> float:
        """Fraction of fetched bytes that were not requested.

        The paper's Section 5.2.2 metric: with 4096-byte blocks, reading
        an 8-byte element fetches a full page, so fragmentation is
        ``1 - 8/4096 > 99%``.
        """
        fetched = blocks_touched * self.granularity
        if fetched == 0:
            return 0.0
        return 1.0 - min(useful_bytes, fetched) / fetched
