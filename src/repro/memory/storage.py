"""Per-node backing stores holding real block contents.

Every node caches blocks of the shared address space in local memory;
the contents are real byte buffers -- flat ``numpy`` arrays under the
fast simcore backend, ``bytearray`` under the pure-python fallback --
so that the HLRC twin/diff machinery operates on actual data and the
correctness tests can verify that values written on one node are the
values read on another.

Blocks materialize lazily, zero-filled -- the DSM's initial contents.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.simcore import alloc_block, as_payload, copy_of, empty_block


class NodeStore:
    """One node's local copies of coherence blocks."""

    __slots__ = ("granularity", "_blocks")

    def __init__(self, granularity: int):
        self.granularity = granularity
        self._blocks: Dict[int, bytearray] = {}

    def block(self, block_id: int):
        """The local copy of a block, created zero-filled on demand."""
        buf = self._blocks.get(block_id)
        if buf is None:
            buf = alloc_block(self.granularity)
            self._blocks[block_id] = buf
        return buf

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    def install(self, block_id: int, data) -> None:
        """Overwrite the local copy with fetched contents."""
        if len(data) != self.granularity:
            raise ValueError(
                f"block data length {len(data)} != granularity {self.granularity}"
            )
        self.block(block_id)[:] = as_payload(data)

    def snapshot(self, block_id: int):
        """An independent copy of the block (twin creation, messaging)."""
        return copy_of(self.block(block_id))

    def drop(self, block_id: int) -> None:
        """Free the local copy (memory-pressure modeling; optional)."""
        self._blocks.pop(block_id, None)

    # ------------------------------------------------------------------
    # region I/O across block boundaries
    # ------------------------------------------------------------------
    def read_region(self, addr: int, size: int):
        """Copy ``size`` bytes starting at ``addr`` out of local copies."""
        g = self.granularity
        block, off = divmod(addr, g)
        if off + size <= g:
            # Common case: the region sits inside one block.
            return copy_of(self.block(block)[off : off + size])
        out = empty_block(size)
        end = addr + size
        pos = addr
        while pos < end:
            block = pos // g
            off = pos - block * g
            length = min(g - off, end - pos)
            out[pos - addr : pos - addr + length] = self.block(block)[off : off + length]
            pos += length
        return out

    def write_region(self, addr: int, data) -> None:
        """Copy ``data`` into local copies starting at ``addr``."""
        data = as_payload(data)
        g = self.granularity
        size = len(data)
        block, off = divmod(addr, g)
        if off + size <= g:
            self.block(block)[off : off + size] = data
            return
        end = addr + size
        pos = addr
        while pos < end:
            block = pos // g
            off = pos - block * g
            length = min(g - off, end - pos)
            self.block(block)[off : off + length] = data[pos - addr : pos - addr + length]
            pos += length

    def blocks(self) -> Iterator[Tuple[int, bytearray]]:
        return iter(self._blocks.items())

    def __len__(self) -> int:
        return len(self._blocks)
