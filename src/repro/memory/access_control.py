"""The Typhoon-0 fine-grain access-control model.

The Typhoon-0 card tags every coherence block with one of three access
levels and raises a fast exception (~5 us) when a load or store
violates the tag.  We keep one tag table per node; the default state of
every block is INVALID, so a node's first touch always faults -- which
is what triggers demand mapping and first-touch home assignment.

The table itself is a dense per-node byte array (one tag byte per
block id) provided by :mod:`repro.simcore`, with a parallel readable
set so the region hot path keeps its one-C-call membership test
(``permits_read`` is a bound ``set.__contains__``).  Bulk sweeps over
tagged blocks are vectorized under the fast backend and iterate in
ascending block id under both.
"""

from __future__ import annotations

from repro import simcore

#: access tags, ordered by permission
INV = 0  #: no access -- any load or store faults
RO = 1   #: read-only -- stores fault
RW = 2   #: read-write -- no faults

_NAMES = {INV: "INV", RO: "RO", RW: "RW"}


def tag_name(tag: int) -> str:
    return _NAMES[tag]


class AccessControl(simcore.TagArray):
    """Per-node block tag table (one instance per node).

    A thin domain alias for the simcore tag-array kernel; the full API
    (``tag``/``permits``/``set_tag``/``invalidate``/``downgrade``/
    ``blocks_with_access``/``permits_read``/``__len__``) lives on the
    backend-selected base class.
    """

    __slots__ = ()
