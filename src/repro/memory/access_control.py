"""The Typhoon-0 fine-grain access-control model.

The Typhoon-0 card tags every coherence block with one of three access
levels and raises a fast exception (~5 us) when a load or store
violates the tag.  We keep one tag table per node; the default state of
every block is INVALID, so a node's first touch always faults -- which
is what triggers demand mapping and first-touch home assignment.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

#: access tags, ordered by permission
INV = 0  #: no access -- any load or store faults
RO = 1   #: read-only -- stores fault
RW = 2   #: read-write -- no faults

_NAMES = {INV: "INV", RO: "RO", RW: "RW"}


def tag_name(tag: int) -> str:
    return _NAMES[tag]


class AccessControl:
    """Per-node block tag table (one instance per node)."""

    __slots__ = ("_tags", "permits_read")

    def __init__(self) -> None:
        self._tags: Dict[int, int] = {}
        #: fast-path alias: a block permits reads iff it has any tag
        #: (the table is sparse, INVALID entries are never stored), so
        #: read-permission checks are a bound dict.__contains__ -- one
        #: C call on the region-access hot path.
        self.permits_read = self._tags.__contains__

    def tag(self, block: int) -> int:
        return self._tags.get(block, INV)

    def permits(self, block: int, write: bool) -> bool:
        """Does the current tag allow the access (no fault)?"""
        t = self._tags.get(block, INV)
        return t == RW or (t == RO and not write)

    def set_tag(self, block: int, tag: int) -> None:
        if tag not in _NAMES:
            raise ValueError(f"bad tag {tag}")
        if tag == INV:
            # Keep the table sparse: INVALID is the default.
            self._tags.pop(block, None)
        else:
            self._tags[block] = tag

    def invalidate(self, block: int) -> bool:
        """Drop to INVALID.  Returns True if the block had any access."""
        return self._tags.pop(block, None) is not None

    def downgrade(self, block: int) -> bool:
        """RW -> RO (used when SC recalls an exclusive copy for a read).

        Returns True if the block was RW.
        """
        if self._tags.get(block) == RW:
            self._tags[block] = RO
            return True
        return False

    def blocks_with_access(self) -> Iterator[Tuple[int, int]]:
        """All (block, tag) pairs with non-INVALID tags."""
        return iter(self._tags.items())

    def __len__(self) -> int:
        return len(self._tags)
