"""Systematic exploration of litmus schedules: stateless DFS + DPOR.

The driver enumerates event interleavings of one litmus/protocol/
granularity cell.  Exploration is *stateless*: the simulator has no
snapshot/restore, so backtracking re-executes a fresh machine under a
forced schedule prefix (a list of event sequence numbers -- see
:class:`~repro.mc.scheduler.ControlledScheduler`); sequence numbers are
deterministic given identical choices, so a prefix uniquely identifies
a partial execution.

Two exploration modes:

* **naive** -- branch on every enabled event at every step: the full
  interleaving tree, capped by ``max_schedules``.
* **dpor** -- dynamic partial-order reduction in the style of
  Flanagan & Godefroid: after each complete execution, find *races*
  (pairs of steps that are dependent by footprint, adjacent in the
  happens-before order, and not causally related through event
  creation) and schedule the racing event -- or its earliest pending
  ancestor -- as an alternative at the earlier point.  Only schedules
  that can change the outcome are revisited; commuting interleavings
  are pruned.

Every explored schedule runs under the PR 2 checkers (invariant
sanitizer always; race detector on race-free litmuses) and has its
final outcome checked against the litmus's allowed set for the
protocol's memory model.  The first failing schedule is kept as a
:class:`Counterexample` whose full seq listing replays exactly via
:func:`replay`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check import install_checkers
from repro.cluster.config import NotificationMechanism
from repro.mc.litmus import Litmus, model_of
from repro.mc.scheduler import (
    ControlledScheduler,
    ReplayDivergence,
    Step,
    TraceBudgetExceeded,
    conflict,
    format_trace,
)
from repro.runtime.program import run_program
from repro.sim.engine import SimulationError


@dataclass
class Counterexample:
    """A failing schedule, replayable via :func:`replay`."""

    litmus: str
    protocol: str
    granularity: int
    reason: str
    #: full forced schedule: the seq of every step, in order
    schedule: List[int]
    outcome: Optional[tuple]
    trace_text: str

    def describe(self) -> str:
        return (
            f"{self.litmus}/{self.protocol}/g{self.granularity}: "
            f"{self.reason}\n{self.trace_text}"
        )

    def to_dict(self) -> dict:
        return {
            "litmus": self.litmus,
            "protocol": self.protocol,
            "granularity": self.granularity,
            "reason": self.reason,
            "schedule": list(self.schedule),
            "outcome": list(self.outcome) if self.outcome is not None else None,
        }


@dataclass
class ExplorationResult:
    """Everything one exploration cell produced."""

    litmus: str
    protocol: str
    granularity: int
    dpor: bool
    #: complete schedules executed
    schedules: int = 0
    #: total events dispatched across all schedules
    transitions: int = 0
    #: length of the longest schedule
    max_trace_len: int = 0
    #: outcome tuple -> number of schedules that produced it
    outcomes: Dict[tuple, int] = field(default_factory=dict)
    #: outcomes outside the model's allowed set -> schedule count
    forbidden: Dict[tuple, int] = field(default_factory=dict)
    #: schedules with sanitizer/race findings or deadlocks/crashes
    check_failures: int = 0
    #: True when the whole schedule space was explored within budget
    complete: bool = False
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return not self.forbidden and self.check_failures == 0

    def to_dict(self) -> dict:
        return {
            "litmus": self.litmus,
            "protocol": self.protocol,
            "granularity": self.granularity,
            "dpor": self.dpor,
            "schedules": self.schedules,
            "transitions": self.transitions,
            "max_trace_len": self.max_trace_len,
            "complete": self.complete,
            "ok": self.ok,
            "outcomes": {
                " ".join(map(str, k)): v for k, v in sorted(self.outcomes.items())
            },
            "forbidden": {
                " ".join(map(str, k)): v for k, v in sorted(self.forbidden.items())
            },
            "check_failures": self.check_failures,
            "counterexample": (
                self.counterexample.to_dict() if self.counterexample else None
            ),
        }


class _Frame:
    """One depth of the DFS: the enabled set seen there, the choices
    already taken (done), the pending alternatives (todo), the sleep
    set at entry, and footprints of explored choices (done_res) for
    building child sleep sets."""

    __slots__ = ("enabled", "chosen", "done", "todo", "sleep", "done_res")

    def __init__(self, enabled: Tuple[int, ...], chosen: int, sleep: dict):
        self.enabled = enabled
        self.chosen = chosen
        self.done = {chosen}
        self.todo: set = set()
        self.sleep = sleep
        self.done_res: dict = {}


def _flatten(results) -> tuple:
    return tuple(x for r in results for x in (r if r is not None else ()))


class Explorer:
    """DFS over the schedules of one litmus/protocol/granularity cell."""

    def __init__(
        self,
        litmus: Litmus,
        protocol: str,
        granularity: int = 64,
        *,
        dpor: bool = True,
        max_schedules: int = 5_000,
        max_steps: int = 20_000,
        mechanism: NotificationMechanism = NotificationMechanism.POLLING,
    ):
        self.litmus = litmus
        self.protocol = protocol
        self.granularity = granularity
        self.dpor = dpor
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.mechanism = mechanism
        self.allowed = litmus.allowed_for(protocol)

    # ------------------------------------------------------------------
    # executing one schedule
    # ------------------------------------------------------------------
    def _execute(self, prefix: List[int], sleep=None, sleep_from: int = 0):
        """Run one schedule; returns (scheduler, outcome, report, error)."""
        inst = self.litmus.instantiate(
            self.protocol, self.granularity, mechanism=self.mechanism
        )
        sched = ControlledScheduler(
            inst.machine,
            forced=prefix,
            max_steps=self.max_steps,
            initial_sleep=sleep,
            sleep_from=sleep_from,
        )
        checkers = install_checkers(
            inst.machine,
            races=self.litmus.race_free,
            invariants=True,
        )
        outcome = None
        error: Optional[BaseException] = None
        try:
            result = run_program(
                inst.machine, inst.program, nprocs=inst.nprocs, **inst.kwargs
            )
            outcome = _flatten(result.results)
        except (TraceBudgetExceeded, ReplayDivergence):
            # Exploration bugs / budget blowouts abort the whole cell;
            # they are never legitimate schedule outcomes.
            raise
        except (SimulationError, RuntimeError) as exc:
            error = exc
        report = checkers.report()
        return sched, outcome, report, error

    def _judge(self, outcome, report, error) -> Optional[str]:
        """None when the schedule is fine, else the failure reason."""
        if error is not None:
            return f"{type(error).__name__}: {error}"
        if not report.ok:
            return f"checker findings: {report.describe()}"
        if self.allowed is not None and outcome not in self.allowed:
            return f"forbidden outcome {outcome} (model {model_of(self.protocol)})"
        return None

    # ------------------------------------------------------------------
    # DPOR race analysis
    # ------------------------------------------------------------------
    def _add_backtracks(
        self,
        trace: List[Step],
        frames: List[_Frame],
        parent: Dict[int, int],
    ) -> None:
        """Flanagan-Godefroid style backtrack-point computation.

        ``i`` races with ``j`` when their footprints conflict, ``i`` is
        not a creation ancestor of ``j``, and no intermediate step is
        happens-before ordered between them (the race is *immediate*;
        non-adjacent dependent pairs are reached transitively by later
        re-analyses).  For each race, the alternative scheduled at
        ``i`` is ``j``'s earliest pending ancestor at that point.
        """
        n = len(trace)
        index_of = {st.seq: k for k, st in enumerate(trace)}
        # hb[j]: bitmask of trace indices that happen-before j through
        # dependence edges and event-creation edges, transitively.
        hb = [0] * n
        for j in range(n):
            m = 0
            pj = trace[j].parent
            if pj is not None and pj in index_of:
                pi = index_of[pj]
                m |= hb[pi] | (1 << pi)
            for i in range(j):
                if not (m >> i) & 1 and conflict(
                    trace[i].resources, trace[j].resources
                ):
                    m |= hb[i] | (1 << i)
            hb[j] = m

        # creation-ancestor chains (seq -> seq)
        def ancestors(seq: int):
            chain = []
            p = parent.get(seq)
            while p is not None:
                chain.append(p)
                p = parent.get(p)
            return chain

        for j in range(n):
            res_j = trace[j].resources
            anc_j = set(ancestors(trace[j].seq))
            for i in range(j - 1, -1, -1):
                if trace[i].seq in anc_j:
                    continue
                if not conflict(trace[i].resources, res_j):
                    continue
                # immediate race? no k with i ->hb k ->hb j strictly
                # between them
                immediate = True
                for k in range(i + 1, j):
                    if (hb[k] >> i) & 1 and (hb[j] >> k) & 1:
                        immediate = False
                        break
                if not immediate:
                    continue
                frame = frames[i]
                enabled = set(frame.enabled)
                # schedule j itself, or its earliest ancestor that was
                # already pending at point i
                cand = None
                for seq in [trace[j].seq] + ancestors(trace[j].seq):
                    if seq in enabled:
                        cand = seq
                        break
                if cand is None:
                    # conservative fallback: branch on everything
                    frame.todo.update(enabled)
                elif cand != frame.chosen:
                    frame.todo.add(cand)

    # ------------------------------------------------------------------
    # the DFS loop
    # ------------------------------------------------------------------
    def run(self) -> ExplorationResult:
        res = ExplorationResult(
            litmus=self.litmus.name,
            protocol=self.protocol,
            granularity=self.granularity,
            dpor=self.dpor,
        )
        prefix: List[int] = []
        frames: List[_Frame] = []
        sleep: dict = {}
        sleep_from = 0
        while True:
            sched, outcome, report, error = self._execute(
                prefix, sleep=sleep, sleep_from=sleep_from
            )
            trace = sched.trace
            res.schedules += 1
            res.transitions += len(trace)
            res.max_trace_len = max(res.max_trace_len, len(trace))
            reason = self._judge(outcome, report, error)
            if outcome is not None:
                res.outcomes[outcome] = res.outcomes.get(outcome, 0) + 1
                if self.allowed is not None and outcome not in self.allowed:
                    res.forbidden[outcome] = res.forbidden.get(outcome, 0) + 1
            if reason is not None:
                if error is not None or not report.ok:
                    res.check_failures += 1
                if res.counterexample is None:
                    res.counterexample = Counterexample(
                        litmus=self.litmus.name,
                        protocol=self.protocol,
                        granularity=self.granularity,
                        reason=reason,
                        schedule=[st.seq for st in trace],
                        outcome=outcome,
                        trace_text=format_trace(trace),
                    )
            # grow the frame stack with the fresh suffix
            del frames[len(prefix):]
            for k in range(len(prefix), len(trace)):
                st = trace[k]
                frames.append(
                    _Frame(st.enabled, st.seq, sched.sleep_log[k] or {})
                )
            for k, st in enumerate(trace):
                frames[k].done_res[st.seq] = st.resources
            if self.dpor:
                self._add_backtracks(trace, frames, sched.parent)
            else:
                for k, st in enumerate(trace):
                    if len(st.enabled) > 1:
                        frames[k].todo.update(st.enabled)
            # deepest frame with a pending, non-slept alternative
            depth = choice = None
            for i in range(len(frames) - 1, -1, -1):
                f = frames[i]
                while True:
                    avail = f.todo - f.done
                    if not avail:
                        break
                    c = min(avail)
                    if self.dpor and c in f.sleep:
                        # An earlier subtree already covers every
                        # behavior that starts with c here.
                        f.done.add(c)
                        continue
                    depth, choice = i, c
                    break
                if depth is not None:
                    break
            if depth is None:
                res.complete = True
                break
            if res.schedules >= self.max_schedules:
                break
            f = frames[depth]
            # child sleep set: everything asleep here plus the choices
            # whose subtrees are fully explored (the wake rule is
            # applied inside the scheduler once the new choice runs)
            sleep = dict(f.sleep)
            if self.dpor:
                for t in f.done:
                    r = f.done_res.get(t)
                    if r is not None:
                        sleep[t] = r
            sleep_from = depth
            f.done.add(choice)
            f.chosen = choice
            del frames[depth + 1:]
            prefix = [fr.chosen for fr in frames]
        return res


def explore(
    litmus: Litmus,
    protocol: str,
    granularity: int = 64,
    **kw,
) -> ExplorationResult:
    """Convenience wrapper: build an :class:`Explorer` and run it."""
    return Explorer(litmus, protocol, granularity, **kw).run()


def replay(
    litmus: Litmus,
    protocol: str,
    granularity: int,
    schedule: List[int],
    *,
    mechanism: NotificationMechanism = NotificationMechanism.POLLING,
    max_steps: int = 20_000,
):
    """Re-execute one recorded schedule on a fresh machine.

    Returns ``(trace, outcome, report, error)``; the trace's seq
    listing equals ``schedule`` (replay is exact, enforced by
    :class:`~repro.mc.scheduler.ControlledScheduler`).
    """
    ex = Explorer(
        litmus, protocol, granularity, mechanism=mechanism, max_steps=max_steps
    )
    sched, outcome, report, error = ex._execute(list(schedule))
    return sched.trace, outcome, report, error
