"""Litmus tests: tiny programs with per-memory-model outcome sets.

Each litmus is a 2-4 node, 1-2 block program in the classic
memory-model litmus shapes (store buffering, message passing, load
buffering, independent reads of independent writes, lock hand-off,
barrier reset).  A litmus declares, per memory model, the set of final
outcomes the model **allows**; the exploration driver flags any
explored schedule whose outcome falls outside that set, plus any
schedule on which the PR 2 invariant sanitizer (or, for race-free
litmuses, the race detector) reports a finding.

Models
------
``sc``
    Sequential consistency: every read returns the value of the last
    write in a single global interleaving of all accesses.
``lrc``
    Lazy release consistency (the SW-LRC/HLRC contract): writes become
    visible to another node only through a release -> acquire chain on
    the same synchronization variable.  Unsynchronized (racy) reads may
    return either value, so the racy litmuses allow every outcome and
    only the synchronized ones constrain it.

An ``allowed`` value of ``None`` means *any outcome is allowed* (the
schedule is still checked by the sanitizer).  Protocols map to models
through :func:`model_of`, which reads the declared ``memory_model``
from :mod:`repro.core.registry` -- a protocol is vetted against the
contract it *claims*, so tardis (timestamp leases, no notices) faces
the same ``lrc`` outcome sets as SW-LRC/HLRC.

Outcomes are the flattened per-rank generator return values -- each
rank returns a tuple of the values it observed, and the outcome tuple
is their concatenation in rank order.  Reading the observations out of
the generators (rather than out of post-run memory) means an outcome
never depends on which node happens to hold a block copy after the
run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.cluster.config import MachineParams, NotificationMechanism
from repro.cluster.machine import Machine

Outcome = Tuple[int, ...]


def model_of(protocol: str) -> str:
    """Memory model a protocol claims to implement (from the registry)."""
    from repro.core.registry import memory_model_of

    return memory_model_of(protocol)


@dataclass
class LitmusInstance:
    """One configured machine ready for a single explored schedule."""

    machine: Machine
    program: Callable
    nprocs: int
    kwargs: dict


@dataclass(frozen=True)
class Litmus:
    """One litmus test: program shape + per-model allowed outcomes."""

    name: str
    title: str
    n_procs: int
    n_vars: int
    #: home node per variable (index modulo n_procs)
    homes: Tuple[int, ...]
    #: True when every access is synchronized -- the race detector is
    #: asserted clean on every schedule in addition to the outcome sets
    race_free: bool
    #: model name -> allowed outcome set (None = every outcome allowed)
    allowed: "Dict[str, Optional[FrozenSet[Outcome]]]"
    body: Callable
    doc: str = ""

    def allowed_for(self, protocol: str) -> Optional[FrozenSet[Outcome]]:
        return self.allowed.get(model_of(protocol))

    def instantiate(
        self,
        protocol: str,
        granularity: int = 64,
        mechanism: NotificationMechanism = NotificationMechanism.POLLING,
    ) -> LitmusInstance:
        """Build a fresh machine with one block per variable.

        Variables sit at consecutive granularity-aligned addresses, so
        every granularity gives the same block-per-variable layout (the
        litmus logic is granularity-independent; the schedules are not,
        since message sizes scale with the block).
        """
        params = MachineParams(
            n_nodes=self.n_procs,
            granularity=granularity,
            mechanism=mechanism,
        )
        machine = Machine(params, protocol=protocol)
        seg = machine.alloc(granularity * self.n_vars, self.name)
        addrs = [seg.base + k * granularity for k in range(self.n_vars)]
        for k, addr in enumerate(addrs):
            machine.place(addr, granularity, self.homes[k] % self.n_procs)
        return LitmusInstance(
            machine=machine,
            program=self.body,
            nprocs=self.n_procs,
            kwargs={"addrs": addrs},
        )


# ======================================================================
# programs
# ======================================================================
def _sb(dsm, rank, nprocs, addrs):
    """Store buffering: each node writes its own flag, reads the other's."""
    x, y = addrs
    mine, other = (x, y) if rank == 0 else (y, x)
    yield from dsm.write(mine, b"\x01")
    v = yield from dsm.read(other, 1)
    return (int(v[0]),)


def _mp(dsm, rank, nprocs, addrs):
    """Message passing under a lock: data then flag, read in reverse."""
    x, f = addrs
    if rank == 0:
        yield from dsm.acquire(0)
        yield from dsm.write(x, b"\x2a")  # 42
        yield from dsm.write(f, b"\x01")
        yield from dsm.release(0)
        return ()
    yield from dsm.acquire(0)
    rf = yield from dsm.read(f, 1)
    rx = yield from dsm.read(x, 1)
    yield from dsm.release(0)
    return (int(rf[0]), int(rx[0]))


def _lb(dsm, rank, nprocs, addrs):
    """Load buffering: read the other's flag, then write your own."""
    x, y = addrs
    mine, other = (x, y) if rank == 0 else (y, x)
    v = yield from dsm.read(other, 1)
    yield from dsm.write(mine, b"\x01")
    return (int(v[0]),)


def _iriw(dsm, rank, nprocs, addrs):
    """Independent reads of independent writes, 4 nodes."""
    x, y = addrs
    if rank == 0:
        yield from dsm.write(x, b"\x01")
        return ()
    if rank == 1:
        yield from dsm.write(y, b"\x01")
        return ()
    first, second = (x, y) if rank == 2 else (y, x)
    a = yield from dsm.read(first, 1)
    b = yield from dsm.read(second, 1)
    return (int(a[0]), int(b[0]))


def _lock_handoff(dsm, rank, nprocs, addrs):
    """Each node increments a lock-protected counter twice and
    records the values it observed."""
    c = addrs[0]
    seen = []
    for _ in range(2):
        yield from dsm.acquire(0)
        v = yield from dsm.read(c, 1)
        seen.append(int(v[0]))
        yield from dsm.write(c, bytes([int(v[0]) + 1]))
        yield from dsm.release(0)
    return tuple(seen)


def _barrier_reset(dsm, rank, nprocs, addrs):
    """Three episodes of one barrier: write-before, read-after, then a
    second writer in the next phase -- exercises episode reset and
    the all-to-all notice exchange at barriers."""
    x = addrs[0]
    out = []
    if rank == 0:
        yield from dsm.write(x, b"\x01")
    yield from dsm.barrier(0)
    v = yield from dsm.read(x, 1)
    out.append(int(v[0]))
    yield from dsm.barrier(0)
    if rank == 1:
        yield from dsm.write(x, b"\x02")
    yield from dsm.barrier(0)
    v = yield from dsm.read(x, 1)
    out.append(int(v[0]))
    return tuple(out)


# ======================================================================
# allowed-outcome sets
# ======================================================================
def _all_binary(n: int) -> FrozenSet[Outcome]:
    return frozenset(itertools.product((0, 1), repeat=n))


#: lock hand-off: the four observed counter values partition 0..3 with
#: each node's pair increasing (its tenures are program-ordered)
_HANDOFF_OK = frozenset(
    (a, b, c, d)
    for (a, b, c, d) in itertools.permutations(range(4))
    if a < b and c < d
)

LITMUS: "Dict[str, Litmus]" = {}


def _add(litmus: Litmus) -> Litmus:
    LITMUS[litmus.name] = litmus
    return litmus


_add(Litmus(
    name="sb",
    title="store buffering",
    n_procs=2, n_vars=2, homes=(0, 1), race_free=False,
    allowed={
        # SC forbids both reads missing both writes.
        "sc": _all_binary(2) - {(0, 0)},
        "lrc": None,
    },
    body=_sb,
    doc="w x=1; r y  ||  w y=1; r x",
))

_add(Litmus(
    name="mp",
    title="message passing (lock-synchronized)",
    n_procs=2, n_vars=2, homes=(0, 1), race_free=True,
    allowed={
        # The reader's critical section runs entirely before or
        # entirely after the writer's: flag and data travel together.
        "sc": frozenset({(0, 0), (1, 42)}),
        "lrc": frozenset({(0, 0), (1, 42)}),
    },
    body=_mp,
    doc="lock{w x=42; w f=1}  ||  lock{r f; r x}",
))

_add(Litmus(
    name="lb",
    title="load buffering",
    n_procs=2, n_vars=2, homes=(0, 1), race_free=False,
    allowed={
        # (1,1) needs both reads to see writes that happen after them:
        # impossible in any operational execution (no speculation).
        "sc": _all_binary(2) - {(1, 1)},
        "lrc": _all_binary(2) - {(1, 1)},
    },
    body=_lb,
    doc="r y; w x=1  ||  r x; w y=1",
))

_add(Litmus(
    name="iriw",
    title="independent reads of independent writes",
    n_procs=4, n_vars=2, homes=(0, 1), race_free=False,
    allowed={
        # SC forbids the two readers disagreeing on the write order.
        "sc": _all_binary(4) - {(1, 0, 1, 0)},
        "lrc": None,
    },
    body=_iriw,
    doc="w x=1 || w y=1 || r x; r y || r y; r x",
))

_add(Litmus(
    name="lock-handoff",
    title="lock-protected counter hand-off",
    n_procs=2, n_vars=1, homes=(0,), race_free=True,
    allowed={
        # Every model: mutual exclusion + coherent hand-off means the
        # observed values are exactly 0..3, one per tenure, in global
        # tenure order.  A lost update duplicates a value.
        "sc": _HANDOFF_OK,
        "lrc": _HANDOFF_OK,
    },
    body=_lock_handoff,
    doc="2x lock{v=r c; w c=v+1} per node; observed v's partition 0..3",
))

_add(Litmus(
    name="barrier-reset",
    title="barrier episodes publish phased writes",
    n_procs=2, n_vars=1, homes=(0,), race_free=True,
    allowed={
        "sc": frozenset({(1, 2, 1, 2)}),
        "lrc": frozenset({(1, 2, 1, 2)}),
    },
    body=_barrier_reset,
    doc="w x=1; bar; r x; bar; (rank1: w x=2); bar; r x",
))


def get_litmus(name: str) -> Litmus:
    try:
        return LITMUS[name]
    except KeyError:
        raise KeyError(
            f"unknown litmus {name!r}; available: {sorted(LITMUS)}"
        ) from None


def litmus_names() -> List[str]:
    return sorted(LITMUS)
