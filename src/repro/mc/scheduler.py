"""Controlled scheduling of one simulated machine for model checking.

:class:`ControlledScheduler` is the :class:`~repro.sim.engine.SchedulerPolicy`
the exploration driver installs on a machine under test.  Per dispatch it

* computes the **enabled set** -- the engine's ready events minus the
  orderings the wire guarantees (see below); exploring only enabled
  events keeps every explored schedule a *feasible* schedule, so a
  counterexample is never an artifact of reordering the network could
  not produce;
* follows a **forced schedule** (a list of event sequence numbers) as
  far as it reaches, then continues deterministically with the lowest
  ``(time, seq)`` enabled event.  Sequence numbers are assigned
  deterministically given identical dispatch choices, so a forced
  prefix replays the exact same partial execution on a fresh machine --
  the basis of stateless DFS backtracking;
* records a :class:`Step` per dispatch: the chosen event, the enabled
  alternatives, the event's **dependency footprint** (which node,
  blocks, locks and barriers it touched), and its creation parent.
  Footprints drive the partial-order reduction in
  :mod:`repro.mc.explore`; parentage lets the explorer map an event
  back to the pending ancestor that leads to it.

Wire-order constraints preserved (the audited contract of
:mod:`repro.net.myrinet`, pinned by the network tests): messages on the
same (src, dst) link deliver in send order unless the later message is
strictly smaller (small messages may overtake large ones, never the
reverse); node-local messages are FIFO among themselves; and handler
completions at one node retire in delivery order (handlers of a node
serialize on its CPU).  Everything else -- cross-link arrival order,
notification timing, process resumption interleaving -- is fair game
for exploration.

Footprints are *dynamic*: a base footprint is derived from the event's
callable (delivery and handler events name their message and node; a
process resumption names its rank), and the instrumentation hooks
(:class:`~repro.hooks.Hooks`) add the blocks/locks/barriers the event
actually touched while it ran.  Unrecognized callables get a
conflicts-with-everything footprint, which can only over-approximate
(more interleavings explored, never fewer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.hooks import Hooks
from repro.sim.engine import SchedulerPolicy, SimulationError
from repro.sim.process import Process

#: footprint element that conflicts with every other footprint
GLOBAL = ("*",)


class ReplayDivergence(SimulationError):
    """A forced schedule asked for an event that is not enabled.

    Replays are deterministic, so this indicates either a corrupted
    schedule (wrong litmus/protocol/granularity for the trace) or
    nondeterminism in the simulator -- both are bugs, never expected.
    """


class TraceBudgetExceeded(SimulationError):
    """One schedule ran more steps than the configured budget."""


@dataclass
class Step:
    """One dispatched event in an explored schedule."""

    #: engine sequence number -- the event's stable identity across
    #: replays that share a prefix
    seq: int
    #: simulation time the event carried (informational; exploration
    #: ignores it)
    time: float
    #: human-readable description (see trace rendering)
    label: str
    #: dependency footprint accumulated while the event ran
    resources: FrozenSet[tuple] = frozenset()
    #: seqs of every event that was enabled when this one was chosen
    enabled: Tuple[int, ...] = ()
    #: seq of the event whose dispatch created this one (None for
    #: events posted before the run started)
    parent: Optional[int] = None


def conflict(a: FrozenSet[tuple], b: FrozenSet[tuple]) -> bool:
    """Do two footprints conflict (their dispatch order can matter)?"""
    if GLOBAL in a or GLOBAL in b:
        return True
    return not a.isdisjoint(b)


class _FootprintHooks(Hooks):
    """Feeds application-level observations into the footprint of the
    currently executing event."""

    def __init__(self, sched: "ControlledScheduler"):
        self._s = sched

    def on_region(self, node_id, addr, size, write):
        s = self._s
        blocks = frozenset(
            ("blk", b) for b in s.blockspace.blocks_in_region(addr, size)
        )
        # Attribute the region's blocks to this node's later resumption
        # events too: protocol continuations (tag flips, version bumps)
        # run in frames the hooks cannot see.
        s.proc_blocks[node_id] = blocks
        if s.fp is not None:
            s.fp.update(blocks)

    def on_write_fault(self, node_id, block):
        if self._s.fp is not None:
            self._s.fp.add(("blk", block))

    def on_acquire(self, node_id, lock_id):
        if self._s.fp is not None:
            self._s.fp.add(("lock", lock_id))

    def on_release(self, node_id, lock_id):
        if self._s.fp is not None:
            self._s.fp.add(("lock", lock_id))

    def on_barrier_enter(self, node_id, barrier_id, episode):
        if self._s.fp is not None:
            self._s.fp.add(("bar", barrier_id))

    def on_barrier_exit(self, node_id, barrier_id, episode):
        if self._s.fp is not None:
            self._s.fp.add(("bar", barrier_id))

    def on_sync_applied(self, node_id, payload):
        fp = self._s.fp
        if fp is None:
            return
        notices = getattr(payload, "notices", None)
        if notices:
            for wn in notices:
                fp.add(("blk", wn.block))


class ControlledScheduler(SchedulerPolicy):
    """Scheduler policy that records, constrains and replays schedules."""

    def __init__(
        self,
        machine,
        forced: Sequence[int] = (),
        max_steps: int = 20_000,
        initial_sleep: Optional[Dict[int, FrozenSet[tuple]]] = None,
        sleep_from: int = 0,
    ):
        self.machine = machine
        self.engine = machine.engine
        self.blockspace = machine.blockspace
        self.forced = list(forced)
        self.max_steps = max_steps
        #: sleep set (seq -> footprint): events whose subtrees an
        #: earlier exploration already covered.  ``initial_sleep`` is
        #: the set at entry to step index ``sleep_from``; from there it
        #: evolves by the wake rule (a dependent step wakes a sleeper).
        #: The free-running continuation prefers non-slept events, and
        #: :attr:`sleep_log` records the set at entry to each step for
        #: the explorer's backtracking bookkeeping.
        self.sleep: Dict[int, FrozenSet[tuple]] = dict(initial_sleep or {})
        self.sleep_from = sleep_from
        self.sleep_log: List[Optional[Dict[int, FrozenSet[tuple]]]] = []
        #: the completed schedule so far
        self.trace: List[Step] = []
        #: event seq -> seq of the event whose dispatch created it
        self.parent: Dict[int, int] = {}
        #: footprint of the currently executing event (None when idle)
        self.fp: Optional[set] = None
        #: per-node block set of the node's most recent region op (see
        #: _FootprintHooks.on_region)
        self.proc_blocks: Dict[int, FrozenSet[tuple]] = {}
        self._pending: Optional[Step] = None
        self._pre_seq = 0
        machine.add_hooks(_FootprintHooks(self))
        machine.engine.set_policy(self)

    # ------------------------------------------------------------------
    # event classification
    # ------------------------------------------------------------------
    def _classify(self, entry):
        """('deliver', msg) | ('dispatch', (node, msg)) |
        ('process', proc) | ('other', None)."""
        fn = entry[3]
        owner = getattr(fn, "__self__", None)
        if owner is self.machine:
            name = fn.__name__
            if name == "_deliver":
                return "deliver", entry[4][0]
            if name == "_dispatch":
                return "dispatch", entry[4]
        if isinstance(owner, Process):
            return "process", owner
        return "other", None

    @staticmethod
    def _rank_of(proc: Process) -> Optional[int]:
        name = proc.name
        if name.startswith("rank"):
            try:
                return int(name[4:])
            except ValueError:
                return None
        return None

    def _base_resources(self, kind, detail) -> set:
        if kind == "deliver":
            # Delivery is pure plumbing: it only decides the order in
            # which handlers at the destination get queued (handlers
            # themselves FIFO behind it), so two deliveries to the same
            # node race with each other and with nothing else.  The
            # ("nin", dst) namespace is disjoint from ("node", dst) on
            # purpose.
            return {("nin", detail.dst)}
        if kind == "dispatch":
            node, msg = detail
            out = {("node", node.id)}
            if msg.mtype.startswith("lock_"):
                out.add(("lock", msg.block))
            elif msg.mtype.startswith("barrier_"):
                out.add(("bar", msg.block))
            elif msg.block >= 0:
                out.add(("blk", msg.block))
            return out
        if kind == "process":
            rank = self._rank_of(detail)
            if rank is None:
                return {GLOBAL}
            return {("node", rank)} | set(self.proc_blocks.get(rank, ()))
        return {GLOBAL}

    def _label(self, kind, detail, entry) -> str:
        if kind == "deliver":
            m = detail
            return (
                f"wire  {m.mtype:<14} {m.src}->{m.dst} "
                f"block={m.block} {m.size_bytes}B"
            )
        if kind == "dispatch":
            node, m = detail
            return (
                f"node{node.id} {m.mtype:<14} from {m.src} block={m.block}"
            )
        if kind == "process":
            return f"{detail.name}: resume"
        return f"event {getattr(entry[3], '__name__', repr(entry[3]))}"

    # ------------------------------------------------------------------
    # enabled-set computation
    # ------------------------------------------------------------------
    def enabled_events(self, ready):
        """Filter the ready set down to wire-feasible choices."""
        blocked = set()
        links: Dict[tuple, list] = {}
        node_dispatch: Dict[int, list] = {}
        for e in ready:
            kind, detail = self._classify(e)
            if kind == "deliver":
                m = detail
                links.setdefault((m.src, m.dst), []).append(
                    (e[1], m.size_bytes)
                )
            elif kind == "dispatch":
                node_dispatch.setdefault(detail[0].id, []).append(e[1])
        for (src, dst), pend in links.items():
            if len(pend) < 2:
                continue
            pend.sort()
            for i in range(1, len(pend)):
                seq_i, size_i = pend[i]
                for seq_j, size_j in pend[:i]:
                    # A message overtakes an earlier one on the same
                    # link only by being strictly smaller; local
                    # deliveries are FIFO unconditionally.
                    if src == dst or size_j <= size_i:
                        blocked.add(seq_i)
                        break
        for seqs in node_dispatch.values():
            if len(seqs) > 1:
                seqs.sort()
                blocked.update(seqs[1:])
        if not blocked:
            return ready
        return [e for e in ready if e[1] not in blocked]

    # ------------------------------------------------------------------
    # SchedulerPolicy interface
    # ------------------------------------------------------------------
    def choose(self, ready):
        enabled = self.enabled_events(ready)
        depth = len(self.trace)
        if depth < len(self.forced):
            want = self.forced[depth]
            entry = None
            for e in enabled:
                if e[1] == want:
                    entry = e
                    break
            if entry is None:
                have = [e[1] for e in enabled]
                raise ReplayDivergence(
                    f"forced schedule wants seq {want} at step {depth}, "
                    f"enabled: {have}"
                )
        else:
            entry = enabled[0]
            if self.sleep:
                for e in enabled:
                    if e[1] not in self.sleep:
                        entry = e
                        break
        kind, detail = self._classify(entry)
        self.fp = self._base_resources(kind, detail)
        self._pending = Step(
            seq=entry[1],
            time=entry[0],
            label=self._label(kind, detail, entry),
            enabled=tuple(e[1] for e in enabled),
            parent=self.parent.get(entry[1]),
        )
        self._pre_seq = self.engine.next_seq
        return entry

    def executed(self, entry):
        chosen = entry[1]
        for s in range(self._pre_seq, self.engine.next_seq):
            self.parent[s] = chosen
        step = self._pending
        step.resources = frozenset(self.fp)
        self.fp = None
        self._pending = None
        k = len(self.trace)
        if k >= self.sleep_from:
            self.sleep_log.append(dict(self.sleep))
            if self.sleep:
                res = step.resources
                self.sleep = {
                    t: r
                    for t, r in self.sleep.items()
                    if t != step.seq and not conflict(r, res)
                }
        else:
            self.sleep_log.append(None)
        self.trace.append(step)
        if len(self.trace) >= self.max_steps:
            raise TraceBudgetExceeded(
                f"schedule exceeded {self.max_steps} steps"
            )


def format_trace(trace: Sequence[Step], highlight: int = -1) -> str:
    """Render a schedule as a readable event listing.

    One line per step: index, simulated timestamp, the event label, and
    a ``*`` marker on steps where more than one event was enabled (the
    actual scheduling decisions -- everything else was forced).  Pass
    ``highlight`` to mark one step with ``>``.
    """
    lines = []
    for k, st in enumerate(trace):
        mark = ">" if k == highlight else (
            "*" if len(st.enabled) > 1 else " "
        )
        lines.append(
            f"{mark}[{k:4d}] t={st.time:10.2f}us seq={st.seq:<6d} {st.label}"
        )
    return "\n".join(lines)
