"""Exhaustive small-scope model checking of the DSM protocols.

The PR 2 checkers validate the one schedule the simulator's
deterministic event order happens to produce; this package enumerates
*all* schedules of tiny litmus programs (within wire-order constraints
and budgets) and checks every one against the protocol's memory model
and the invariant sanitizer.  See ``docs/MODELCHECKING.md``.

Layers:

* :mod:`repro.mc.scheduler` -- :class:`ControlledScheduler`, a
  :class:`~repro.sim.engine.SchedulerPolicy` that records, constrains
  and replays event schedules with dependency footprints.
* :mod:`repro.mc.explore` -- stateless DFS with dynamic partial-order
  reduction; produces :class:`ExplorationResult` /
  :class:`Counterexample`.
* :mod:`repro.mc.litmus` -- the litmus catalog (SB, MP, LB, IRIW,
  lock-handoff, barrier-reset) with per-model allowed outcome sets.
* :mod:`repro.mc.broken` -- ``swlrc-broken``, a protocol with a
  deliberately planted bug the suite must catch (imported here, so the
  variant exists whenever mc is in play and never otherwise).
"""

from repro.mc import broken  # noqa: F401  (registers swlrc-broken)
from repro.mc.explore import (
    Counterexample,
    ExplorationResult,
    Explorer,
    explore,
    replay,
)
from repro.mc.litmus import LITMUS, Litmus, get_litmus, litmus_names, model_of
from repro.mc.scheduler import (
    ControlledScheduler,
    ReplayDivergence,
    Step,
    TraceBudgetExceeded,
    format_trace,
)

__all__ = [
    "ControlledScheduler",
    "Counterexample",
    "ExplorationResult",
    "Explorer",
    "LITMUS",
    "Litmus",
    "ReplayDivergence",
    "Step",
    "TraceBudgetExceeded",
    "explore",
    "format_trace",
    "get_litmus",
    "litmus_names",
    "model_of",
    "replay",
]
