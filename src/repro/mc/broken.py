"""A deliberately broken SW-LRC variant: the mc suite's canary.

``swlrc-broken`` drops the last write notice of every release.  The
protocol still clears its dirty set and bumps versions, so the PR 2
invariant sanitizer's release-boundary checks (dirty-survives-release,
notice monotonicity) all pass -- the bug is only visible as a memory
consistency violation: a successor acquiring the same lock keeps a
stale copy it should have invalidated and reads old data.  Exactly the
class of bug schedule enumeration exists to catch, and one the sampled
chaos runs can miss when the default schedule happens to refetch.

Registered on import of :mod:`repro.mc` only, so the production
protocol list (``repro-dsm`` CLI choices, experiment matrices) never
offers it.
"""

from __future__ import annotations

from repro.core.protocol import register
from repro.core.swlrc import SWLRCProtocol


@register
class BrokenSWLRCProtocol(SWLRCProtocol):
    """SW-LRC that 'forgets' one write notice per release."""

    name = "swlrc-broken"

    def _release_flush(self, node):
        notices = yield from super()._release_flush(node)
        # The bug under test: the last dirty block's notice never
        # reaches the successor's acquire.
        return notices[:-1]
