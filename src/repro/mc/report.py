"""Table and JSON rendering of exploration results."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, TextIO

from repro.mc.explore import ExplorationResult

_COLS = (
    "litmus", "protocol", "g", "mode", "schedules", "events",
    "longest", "outcomes", "status",
)


def _status(r: ExplorationResult) -> str:
    if not r.ok:
        return "FAIL"
    return "ok" if r.complete else "budget"


def _row(r: ExplorationResult) -> List[str]:
    return [
        r.litmus,
        r.protocol,
        str(r.granularity),
        "dpor" if r.dpor else "naive",
        str(r.schedules),
        str(r.transitions),
        str(r.max_trace_len),
        str(len(r.outcomes)),
        _status(r),
    ]


def results_table(results: Sequence[ExplorationResult]) -> str:
    """Fixed-width table, one row per exploration cell."""
    rows = [list(_COLS)] + [_row(r) for r in results]
    widths = [max(len(row[i]) for row in rows) for i in range(len(_COLS))]
    lines = []
    for k, row in enumerate(rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if k == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def reduction_lines(
    dpor: Sequence[ExplorationResult],
    naive: Sequence[ExplorationResult],
) -> List[str]:
    """Per-cell DPOR-vs-naive schedule counts (the measured reduction)."""
    by_key: Dict[tuple, ExplorationResult] = {
        (r.litmus, r.protocol, r.granularity): r for r in naive
    }
    out = []
    for r in dpor:
        n = by_key.get((r.litmus, r.protocol, r.granularity))
        if n is None:
            continue
        suffix = "" if n.complete else " (naive hit budget)"
        ratio = n.schedules / r.schedules if r.schedules else float("nan")
        out.append(
            f"{r.litmus}/{r.protocol}: dpor {r.schedules} vs naive "
            f"{n.schedules} schedules ({ratio:.1f}x){suffix}"
        )
    return out


def describe_failures(results: Sequence[ExplorationResult]) -> List[str]:
    out = []
    for r in results:
        if r.ok:
            continue
        head = f"{r.litmus}/{r.protocol}/g{r.granularity}:"
        if r.forbidden:
            shown = ", ".join(
                f"{k}x{v}" for k, v in sorted(r.forbidden.items())
            )
            out.append(f"{head} forbidden outcome(s) {shown}")
        if r.check_failures:
            out.append(f"{head} {r.check_failures} schedule(s) with "
                       "checker findings or crashes")
        if r.counterexample is not None:
            out.append(r.counterexample.describe())
    return out


def to_json(
    results: Sequence[ExplorationResult],
    naive: Optional[Sequence[ExplorationResult]] = None,
) -> dict:
    doc = {"results": [r.to_dict() for r in results]}
    if naive:
        doc["naive"] = [r.to_dict() for r in naive]
    return doc


def write_json(path: str, doc: dict, fp: Optional[TextIO] = None) -> None:
    if fp is not None:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
        return
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
