"""repro: reproduction of "Relaxed Consistency and Coherence Granularity
in DSM Systems: A Performance Evaluation" (Zhou et al., PPoPP 1997).

A discrete-event simulation of a 16-node Typhoon-0/Myrinet cluster
running three software coherence protocols (SC, SW-LRC, HLRC) at four
coherence granularities (64/256/1024/4096 bytes), plus the 12 SPLASH-2
derived applications and the experiment harness that regenerates every
table and figure of the paper's evaluation.

Quick start::

    from repro import MachineParams, Machine, run_program

    params = MachineParams(n_nodes=4, granularity=4096)
    machine = Machine(params, protocol="hlrc")

    def program(dsm, rank, nprocs):
        yield from dsm.barrier(0, participants=nprocs)
        yield from dsm.compute(100.0)
        yield from dsm.barrier(0, participants=nprocs)

    result = run_program(machine, program, nprocs=4)
    print(result.stats.summary())
"""

from repro.cluster.config import (
    GRANULARITIES,
    PAGE_SIZE,
    MachineParams,
    NotificationMechanism,
)
from repro.cluster.machine import Machine
from repro.runtime.dsm import Dsm
from repro.runtime.program import ProgramResult, run_program
from repro.runtime.shared_array import SharedArray, SharedMatrix

__version__ = "1.0.0"

__all__ = [
    "MachineParams",
    "NotificationMechanism",
    "Machine",
    "Dsm",
    "SharedArray",
    "SharedMatrix",
    "run_program",
    "ProgramResult",
    "GRANULARITIES",
    "PAGE_SIZE",
    "__version__",
]
