"""Chaos sweep: degradation curves under seeded interconnect faults.

The question this harness answers is the one the paper's perfect-wire
evaluation cannot: *how gracefully does each protocol / granularity
combination degrade when the interconnect starts dropping, duplicating
and reordering messages?*  Every cell runs with a seeded
:class:`~repro.net.faultplan.FaultSpec` -- same seed, same faults,
bit-identical stats -- and the reliable transport
(:mod:`repro.net.reliable`) recovers losses by retransmission, so the
cost of unreliability shows up as *time* (speedup degradation), not as
wrong answers.

Cells are ordinary matrix cells: they go through
:func:`repro.exec.pool.execute_many`, hit the same disk cache (the
fault spec is part of the config, hence of the cache key), and may be
run under the :mod:`repro.check` race detector / invariant sanitizer --
a protocol that only survives chaos by violating its own invariants
fails loudly here.

A cell whose retransmit budget runs dry dies with ``TransportError``;
the degradation table renders it as ``FAIL`` and
:func:`failure_rows` lists the reason, so a sweep never hides a
protocol collapse inside an average.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import GRANULARITIES
from repro.exec.pool import execute_many
from repro.harness.experiment import RunConfig
from repro.harness.matrix import PROTOCOLS
from repro.harness.tables import PROTO_LABEL, fmt_table
from repro.net.faultplan import FaultSpec

#: default drop-probability axis for the degradation curve; 0.0 is the
#: fault-free baseline (no fault plan, no transport -- the trusted wire)
DEFAULT_RATES = (0.0, 0.01, 0.02, 0.05)


def chaos_spec(
    rate: float,
    seed: int = 0,
    dup_prob: float = 0.01,
    reorder_prob: float = 0.02,
) -> Optional[FaultSpec]:
    """The fault spec for one drop-rate point of the curve.

    ``rate == 0.0`` returns ``None``: the baseline column is the
    *trusted* wire (no transport at all), so the curve's first point is
    exactly the number the paper's tables report and the delta at
    higher rates includes the transport's own overhead.
    """
    if rate == 0.0:
        return None
    return FaultSpec(
        seed=seed, drop_prob=rate, dup_prob=dup_prob, reorder_prob=reorder_prob
    )


def chaos_configs(
    apps: Sequence[str],
    protocols: Sequence[str] = PROTOCOLS,
    granularities: Sequence[int] = GRANULARITIES,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 0,
    dup_prob: float = 0.01,
    reorder_prob: float = 0.02,
    mechanism: str = "polling",
    scale: str = "default",
    nprocs: int = 16,
) -> List[RunConfig]:
    """The full (app x protocol x granularity x drop-rate) cell list."""
    return [
        RunConfig(
            app=app,
            protocol=proto,
            granularity=g,
            mechanism=mechanism,
            nprocs=nprocs,
            scale=scale,
            faults=chaos_spec(rate, seed, dup_prob, reorder_prob),
        )
        for app in apps
        for proto in protocols
        for g in granularities
        for rate in rates
    ]


def chaos_sweep(
    apps: Sequence[str],
    protocols: Sequence[str] = PROTOCOLS,
    granularities: Sequence[int] = GRANULARITIES,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 0,
    dup_prob: float = 0.01,
    reorder_prob: float = 0.02,
    mechanism: str = "polling",
    scale: str = "default",
    nprocs: int = 16,
    jobs: int = 1,
    cache=None,
    events=None,
    timeout: Optional[float] = None,
    check: bool = False,
    progress=None,
) -> Dict[RunConfig, "object"]:
    """Run (or fetch) every cell of the chaos matrix."""
    configs = chaos_configs(
        apps, protocols, granularities, rates, seed, dup_prob, reorder_prob,
        mechanism, scale, nprocs,
    )
    return execute_many(
        configs,
        jobs=jobs,
        cache=cache,
        events=events,
        timeout=timeout,
        check=check,
        progress=progress,
    )


def _rate_of(cfg: RunConfig) -> float:
    return 0.0 if cfg.faults is None else cfg.faults.drop_prob


def degradation_table(
    results: Dict,
    apps: Sequence[str],
    protocols: Sequence[str] = PROTOCOLS,
    granularities: Sequence[int] = GRANULARITIES,
    rates: Sequence[float] = DEFAULT_RATES,
    title: str = "Chaos degradation: speedup vs drop rate",
) -> str:
    """Speedup grid, one row per (app, protocol, granularity), one
    column per drop rate.  Failed cells render as ``FAIL``."""
    index: Dict[Tuple, object] = {
        (c.app, c.protocol, c.granularity, _rate_of(c)): r
        for c, r in results.items()
    }
    rows = []
    for app in apps:
        for proto in protocols:
            for g in granularities:
                row = [app, PROTO_LABEL.get(proto, proto), g]
                for rate in rates:
                    r = index.get((app, proto, g, rate))
                    if r is None:
                        row.append("-")
                    elif r.stats is None:
                        row.append("FAIL")
                    else:
                        row.append(f"{r.speedup:.2f}")
                rows.append(row)
    headers = ["Application", "Protocol", "Gran"] + [
        "base" if rate == 0.0 else f"{rate:g}" for rate in rates
    ]
    return fmt_table(headers, rows, title)


def transport_table(
    results: Dict,
    title: str = "Transport activity (chaos cells)",
) -> str:
    """Per-cell drop/retransmit/dedup counters; chaos cells only."""
    rows = []
    for cfg, rec in results.items():
        if cfg.faults is None:
            continue
        if rec.stats is None:
            rows.append([cfg.label(), "FAIL", "-", "-", "-", "-"])
            continue
        t = getattr(rec.stats, "transport", None)
        if t is None:
            continue
        rows.append(
            [
                cfg.label(),
                t.data_sent,
                t.drops,
                t.retransmits,
                t.dup_suppressed,
                t.reorder_buffered,
            ]
        )
    return fmt_table(
        ["Cell", "Sent", "Drops", "Retransmits", "DupSuppr", "Resequenced"],
        rows,
        title,
    )


def failure_rows(results: Dict) -> List[Tuple[str, str, str]]:
    """(label, error_type, error) for every failed cell."""
    return [
        (cfg.label(), rec.error_type or "?", rec.error or "")
        for cfg, rec in results.items()
        if not rec.ok
    ]


def chaos_section(
    results: Dict,
    apps: Sequence[str],
    protocols: Sequence[str] = PROTOCOLS,
    granularities: Sequence[int] = GRANULARITIES,
    rates: Sequence[float] = DEFAULT_RATES,
) -> str:
    """Markdown-ish chaos report: degradation grid, transport counters,
    and an explicit failure list (never silently dropped)."""
    parts = [
        degradation_table(results, apps, protocols, granularities, rates),
        "",
        transport_table(results),
    ]
    failures = failure_rows(results)
    if failures:
        parts += [
            "",
            fmt_table(
                ["Failed cell", "Error", "Detail"],
                [(label, etype, err[:60]) for label, etype, err in failures],
                f"{len(failures)} cell(s) failed",
            ),
        ]
    else:
        parts += ["", "all cells completed"]
    return "\n".join(parts)
