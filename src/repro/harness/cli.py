"""Command-line interface: ``repro-dsm`` (or ``python -m repro.harness.cli``).

Subcommands:

* ``run`` -- one experiment, printing the stats summary.
* ``figure1`` -- the full speedup matrix for the selected apps.
* ``faults`` -- a Tables-3-13-style fault table for one application.
* ``hm`` -- the Table 16/17 harmonic-mean statistics.
* ``calibrate`` -- Table 1 and network-microbenchmark calibration.
* ``classify`` -- the measured Table 2 classification.
* ``report`` -- run the matrix and write a full markdown report.
* ``check`` -- run cells under the race detector and protocol-invariant
  sanitizer (:mod:`repro.check`); exit 1 on any finding.
* ``chaos`` -- degradation curves under seeded interconnect faults
  (:mod:`repro.harness.chaos`): speedup vs drop rate per protocol and
  granularity, with the reliable transport recovering losses; exit 1
  if any cell failed.
* ``perf`` -- run the simulator-core perf suite (:mod:`repro.perf`);
  with ``--against BENCH_simcore.json``, exit 2 on a >15% calibrated
  median regression or a determinism break.
* ``analyze`` -- static labeling/DRF verification of the app corpus
  (:mod:`repro.analyze`): CFG + lockset/barrier-phase dataflow over a
  small-scope exploration, false-sharing prediction per granularity,
  and (``--concordance``) a cross-tab against the dynamic checkers;
  exit 1 on any unsuppressed finding.
* ``mc`` -- exhaustive small-scope model checking (:mod:`repro.mc`):
  enumerate event interleavings of tiny litmus programs under a
  controllable scheduler (with dynamic partial-order reduction) and
  check every schedule against the protocol's memory model and the
  invariant sanitizer; exit 1 on forbidden outcomes or findings
  (budget-capped cells are reported, not failures).
* ``scale`` -- node-count scaling sweep (:mod:`repro.harness.scale`):
  speedup and per-block coherence-metadata bytes vs N for every
  registered protocol, the measured curve behind the O(N)-vs-O(1)
  metadata separation; exit 1 on checker findings with ``--check``.

The sweeping subcommands also accept ``--check`` to run every matrix
cell under the checkers (cells with findings are recorded as failed).
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APP_NAMES, ORIGINAL_8, VERSION_GROUPS, make_app
from repro.cluster.config import GRANULARITIES, MachineParams
from repro.core.registry import available_protocols, scaling_protocols
from repro.harness.calibration import microbenchmark_rows, table1_rows
from repro.harness.experiment import RunConfig, run_experiment
from repro.harness.figures import figure1
from repro.harness.matrix import PROTOCOLS, SpeedupMatrix, sweep
from repro.harness.tables import fault_table, fmt_table, hm_table_text, speedup_table
from repro.stats.relative_efficiency import best_version_speedups, hm_table


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", default="default", choices=["tiny", "default", "full"])
    p.add_argument("--nprocs", type=int, default=16)
    p.add_argument("--mechanism", default="polling", choices=["polling", "interrupt"])


def _add_exec(p: argparse.ArgumentParser) -> None:
    """Execution-engine knobs for the sweeping subcommands."""
    p.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for the sweep (default 1 = in-process)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default ~/.cache/repro-dsm)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    p.add_argument(
        "--events", default=None, metavar="FILE",
        help="append a JSONL event log of the sweep to FILE",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock limit; a cell over budget is recorded "
             "as failed instead of aborting the sweep",
    )
    p.add_argument(
        "--check", action="store_true",
        help="run every cell under the race detector and invariant "
             "sanitizer; cells with findings are recorded as failed",
    )


def _exec_options(args):
    """(jobs, cache, events) from the _add_exec flags."""
    from repro.exec import EventLog, ResultCache

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    events = EventLog(args.events) if args.events else None
    return args.jobs, cache, events


def cmd_run(args) -> int:
    cfg = RunConfig(
        app=args.app,
        protocol=args.protocol,
        granularity=args.granularity,
        mechanism=args.mechanism,
        nprocs=args.nprocs,
        scale=args.scale,
    )
    result = run_experiment(cfg)
    print(f"# {cfg.label()}")
    for k, v in result.stats.summary().items():
        print(f"{k:22s} {v}")
    return 0


def cmd_figure1(args) -> int:
    apps = args.apps.split(",") if args.apps else APP_NAMES
    jobs, cache, events = _exec_options(args)
    results = sweep(
        apps,
        mechanism=args.mechanism,
        scale=args.scale,
        nprocs=args.nprocs,
        progress=lambda s: print(f"  running {s}", file=sys.stderr),
        jobs=jobs,
        cache=cache,
        events=events,
        timeout=args.timeout,
        check=args.check,
    )
    print(speedup_table(results, apps, "Figure 1: speedups on 16 nodes"))
    print()
    print(figure1(results, apps))
    return 0


def cmd_faults(args) -> int:
    jobs, cache, events = _exec_options(args)
    results = sweep([args.app], mechanism=args.mechanism, scale=args.scale,
                    nprocs=args.nprocs, jobs=jobs, cache=cache, events=events,
                    timeout=args.timeout, check=args.check)
    print(fault_table(results, args.app, f"Fault counts: {args.app}"))
    return 0


def cmd_hm(args) -> int:
    apps = ORIGINAL_8 if args.which == "original" else APP_NAMES
    jobs, cache, events = _exec_options(args)
    results = sweep(apps, mechanism=args.mechanism, scale=args.scale,
                    nprocs=args.nprocs, jobs=jobs, cache=cache, events=events,
                    timeout=args.timeout, check=args.check)
    matrix = SpeedupMatrix(results)
    speedups = matrix.speedups()
    if args.which == "best":
        speedups = best_version_speedups(
            speedups, VERSION_GROUPS, PROTOCOLS, GRANULARITIES
        )
        apps = list(VERSION_GROUPS)
    hm = hm_table(speedups, apps, PROTOCOLS, GRANULARITIES)
    title = (
        "Table 16: HM of relative efficiency (original 8 applications)"
        if args.which == "original"
        else "Table 17: HM of relative efficiency (best versions)"
    )
    print(hm_table_text(hm, title))
    return 0


def cmd_calibrate(args) -> int:
    rows = [
        (a, s, f"{p:.2f}", f"{m:.2f}", f"{r:.3f}")
        for a, s, p, m, r in table1_rows()
    ]
    print(fmt_table(
        ["Benchmark", "Problem size", "Paper (s)", "Model (s)", "ratio"],
        rows,
        "Table 1 calibration",
    ))
    print()
    rows = [
        (f"{sz}B", f"{p:.1f}", f"{m:.1f}", f"{r:.3f}")
        for sz, p, m, r in microbenchmark_rows()
    ]
    print(fmt_table(
        ["Message", "Paper RT (us)", "Model RT (us)", "ratio"],
        rows,
        "Section 3 network microbenchmark",
    ))
    return 0


def cmd_classify(args) -> int:
    from repro.cluster.machine import Machine
    from repro.runtime.program import run_program
    from repro.stats import classify, install_trace

    rows = []
    for name in APP_NAMES:
        app = make_app(name, scale=args.scale)
        m = Machine(
            MachineParams(n_nodes=args.nprocs, granularity=1024), protocol="hlrc"
        )
        app.setup(m)
        tr = install_trace(m)
        run_program(m, app.program, nprocs=args.nprocs,
                    sequential_time_us=app.sequential_time_us())
        c = classify(tr, m.stats)
        rows.append(
            (
                name,
                c.writers,
                c.access_grain,
                f"{c.comp_per_sync_us / 1000:.2f}",
                c.barriers,
                c.sync_grain,
                f"(paper: {app.writers}/{app.access_grain}/{app.sync_grain})",
            )
        )
    print(fmt_table(
        ["Application", "Writers", "Access", "Comp/Sync (ms)", "Barriers",
         "Sync", "Paper says"],
        rows,
        "Table 2: measured classification",
    ))
    return 0


def cmd_check(args) -> int:
    """Run cells under the checkers in-process; exit 1 on any finding."""
    apps = args.apps.split(",") if args.apps else list(ORIGINAL_8)
    protocols = (args.protocols.split(",") if args.protocols
                 else list(scaling_protocols()))
    findings = 0
    for app in apps:
        for proto in protocols:
            cfg = RunConfig(
                app=app,
                protocol=proto,
                granularity=args.granularity,
                mechanism=args.mechanism,
                nprocs=args.nprocs,
                scale=args.scale,
            )
            result = run_experiment(
                cfg, check=True, check_granularity=args.race_granularity
            )
            rep = result.check
            if rep.ok:
                extras = ""
                if rep.false_sharing_total:
                    extras = f"  ({rep.false_sharing_total} false-sharing pair(s))"
                print(f"ok   {cfg.label()}{extras}")
            else:
                findings += 1
                print(f"FAIL {cfg.label()}")
                for line in rep.describe().splitlines():
                    print(f"     {line}")
    if findings:
        print(f"{findings} cell(s) with findings", file=sys.stderr)
        return 1
    print("all cells clean")
    return 0


def cmd_analyze(args) -> int:
    """Static labeling / DRF verification; exit 1 on findings."""
    from repro.analyze.api import analyze_corpus
    from repro.analyze.report import render
    from repro.exec import EventLog

    events = EventLog(args.events) if args.events else None
    try:
        if args.canary:
            from repro.analyze.api import CorpusAnalysis
            from repro.analyze.canary import canary_analysis

            corpus = CorpusAnalysis(apps=[canary_analysis(args.nprocs)])
        else:
            apps = args.apps.split(",") if args.apps else None
            grans = ([int(g) for g in args.granularities.split(",")]
                     if args.granularities else None)
            kwargs = {"nprocs": args.nprocs, "scale": args.scale}
            if grans:
                kwargs["granularities"] = grans
            corpus = analyze_corpus(apps, **kwargs)
        print(render(corpus, json_path=args.json, events=events,
                     fs_top=args.fs_top))

        if args.concordance:
            import json as _json

            from repro.analyze.concordance import run_concordance

            conc = run_concordance(
                args.apps.split(",") if args.apps else None,
                protocols=(args.protocol.split(",")
                           if args.protocol else ["hlrc"]),
                granularities=[args.granularity],
                nprocs=args.nprocs,
                scale=args.scale,
                progress=lambda s: print(f"  {s}", file=sys.stderr),
            )
            print()
            print(conc.describe())
            if args.concordance_json:
                with open(args.concordance_json, "w") as fh:
                    _json.dump(conc.to_dict(), fh, sort_keys=True, indent=1)
                    fh.write("\n")
                print(f"concordance written to {args.concordance_json}",
                      file=sys.stderr)
            if events is not None:
                events.emit("analyze_concordance", ok=conc.ok,
                            cells=len(conc.cells))
            if not conc.ok:
                return 1
        return 0 if corpus.ok else 1
    finally:
        if events is not None:
            events.close()


def cmd_chaos(args) -> int:
    """Chaos degradation sweep; exit 1 if any cell failed."""
    from repro.harness.chaos import DEFAULT_RATES, chaos_section, chaos_sweep

    apps = args.apps.split(",") if args.apps else ["lu", "ocean-rowwise"]
    protocols = args.protocols.split(",") if args.protocols else list(PROTOCOLS)
    grans = (
        [int(g) for g in args.granularities.split(",")]
        if args.granularities
        else list(GRANULARITIES)
    )
    rates = (
        [float(r) for r in args.rates.split(",")]
        if args.rates
        else list(DEFAULT_RATES)
    )
    jobs, cache, events = _exec_options(args)
    results = chaos_sweep(
        apps,
        protocols=protocols,
        granularities=grans,
        rates=rates,
        seed=args.seed,
        dup_prob=args.dup,
        reorder_prob=args.reorder,
        mechanism=args.mechanism,
        scale=args.scale,
        nprocs=args.nprocs,
        jobs=jobs,
        cache=cache,
        events=events,
        timeout=args.timeout,
        check=args.check,
        progress=lambda s: print(f"  running {s}", file=sys.stderr),
    )
    text = chaos_section(results, apps, protocols, grans, rates)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"chaos report written to {args.out}")
    else:
        print(text)
    failed = sum(1 for r in results.values() if not r.ok)
    if failed:
        print(f"{failed} cell(s) failed", file=sys.stderr)
        return 1
    return 0


def cmd_mc(args) -> int:
    """Model-check litmus programs; exit 1 on verified findings."""
    from repro.exec import EventLog
    from repro.mc import Explorer, get_litmus, litmus_names
    from repro.mc.report import (
        describe_failures,
        reduction_lines,
        results_table,
        to_json,
        write_json,
    )

    names = litmus_names() if args.litmus == "all" else args.litmus.split(",")
    try:
        for name in names:
            get_litmus(name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    protocols = (
        args.protocols.split(",") if args.protocols
        else list(scaling_protocols())
    )
    grans = [int(g) for g in args.granularity.split(",")]
    events = EventLog(args.events) if args.events else None

    results = []
    naive = []
    for name in names:
        lit = get_litmus(name)
        for proto in protocols:
            for g in grans:
                print(f"  exploring {name}/{proto}/g{g}"
                      f"{'' if args.dpor else ' (naive)'}", file=sys.stderr)
                r = Explorer(
                    lit, proto, g,
                    dpor=args.dpor,
                    max_schedules=args.max_schedules,
                    max_steps=args.max_steps,
                ).run()
                results.append(r)
                if events is not None:
                    events.emit(
                        "mc_cell",
                        litmus=name, protocol=proto, granularity=g,
                        dpor=r.dpor, schedules=r.schedules,
                        transitions=r.transitions, complete=r.complete,
                        ok=r.ok,
                    )
                    if r.counterexample is not None:
                        events.emit(
                            "mc_counterexample",
                            **r.counterexample.to_dict(),
                        )
                if args.compare:
                    n = Explorer(
                        lit, proto, g,
                        dpor=False,
                        max_schedules=args.max_schedules,
                        max_steps=args.max_steps,
                    ).run()
                    naive.append(n)

    print(results_table(results))
    if args.compare:
        print()
        for line in reduction_lines(results, naive):
            print(line)
    failures = describe_failures(results)
    if failures:
        print()
        for line in failures:
            print(line, file=sys.stderr)
    if args.json:
        write_json(args.json, to_json(results, naive if args.compare else None))
        print(f"mc results written to {args.json}", file=sys.stderr)
    if events is not None:
        events.close()
    return 1 if failures else 0


def cmd_perf(args) -> int:
    """Measure the perf suite; optionally gate against a baseline."""
    from repro.perf import (
        compare,
        format_suite,
        load_baseline,
        run_suite,
        save_baseline,
    )

    suite = run_suite(reps=args.reps, micros=args.micros.split(",")
                      if args.micros else None)
    print(format_suite(suite))
    if args.out:
        save_baseline(suite, args.out)
        print(f"suite written to {args.out}")
    if not args.against:
        return 0
    if args.update:
        save_baseline(suite, args.against)
        print(f"baseline updated: {args.against}")
        return 0
    try:
        baseline = load_baseline(args.against)
    except FileNotFoundError:
        print(
            f"baseline {args.against} not found; create one with "
            f"`repro-dsm perf --against {args.against} --update`",
            file=sys.stderr,
        )
        return 2
    report = compare(suite.to_dict(), baseline, tolerance=args.tolerance)
    print()
    print(report.describe())
    return 0 if report.ok else 2


def cmd_report(args) -> int:
    from repro.harness.report import generate_report

    apps = args.apps.split(",") if args.apps else None
    jobs, cache, events = _exec_options(args)
    text = generate_report(
        scale=args.scale,
        nprocs=args.nprocs,
        apps=apps,
        progress=lambda s: print(f"  running {s}", file=sys.stderr),
        jobs=jobs,
        cache=cache,
        events=events,
        timeout=args.timeout,
        check=args.check,
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def cmd_scale(args) -> int:
    """Node-count scaling sweep; exit 1 on checker findings."""
    from repro.harness.scale import (
        NODE_COUNTS,
        SCALE_APPS,
        SCALE_GRANULARITIES,
        render_scale_report,
        scale_sweep,
    )

    apps = args.apps.split(",") if args.apps else list(SCALE_APPS)
    protocols = (args.protocols.split(",") if args.protocols
                 else list(scaling_protocols()))
    grans = ([int(g) for g in args.granularities.split(",")]
             if args.granularities else list(SCALE_GRANULARITIES))
    nodes = ([int(n) for n in args.nodes.split(",")]
             if args.nodes else list(NODE_COUNTS))
    report = scale_sweep(
        apps,
        protocols=protocols,
        granularities=grans,
        node_counts=nodes,
        scale=args.scale,
        mechanism=args.mechanism,
        check=args.check,
        progress=lambda s: print(f"  running {s}", file=sys.stderr),
    )
    text = render_scale_report(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"scaling report written to {args.out}")
    else:
        print(text)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"scaling data written to {args.json}", file=sys.stderr)
    if not report.ok:
        bad = sum(1 for c in report.cells if c.check_ok is False)
        print(f"{bad} cell(s) with checker findings", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro-dsm", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("run", help="run one experiment")
    p.add_argument("app", choices=APP_NAMES)
    p.add_argument("protocol", choices=sorted(available_protocols()))
    p.add_argument("granularity", type=int, choices=list(GRANULARITIES))
    _add_common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("figure1", help="speedup matrix")
    p.add_argument("--apps", default=None, help="comma-separated app subset")
    _add_common(p)
    _add_exec(p)
    p.set_defaults(fn=cmd_figure1)

    p = sub.add_parser("faults", help="fault table for one app")
    p.add_argument("app", choices=APP_NAMES)
    _add_common(p)
    _add_exec(p)
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser("hm", help="Table 16/17 statistics")
    p.add_argument("which", choices=["original", "best"])
    _add_common(p)
    _add_exec(p)
    p.set_defaults(fn=cmd_hm)

    p = sub.add_parser("calibrate", help="Table 1 + microbenchmark calibration")
    p.set_defaults(fn=cmd_calibrate)

    p = sub.add_parser("classify", help="measured Table 2 classification")
    _add_common(p)
    p.set_defaults(fn=cmd_classify)

    p = sub.add_parser(
        "check",
        help="race-detect and invariant-check cells (exit 1 on findings)",
    )
    p.add_argument("--apps", default=None,
                   help="comma-separated app subset (default: the original 8)")
    p.add_argument("--protocols", default=None,
                   help="comma-separated protocol subset "
                        "(default: sc,swlrc,hlrc,tardis)")
    p.add_argument("--granularity", type=int, default=4096,
                   choices=list(GRANULARITIES))
    p.add_argument("--race-granularity", default="word",
                   help='race-detection unit: "byte", "word", "block" '
                        "or a byte count (default word)")
    _add_common(p)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "analyze",
        help="static labeling/DRF verification and false-sharing "
             "prediction (exit 1 on findings)",
    )
    p.add_argument("--apps", default=None,
                   help="comma-separated app subset (default: all 12)")
    p.add_argument("--nprocs", type=int, default=4,
                   help="ranks for the small-scope exploration (default 4)")
    p.add_argument("--scale", default="tiny",
                   choices=["tiny", "default", "full"],
                   help="problem scale to explore (default tiny)")
    p.add_argument("--granularities", default=None,
                   help="comma-separated coherence granularities for the "
                        "false-sharing prediction (default 64..8192)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the full analysis as JSON to FILE")
    p.add_argument("--events", default=None, metavar="FILE",
                   help="append analyze_* events to the JSONL log FILE")
    p.add_argument("--fs-top", type=int, default=10,
                   help="rows in the false-sharing ranking (default 10)")
    p.add_argument("--canary", action="store_true",
                   help="analyze the planted mislabeled canary app instead "
                        "of the corpus (must exit 1 -- used by CI to prove "
                        "the gate can fail)")
    p.add_argument("--concordance", action="store_true",
                   help="also run the dynamic checkers per cell and "
                        "cross-tabulate static vs dynamic findings")
    p.add_argument("--protocol", default="hlrc",
                   help="comma-separated protocols for --concordance "
                        "(default hlrc)")
    p.add_argument("--granularity", type=int, default=1024,
                   help="coherence granularity for --concordance cells "
                        "(default 1024)")
    p.add_argument("--concordance-json", default=None, metavar="FILE",
                   help="write the concordance cross-tab as JSON to FILE")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "chaos",
        help="degradation curves under seeded interconnect faults "
             "(exit 1 on failed cells)",
    )
    p.add_argument("--apps", default=None,
                   help="comma-separated app subset (default: lu,ocean-rowwise)")
    p.add_argument("--protocols", default=None,
                   help="comma-separated protocol subset (default: sc,swlrc,hlrc)")
    p.add_argument("--granularities", default=None,
                   help="comma-separated granularity subset (default: all)")
    p.add_argument("--rates", default=None,
                   help="comma-separated drop probabilities "
                        "(default: 0,0.01,0.02,0.05; 0 = trusted wire)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed (same seed => bit-identical sweep)")
    p.add_argument("--dup", type=float, default=0.01,
                   help="duplicate probability for the faulted cells")
    p.add_argument("--reorder", type=float, default=0.02,
                   help="bounded-reorder probability for the faulted cells")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the chaos report to FILE instead of stdout")
    _add_common(p)
    _add_exec(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "perf",
        help="simulator-core perf suite (exit 2 on baseline regression)",
    )
    p.add_argument("--against", default=None, metavar="FILE",
                   help="baseline JSON to gate against (e.g. BENCH_simcore.json)")
    p.add_argument("--update", action="store_true",
                   help="rewrite the --against baseline from this run")
    p.add_argument("--reps", type=int, default=5,
                   help="timed repetitions per micro (default 5)")
    p.add_argument("--tolerance", type=float, default=0.15,
                   help="allowed median slowdown vs baseline (default 0.15)")
    p.add_argument("--micros", default=None,
                   help="comma-separated micro subset (default: all)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write this run's JSON to FILE")
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser(
        "mc",
        help="model-check litmus programs over all schedules "
             "(exit 1 on forbidden outcomes or checker findings)",
    )
    p.add_argument("--litmus", default="all",
                   help="comma-separated litmus subset (default: all; "
                        "sb, mp, lb, iriw, lock-handoff, barrier-reset)")
    p.add_argument("--protocols", "--protocol", dest="protocols", default=None,
                   help="comma-separated protocol subset "
                        "(default: sc,swlrc,hlrc,tardis)")
    p.add_argument("--granularity", default="64",
                   help="comma-separated coherence granularities in bytes "
                        "(default: 64)")
    p.add_argument("--max-schedules", type=int, default=5000,
                   help="schedule budget per cell; a cell over budget is "
                        "reported as incomplete, not failed (default 5000)")
    p.add_argument("--max-steps", type=int, default=20000,
                   help="per-schedule event budget (default 20000)")
    p.add_argument("--dpor", dest="dpor", action="store_true", default=True,
                   help="dynamic partial-order reduction (default)")
    p.add_argument("--no-dpor", dest="dpor", action="store_false",
                   help="naive DFS over every enabled choice")
    p.add_argument("--compare", action="store_true",
                   help="also run the naive DFS and print the per-cell "
                        "DPOR reduction")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write results (and --compare data) as JSON to FILE")
    p.add_argument("--events", default=None, metavar="FILE",
                   help="append mc_cell/mc_counterexample events to the "
                        "JSONL log FILE")
    p.set_defaults(fn=cmd_mc)

    p = sub.add_parser("report", help="full markdown reproduction report")
    p.add_argument("--out", default=None, help="output file (default stdout)")
    p.add_argument("--apps", default=None, help="comma-separated app subset")
    _add_common(p)
    _add_exec(p)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "scale",
        help="node-count scaling sweep: speedup and per-block metadata "
             "bytes vs N (exit 1 on checker findings)",
    )
    p.add_argument("--apps", default=None,
                   help="comma-separated app subset (default: lu,ocean-rowwise)")
    p.add_argument("--protocols", default=None,
                   help="comma-separated protocol subset "
                        "(default: the registry's scaling set "
                        "sc,swlrc,hlrc,tardis)")
    p.add_argument("--granularities", default=None,
                   help="comma-separated granularity subset (default: 1024,4096)")
    p.add_argument("--nodes", default=None,
                   help="comma-separated node counts "
                        "(default: 16,64,128,512,1024)")
    p.add_argument("--scale", default="tiny",
                   choices=["tiny", "default", "full"],
                   help="problem scale (default tiny -- the metadata and "
                        "trend curves are insensitive to problem size)")
    p.add_argument("--mechanism", default="polling",
                   choices=["polling", "interrupt"])
    p.add_argument("--check", action="store_true",
                   help="run every cell under the race detector and "
                        "invariant sanitizer")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the markdown report to FILE instead of stdout")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the raw sweep data as JSON to FILE")
    p.set_defaults(fn=cmd_scale)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
