"""Sweep helpers: run (app x protocol x granularity) matrices and
collect speedups/fault counts, with a simple in-process cache so
benchmarks sharing cells do not recompute them."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.config import GRANULARITIES
from repro.harness.experiment import RunConfig, RunResult, run_experiment

PROTOCOLS = ("sc", "swlrc", "hlrc")

#: process-wide result cache keyed by RunConfig
_CACHE: Dict[RunConfig, RunResult] = {}


def cached_run(cfg: RunConfig, **overrides) -> RunResult:
    if overrides:
        return run_experiment(cfg)
    hit = _CACHE.get(cfg)
    if hit is None:
        hit = run_experiment(cfg)
        _CACHE[cfg] = hit
    return hit


def clear_cache() -> None:
    _CACHE.clear()


def sweep(
    apps: Sequence[str],
    protocols: Sequence[str] = PROTOCOLS,
    granularities: Sequence[int] = GRANULARITIES,
    mechanism: str = "polling",
    scale: str = "default",
    nprocs: int = 16,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[RunConfig, RunResult]:
    """Run the full matrix; returns config -> result."""
    out: Dict[RunConfig, RunResult] = {}
    for app in apps:
        for proto in protocols:
            for g in granularities:
                cfg = RunConfig(
                    app=app,
                    protocol=proto,
                    granularity=g,
                    mechanism=mechanism,
                    nprocs=nprocs,
                    scale=scale,
                )
                if progress:
                    progress(cfg.label())
                out[cfg] = cached_run(cfg)
    return out


class SpeedupMatrix:
    """Convenience view over sweep results for the HM statistics."""

    def __init__(self, results: Dict[RunConfig, RunResult]):
        self.results = results

    def speedups(self) -> Dict[Tuple[str, str, int], float]:
        return {
            (c.app, c.protocol, c.granularity): r.speedup
            for c, r in self.results.items()
        }

    def best_combination(self, app: str) -> Tuple[str, int, float]:
        best = None
        for c, r in self.results.items():
            if c.app != app:
                continue
            if best is None or r.speedup > best[2]:
                best = (c.protocol, c.granularity, r.speedup)
        if best is None:
            raise KeyError(app)
        return best

    def speedup(self, app: str, protocol: str, granularity: int) -> float:
        for c, r in self.results.items():
            if (c.app, c.protocol, c.granularity) == (app, protocol, granularity):
                return r.speedup
        raise KeyError((app, protocol, granularity))
