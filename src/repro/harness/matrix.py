"""Sweep helpers: run (app x protocol x granularity) matrices and
collect speedups/fault counts.

The actual execution -- parallel fan-out, the on-disk result cache,
per-cell failure capture, the JSONL event log -- lives in
:mod:`repro.exec`; this module builds the config list, keeps a small
in-process memo so benchmarks sharing cells within one interpreter do
not recompute them, and provides the :class:`SpeedupMatrix` view the
table emitters consume.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import GRANULARITIES
from repro.core.registry import evaluated_protocols
from repro.exec.cache import ResultCache
from repro.exec.events import EventLog
from repro.exec.pool import execute, execute_many
from repro.exec.serialize import RunRecord
from repro.harness.experiment import RunConfig, run_experiment

#: the paper's evaluated trio, in paper order (from the registry -- the
#: single source of truth for which protocols exist)
PROTOCOLS = evaluated_protocols()

#: in-process memo keyed by RunConfig (records, not Machines)
_CACHE: Dict[RunConfig, RunRecord] = {}

#: session defaults installed by e.g. benchmarks/conftest.py so every
#: sweep in the process picks up parallelism and the disk cache without
#: each call site threading them through
_DEFAULT_JOBS: int = 1
_DEFAULT_DISK_CACHE: Optional[ResultCache] = None


def configure(jobs: Optional[int] = None, cache: Optional[ResultCache] = None) -> None:
    """Install process-wide execution defaults for :func:`sweep`."""
    global _DEFAULT_JOBS, _DEFAULT_DISK_CACHE
    if jobs is not None:
        _DEFAULT_JOBS = jobs
    _DEFAULT_DISK_CACHE = cache


def cached_run(cfg: RunConfig, **overrides) -> RunRecord:
    """One cell through the in-process memo.

    Runs with ``**overrides`` (application parameter tweaks) bypass the
    memo -- an overridden run is not the matrix cell -- but the
    overrides are forwarded to the experiment.
    """
    if overrides:
        result = run_experiment(cfg, **overrides)
        return RunRecord.from_stats(cfg, result.stats)
    hit = _CACHE.get(cfg)
    if hit is None:
        hit = execute(cfg, cache=_DEFAULT_DISK_CACHE)
        _CACHE[cfg] = hit
    return hit


def clear_cache() -> None:
    """Drop the in-process memo (the disk cache is unaffected)."""
    _CACHE.clear()


def matrix_configs(
    apps: Sequence[str],
    protocols: Sequence[str] = PROTOCOLS,
    granularities: Sequence[int] = GRANULARITIES,
    mechanism: str = "polling",
    scale: str = "default",
    nprocs: int = 16,
) -> List[RunConfig]:
    """The config list for one (apps x protocols x granularities) sweep."""
    return [
        RunConfig(
            app=app,
            protocol=proto,
            granularity=g,
            mechanism=mechanism,
            nprocs=nprocs,
            scale=scale,
        )
        for app in apps
        for proto in protocols
        for g in granularities
    ]


def sweep(
    apps: Sequence[str],
    protocols: Sequence[str] = PROTOCOLS,
    granularities: Sequence[int] = GRANULARITIES,
    mechanism: str = "polling",
    scale: str = "default",
    nprocs: int = 16,
    progress: Optional[Callable[[str], None]] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    events: Optional[EventLog] = None,
    timeout: Optional[float] = None,
    max_events: Optional[int] = None,
    check: bool = False,
) -> Dict[RunConfig, RunRecord]:
    """Run the full matrix; returns config -> record.

    ``jobs`` > 1 fans cells out over worker processes; ``cache`` serves
    and persists cells on disk; both default to the process-wide
    settings installed by :func:`configure`.  Failed cells (event
    budget, timeout) come back as records with ``ok=False`` rather than
    aborting the sweep.

    ``check`` runs every cell under the :mod:`repro.check` race
    detector and invariant sanitizer (cells with findings fail with
    ``error_type='CheckFailure'``).  Checked records bypass the
    in-process memo entirely -- they must neither serve nor shadow the
    unchecked matrix cells -- and carry their own disk-cache key.
    """
    configs = matrix_configs(apps, protocols, granularities, mechanism, scale, nprocs)
    jobs = _DEFAULT_JOBS if jobs is None else jobs
    cache = _DEFAULT_DISK_CACHE if cache is None else cache

    if check:
        return execute_many(
            configs,
            jobs=jobs,
            cache=cache,
            events=events,
            timeout=timeout,
            max_events=max_events,
            progress=progress,
            check=True,
        )
    fresh = [c for c in configs if c not in _CACHE]
    if fresh:
        records = execute_many(
            fresh,
            jobs=jobs,
            cache=cache,
            events=events,
            timeout=timeout,
            max_events=max_events,
            progress=progress,
        )
        _CACHE.update(records)
    return {c: _CACHE[c] for c in configs}


class SpeedupMatrix:
    """Convenience view over sweep results for the HM statistics.

    Indexes are built once here so the per-cell accessors are O(1)
    instead of scanning every result per lookup.  Failed records are
    excluded -- they have no speedup -- so lookups on them raise
    ``KeyError`` like any other missing cell.
    """

    def __init__(self, results: Dict[RunConfig, RunRecord]):
        self.results = results
        self._index: Dict[Tuple[str, str, int], RunRecord] = {}
        self._by_app: Dict[str, List[Tuple[RunConfig, RunRecord]]] = {}
        for c, r in results.items():
            if r.stats is None:
                continue
            self._index[(c.app, c.protocol, c.granularity)] = r
            self._by_app.setdefault(c.app, []).append((c, r))

    def speedups(self) -> Dict[Tuple[str, str, int], float]:
        return {key: r.speedup for key, r in self._index.items()}

    def best_combination(self, app: str) -> Tuple[str, int, float]:
        cells = self._by_app.get(app)
        if not cells:
            raise KeyError(app)
        c, r = max(cells, key=lambda cr: cr[1].speedup)
        return (c.protocol, c.granularity, r.speedup)

    def speedup(self, app: str, protocol: str, granularity: int) -> float:
        try:
            return self._index[(app, protocol, granularity)].speedup
        except KeyError:
            raise KeyError((app, protocol, granularity)) from None

    def failed(self) -> List[RunRecord]:
        """Records that did not produce stats (budget/timeout/crash)."""
        return [r for r in self.results.values() if r.stats is None]
