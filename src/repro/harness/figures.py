"""ASCII "figures": speedup-vs-granularity series with bar rendering.

The paper's Figure 1 (speedups for 12 applications x 3 protocols x 4
granularities) and Figure 2 (LU and Water-Nsquared under the interrupt
mechanism) are line/bar charts; we render the same series as aligned
text so the benches can regenerate them in a terminal and EXPERIMENTS.md
can embed them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.config import GRANULARITIES
from repro.harness.matrix import PROTOCOLS
from repro.harness.tables import PROTO_LABEL

BAR_WIDTH = 32


def _bar(value: float, vmax: float) -> str:
    if vmax <= 0:
        return ""
    n = int(round(BAR_WIDTH * value / vmax))
    return "#" * max(0, min(BAR_WIDTH, n))


def speedup_figure(
    results: Dict,
    app: str,
    title: str = "",
    max_speedup: float = 16.0,
    mechanism: str = None,
) -> str:
    """One Figure-1 panel: bars for every protocol/granularity combo."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for proto in PROTOCOLS:
        for g in GRANULARITIES:
            val = None
            failed = False
            for c, r in results.items():
                if (c.app, c.protocol, c.granularity) == (app, proto, g) and (
                    mechanism is None or c.mechanism == mechanism
                ):
                    if r.stats is None:
                        failed = True
                    else:
                        val = r.speedup
            if failed and val is None:
                lines.append(f"  {PROTO_LABEL[proto]:7s} {g:5d}    (failed)")
            elif val is None:
                lines.append(f"  {PROTO_LABEL[proto]:7s} {g:5d}    (missing)")
            else:
                lines.append(
                    f"  {PROTO_LABEL[proto]:7s} {g:5d} {val:6.2f} |{_bar(val, max_speedup)}"
                )
        lines.append("")
    return "\n".join(lines)


def figure1(results: Dict, apps: Sequence[str]) -> str:
    """The full Figure 1: one panel per application."""
    panels = [
        speedup_figure(results, app, title=f"--- {app} (speedup on 16 nodes) ---")
        for app in apps
    ]
    return "\n".join(panels)


def mechanism_comparison(
    polling_results: Dict, interrupt_results: Dict, app: str
) -> str:
    """Figure 2 style: polling vs interrupt speedups side by side."""
    lines = [f"--- {app}: polling vs interrupt ---"]
    header = f"  {'Protocol':8s} {'gran':>5s} {'polling':>8s} {'interrupt':>9s} {'int/poll':>8s}"
    lines.append(header)
    for proto in PROTOCOLS:
        for g in GRANULARITIES:
            pv = iv = None
            for c, r in polling_results.items():
                if (c.app, c.protocol, c.granularity) == (app, proto, g):
                    pv = None if r.stats is None else r.speedup
            for c, r in interrupt_results.items():
                if (c.app, c.protocol, c.granularity) == (app, proto, g):
                    iv = None if r.stats is None else r.speedup
            if pv is None or iv is None:
                continue
            ratio = iv / pv if pv else float("nan")
            lines.append(
                f"  {PROTO_LABEL[proto]:8s} {g:5d} {pv:8.2f} {iv:9.2f} {ratio:8.2f}"
            )
    return "\n".join(lines)
