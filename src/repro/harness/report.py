"""One-shot reproduction report.

Assembles calibration, the speedup matrix, fault tables, HM statistics
and the measured classification into a single markdown document --
``repro-dsm report`` writes the file an artifact-evaluation reviewer
would want.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence

from repro.apps import APP_NAMES, ORIGINAL_8, VERSION_GROUPS
from repro.cluster.config import GRANULARITIES
from repro.harness.calibration import microbenchmark_rows, table1_rows
from repro.harness.matrix import PROTOCOLS, SpeedupMatrix, sweep
from repro.harness.tables import (
    fault_table,
    fmt_table,
    hm_table_text,
    speedup_table,
)
from repro.stats.relative_efficiency import best_version_speedups, hm_table


def generate_report(
    scale: str = "default",
    nprocs: int = 16,
    apps: Optional[Sequence[str]] = None,
    fault_apps: Sequence[str] = ("lu", "ocean-rowwise", "volrend-original"),
    progress=None,
    jobs: Optional[int] = None,
    cache=None,
    events=None,
    timeout: Optional[float] = None,
    check: bool = False,
) -> str:
    """Run the matrix and return the report as markdown text.

    ``jobs``/``cache``/``events`` go straight to
    :func:`repro.harness.matrix.sweep`: the matrix fans out over worker
    processes and previously computed cells come from the disk cache.
    """
    apps = list(apps) if apps else list(APP_NAMES)
    out = io.StringIO()
    w = out.write

    w("# Reproduction report\n\n")
    w(f"Scale: `{scale}`, nodes: {nprocs}, mechanism: polling.\n\n")

    # ---- calibration --------------------------------------------------
    w("## Calibration\n\n```\n")
    rows = [(a, s, f"{p:.2f}", f"{m:.2f}", f"{r:.3f}")
            for a, s, p, m, r in table1_rows()]
    w(fmt_table(["Benchmark", "Size", "Paper (s)", "Model (s)", "ratio"],
                rows, "Table 1: sequential times"))
    w("\n\n")
    rows = [(f"{sz}B", f"{p:.0f}", f"{m:.1f}", f"{r:.3f}")
            for sz, p, m, r in microbenchmark_rows()]
    w(fmt_table(["Message", "Paper RT", "Model RT", "ratio"],
                rows, "Section 3 microbenchmark"))
    w("\n```\n\n")

    # ---- the matrix ----------------------------------------------------
    results = sweep(
        apps,
        scale=scale,
        nprocs=nprocs,
        progress=progress,
        jobs=jobs,
        cache=cache,
        events=events,
        timeout=timeout,
        check=check,
    )
    failed = [r for r in results.values() if r.stats is None]
    if failed:
        w("## Failed cells\n\n")
        for r in failed:
            w(f"* `{r.config.label()}`: {r.error_type}: {r.error}\n")
        w("\n")
    w("## Figure 1: speedups\n\n```\n")
    w(speedup_table(results, apps, ""))
    w("\n```\n\n")

    # ---- fault tables ---------------------------------------------------
    w("## Fault tables\n\n")
    for app in fault_apps:
        if app not in apps:
            continue
        w("```\n")
        w(fault_table(results, app, f"{app}"))
        w("\n```\n\n")

    # ---- HM statistics ---------------------------------------------------
    matrix = SpeedupMatrix(results)
    present_original = [a for a in ORIGINAL_8 if a in apps]
    if len(present_original) >= 2:
        hm = hm_table(matrix.speedups(), present_original, PROTOCOLS,
                      list(GRANULARITIES))
        w("## Table 16: HM of relative efficiency (original versions)\n\n```\n")
        w(hm_table_text(hm, ""))
        w("\n```\n\n")
    if set(apps) == set(APP_NAMES):
        best = best_version_speedups(matrix.speedups(), VERSION_GROUPS,
                                     PROTOCOLS, list(GRANULARITIES))
        hm = hm_table(best, list(VERSION_GROUPS), PROTOCOLS,
                      list(GRANULARITIES))
        w("## Table 17: HM of relative efficiency (best versions)\n\n```\n")
        w(hm_table_text(hm, ""))
        w("\n```\n\n")

    # ---- headline claims --------------------------------------------------
    w("## Headline claims\n\n")
    cells = matrix.speedups()

    def sp(app, proto, g):
        return cells[(app, proto, g)]

    def have(app):
        # The claim needs every cell of the app present (none failed).
        return app in apps and all(
            (app, p, g) in cells for p in PROTOCOLS for g in GRANULARITIES
        )

    if have("barnes-original"):
        sc = max(sp("barnes-original", "sc", 64),
                 sp("barnes-original", "sc", 256))
        hl = sp("barnes-original", "hlrc", 4096)
        w(f"* Barnes-Original: SC fine-grain {sc:.2f} vs HLRC-4096 {hl:.2f} "
          f"-> relaxed protocols {'never worthwhile' if sc > hl else 'worthwhile'} "
          "(paper: never worthwhile).\n")
    if have("volrend-original"):
        s4 = sp("volrend-original", "sc", 4096)
        h4 = sp("volrend-original", "hlrc", 4096)
        w(f"* Volrend-Original at 4096: SC {s4:.2f} vs HLRC {h4:.2f} "
          f"({h4 / s4:.1f}x; paper: 2-4x).\n")
    comparable = [
        a for a in apps
        if (a, "hlrc", 4096) in cells and (a, "swlrc", 4096) in cells
    ]
    hl_wins = sum(
        1 for a in comparable
        if sp(a, "hlrc", 4096) >= sp(a, "swlrc", 4096)
    )
    w(f"* HLRC >= SW-LRC at 4096 bytes for {hl_wins}/{len(comparable)} "
      "applications (paper: all).\n")
    return out.getvalue()
