"""Experiment harness: run configurations, sweep matrices, and the
table/figure emitters that regenerate the paper's evaluation.
"""

from repro.harness.experiment import RunConfig, RunResult, run_experiment
from repro.harness.matrix import SpeedupMatrix, cached_run, clear_cache, sweep

__all__ = [
    "RunConfig",
    "RunResult",
    "run_experiment",
    "sweep",
    "cached_run",
    "clear_cache",
    "SpeedupMatrix",
]
