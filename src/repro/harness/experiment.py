"""One experiment = one (application, protocol, granularity,
mechanism) run of the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.apps import make_app
from repro.apps.base import Application
from repro.cluster.config import MachineParams, NotificationMechanism
from repro.cluster.machine import Machine
from repro.net.faultplan import FaultSpec
from repro.runtime.program import run_program
from repro.stats.counters import Stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check import CheckReport


@dataclass(frozen=True)
class RunConfig:
    """Identifies one cell of the evaluation matrix."""

    app: str
    protocol: str          # 'sc' | 'swlrc' | 'hlrc'
    granularity: int       # 64 | 256 | 1024 | 4096
    mechanism: str = "polling"   # 'polling' | 'interrupt'
    nprocs: int = 16
    scale: str = "default"
    #: unreliable-interconnect description; None = the trusted legacy
    #: wire.  Part of the config (and so of every result-cache key):
    #: a chaos cell is a different experiment, never a stale shadow of
    #: the fault-free one.
    faults: Optional[FaultSpec] = None

    def label(self) -> str:
        base = (
            f"{self.app}/{self.protocol}-{self.granularity}"
            f"/{self.mechanism}/p{self.nprocs}"
        )
        if self.faults is not None:
            base += f"/{self.faults.label()}"
        return base


@dataclass
class RunResult:
    config: RunConfig
    stats: Stats
    app: Application
    machine: Machine
    #: checker findings when run with check=True, else None
    check: Optional["CheckReport"] = None

    @property
    def speedup(self) -> float:
        return self.stats.speedup


def run_experiment(
    cfg: RunConfig,
    max_events: Optional[int] = None,
    check: bool = False,
    check_granularity="word",
    **app_overrides,
) -> RunResult:
    """Build the machine, set the application up, run it, return stats.

    ``check`` installs the :mod:`repro.check` race detector and
    protocol-invariant sanitizer for this run and attaches their
    findings as ``result.check``.  The checkers only observe, so a
    checked run produces bit-identical stats; ``check`` is an execution
    knob, *not* part of :class:`RunConfig` (and thus never part of a
    result-cache key).  ``check_granularity`` is the race-detection
    unit ("byte" | "word" | "block" | byte count).
    """
    app = make_app(cfg.app, scale=cfg.scale, **app_overrides)
    params = MachineParams(
        n_nodes=cfg.nprocs,
        granularity=cfg.granularity,
        mechanism=NotificationMechanism(cfg.mechanism),
    )
    machine = Machine(
        params,
        protocol=cfg.protocol,
        poll_dilation=app.poll_dilation,
        max_events=max_events,
        faults=cfg.faults,
    )
    checkers = None
    if check:
        from repro.check import install_checkers

        checkers = install_checkers(
            machine, race_granularity=check_granularity
        )
    app.setup(machine)
    result = run_program(
        machine,
        app.program,
        nprocs=cfg.nprocs,
        sequential_time_us=app.sequential_time_us(),
    )
    return RunResult(
        config=cfg,
        stats=result.stats,
        app=app,
        machine=machine,
        check=checkers.report() if checkers is not None else None,
    )
