"""Node-count scaling sweep: speedup and per-block metadata bytes vs N.

The paper stops at 16 nodes; ROADMAP's first open item asks what the
protocols do on bigger machines.  Two things change with N:

* **Performance** -- speedup curves bend as home distance, recall
  fan-out, and barrier fan-in grow.
* **Metadata** -- the classic representations carry O(N) state per
  block (directory bitmaps, vector clocks), which is exactly what
  caps real DSM installs.  The capacity-honest representations
  (sparse clocks, sharded copysets) and the tardis timestamp protocol
  (O(1) per block by construction) are the countermeasures; this
  sweep turns the O(N)-vs-O(1) separation into a measured curve.

Cells run in-process (not through :mod:`repro.exec`) because the
metadata counter needs the live :class:`~repro.cluster.machine.Machine`
after the run -- a serialized :class:`~repro.exec.serialize.RunRecord`
has no protocol state left to measure.

``repro-dsm scale`` is the CLI face; :func:`scale_sweep` +
:func:`render_scale_report` are the library face used by CI's
scale-smoke job and the nightly artifact upload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.registry import scaling_protocols
from repro.harness.experiment import RunConfig, run_experiment
from repro.stats.counters import MetadataStats, protocol_metadata

#: node counts the scaling study sweeps (the paper's 16 plus the
#: 128-1024 range the tardis/sparse-representation work targets)
NODE_COUNTS = (16, 64, 128, 512, 1024)

#: the two granularities spanning the paper's fine/coarse regimes
SCALE_GRANULARITIES = (1024, 4096)

#: default application pair: one regular (lu) and one with migratory
#: rows and heavier sharing (ocean)
SCALE_APPS = ("lu", "ocean-rowwise")


@dataclass
class ScaleCell:
    """One (app, protocol, granularity, n_nodes) point of the sweep."""

    app: str
    protocol: str
    granularity: int
    n_nodes: int
    speedup: float
    parallel_time_us: float
    metadata: MetadataStats
    #: checker verdict when run with check=True; None = not checked
    check_ok: Optional[bool] = None
    check_findings: int = 0

    def to_dict(self) -> Dict:
        return {
            "app": self.app,
            "protocol": self.protocol,
            "granularity": self.granularity,
            "n_nodes": self.n_nodes,
            "speedup": self.speedup,
            "parallel_time_us": self.parallel_time_us,
            "metadata": self.metadata.to_dict(),
            "check_ok": self.check_ok,
            "check_findings": self.check_findings,
        }


@dataclass
class ScaleReport:
    """Everything one scaling sweep produced."""

    cells: List[ScaleCell] = field(default_factory=list)

    def cell(
        self, app: str, protocol: str, granularity: int, n_nodes: int
    ) -> ScaleCell:
        for c in self.cells:
            if (c.app, c.protocol, c.granularity, c.n_nodes) == (
                app, protocol, granularity, n_nodes
            ):
                return c
        raise KeyError((app, protocol, granularity, n_nodes))

    @property
    def ok(self) -> bool:
        """True when no checked cell produced findings."""
        return all(c.check_ok is not False for c in self.cells)

    def axes(self) -> Tuple[List[str], List[str], List[int], List[int]]:
        """(apps, protocols, granularities, node counts) actually swept,
        in first-seen order."""
        apps: List[str] = []
        protos: List[str] = []
        grans: List[int] = []
        nodes: List[int] = []
        for c in self.cells:
            if c.app not in apps:
                apps.append(c.app)
            if c.protocol not in protos:
                protos.append(c.protocol)
            if c.granularity not in grans:
                grans.append(c.granularity)
            if c.n_nodes not in nodes:
                nodes.append(c.n_nodes)
        return apps, protos, grans, nodes

    def to_dict(self) -> Dict:
        return {"cells": [c.to_dict() for c in self.cells]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def scale_sweep(
    apps: Sequence[str] = SCALE_APPS,
    protocols: Optional[Sequence[str]] = None,
    granularities: Sequence[int] = SCALE_GRANULARITIES,
    node_counts: Sequence[int] = NODE_COUNTS,
    scale: str = "tiny",
    mechanism: str = "polling",
    check: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> ScaleReport:
    """Run the scaling matrix and measure each cell's metadata.

    ``protocols`` defaults to the registry's scaling set -- the paper
    trio plus tardis when registered.  ``scale='tiny'`` keeps the
    1024-node cells tractable; the curves of interest (metadata bytes,
    relative speedup trend) are insensitive to problem size.

    ``check`` installs the race/invariant checkers per cell; findings
    are recorded on the cell (``check_ok``/``check_findings``) rather
    than raising, so one bad cell does not vaporize the sweep.
    """
    if protocols is None:
        protocols = scaling_protocols()
    report = ScaleReport()
    for app in apps:
        for proto in protocols:
            for g in granularities:
                for n in node_counts:
                    cfg = RunConfig(
                        app=app,
                        protocol=proto,
                        granularity=g,
                        mechanism=mechanism,
                        nprocs=n,
                        scale=scale,
                    )
                    if progress:
                        progress(f"scale {cfg.label()}")
                    result = run_experiment(cfg, check=check)
                    meta = protocol_metadata(result.machine)
                    findings = 0
                    ok: Optional[bool] = None
                    if result.check is not None:
                        ok = result.check.ok
                        findings = (
                            result.check.violations_total
                            + result.check.races_total
                        )
                    report.cells.append(
                        ScaleCell(
                            app=app,
                            protocol=proto,
                            granularity=g,
                            n_nodes=n,
                            speedup=result.stats.speedup,
                            parallel_time_us=result.stats.parallel_time_us,
                            metadata=meta,
                            check_ok=ok,
                            check_findings=findings,
                        )
                    )
    return report


def _fmt_bytes(v: float) -> str:
    if v >= 1024 * 1024:
        return f"{v / (1024 * 1024):.1f}M"
    if v >= 1024:
        return f"{v / 1024:.1f}K"
    return f"{v:.0f}"


def render_scale_report(report: ScaleReport) -> str:
    """Markdown scaling report: one speedup table and one per-block
    metadata table (actual | dense-equivalent) per (app, granularity)."""
    apps, protos, grans, nodes = report.axes()
    lines: List[str] = ["# Node-count scaling report", ""]
    lines.append(
        "Speedup and per-block coherence-metadata bytes vs node count. "
        "`meta` is the representation the run actually stored; `dense` "
        "is the classic dense representation at that N (bitmap "
        "copysets, 8-byte-per-component vector clocks)."
    )
    lines.append("")
    checked = any(c.check_ok is not None for c in report.cells)
    if checked:
        bad = [c for c in report.cells if c.check_ok is False]
        if bad:
            lines.append(
                f"**CHECK FAILURES: {len(bad)} cell(s)** -- "
                + ", ".join(
                    f"{c.app}/{c.protocol}/{c.granularity}@N={c.n_nodes}"
                    f" ({c.check_findings})"
                    for c in bad
                )
            )
        else:
            lines.append(
                "All cells ran under the race/invariant checkers with "
                "zero findings."
            )
        lines.append("")

    for app in apps:
        for g in grans:
            lines.append(f"## {app} @ {g} B blocks")
            lines.append("")
            lines.append("### Speedup")
            lines.append("")
            header = "| N | " + " | ".join(protos) + " |"
            lines.append(header)
            lines.append("|" + "---|" * (len(protos) + 1))
            for n in nodes:
                row = [str(n)]
                for proto in protos:
                    try:
                        c = report.cell(app, proto, g, n)
                        row.append(f"{c.speedup:.2f}")
                    except KeyError:
                        row.append("-")
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")
            lines.append("### Metadata bytes per block (meta / dense)")
            lines.append("")
            lines.append(header)
            lines.append("|" + "---|" * (len(protos) + 1))
            for n in nodes:
                row = [str(n)]
                for proto in protos:
                    try:
                        c = report.cell(app, proto, g, n)
                        m = c.metadata
                        row.append(
                            f"{_fmt_bytes(m.per_block)} / "
                            f"{_fmt_bytes(m.per_block_dense)}"
                        )
                    except KeyError:
                        row.append("-")
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")
    return "\n".join(lines)
