"""Calibration checks: Table 1 sequential times and the Section 3
network microbenchmark.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps import make_app
from repro.cluster.config import MachineParams

#: Table 1: benchmark, problem size label, sequential seconds
TABLE1 = [
    ("lu", "1024 x 1024", 73.41),
    ("fft", "1M points", 27.257),
    ("ocean-original", "514 x 514", 37.43),
    ("water-nsquared", "4096 molecules, 3 steps", 575.283),
    ("volrend-original", "128^2 head-scaleddown2", 4.493),
    ("water-spatial", "4096 molecules, 5 steps", 898.454),
    ("raytrace", "balls4", 343.76),
    ("barnes-original", "16384 particles", 33.787),
]

#: Section 3 microbenchmark: message size -> measured round trip (us)
MICROBENCH_ROUND_TRIPS = {4: 40.0, 64: 61.0, 256: 100.0, 1024: 256.0, 4096: 876.0}


def table1_rows() -> List[Tuple[str, str, float, float, float]]:
    """(app, size, paper_seconds, model_seconds, ratio) per benchmark."""
    rows = []
    for app_name, size, paper_s in TABLE1:
        app = make_app(app_name, scale="full")
        model_s = app.sequential_time_us() / 1e6
        rows.append((app_name, size, paper_s, model_s, model_s / paper_s))
    return rows


def microbenchmark_rows(params: MachineParams = None) -> List[Tuple[int, float, float, float]]:
    """(size, paper_rt, model_rt, ratio) per message size."""
    p = params or MachineParams()
    rows = []
    for size, paper_rt in sorted(MICROBENCH_ROUND_TRIPS.items()):
        model_rt = 2 * p.one_way_latency_us(size)
        rows.append((size, paper_rt, model_rt, model_rt / paper_rt))
    return rows


def max_table1_error() -> float:
    """Worst-case |ratio - 1| over Table 1 (used by tests)."""
    return max(abs(r[4] - 1.0) for r in table1_rows())


def max_microbench_error() -> float:
    return max(abs(r[3] - 1.0) for r in microbenchmark_rows())
