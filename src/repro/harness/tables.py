"""ASCII table/series emitters matching the paper's presentation."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.config import GRANULARITIES
from repro.harness.matrix import PROTOCOLS

PROTO_LABEL = {"sc": "SC", "swlrc": "SW-LRC", "hlrc": "HLRC"}


def fmt_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    widths = [len(str(h)) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fault_table(
    results: Dict, app: str, title: str
) -> str:
    """Per-app read/write fault table in the style of Tables 3-13."""
    rows: List[List] = []
    for kind, attr in (("Read", "read_faults"), ("Write", "write_faults")):
        for proto in PROTOCOLS:
            row = [kind if proto == "sc" else "", PROTO_LABEL[proto]]
            for g in GRANULARITIES:
                val = "-"
                for c, r in results.items():
                    if (c.app, c.protocol, c.granularity) == (app, proto, g):
                        val = "FAIL" if r.stats is None else getattr(r.stats, attr)
                row.append(val)
            rows.append(row)
    return fmt_table(
        ["Fault", "Protocol"] + [str(g) for g in GRANULARITIES], rows, title
    )


def speedup_table(results: Dict, apps: Sequence[str], title: str) -> str:
    """Figure-1-style speedup grid, one row per protocol/granularity."""
    rows = []
    for app in apps:
        for proto in PROTOCOLS:
            row = [app, PROTO_LABEL[proto]]
            for g in GRANULARITIES:
                val = "-"
                for c, r in results.items():
                    if (c.app, c.protocol, c.granularity) == (app, proto, g):
                        val = "FAIL" if r.stats is None else f"{r.speedup:.2f}"
                row.append(val)
            rows.append(row)
    return fmt_table(
        ["Application", "Protocol"] + [str(g) for g in GRANULARITIES], rows, title
    )


def hm_table_text(hm: Dict[str, Dict[str, float]], title: str) -> str:
    """Render the Table 16/17 HM grids."""
    headers = ["Protocol"] + [str(g) for g in GRANULARITIES] + ["g_best"]
    rows = []
    for proto in list(PROTOCOLS) + ["p_best"]:
        if proto not in hm:
            continue
        label = PROTO_LABEL.get(proto, proto)
        row = [label]
        for col in [str(g) for g in GRANULARITIES] + ["g_best"]:
            v = hm[proto].get(col)
            row.append("-" if v is None else f"{v:.3f}")
        rows.append(row)
    return fmt_table(headers, rows, title)


def traffic_table(results: Dict, app: str, title: str) -> str:
    """Data-traffic table (Table 15 discussion)."""
    rows = []
    for proto in PROTOCOLS:
        row = [PROTO_LABEL[proto]]
        for g in GRANULARITIES:
            val = "-"
            for c, r in results.items():
                if (c.app, c.protocol, c.granularity) == (app, proto, g):
                    val = (
                        "FAIL"
                        if r.stats is None
                        else f"{r.stats.data_traffic_bytes / 1e6:.2f}"
                    )
            row.append(val)
        rows.append(row)
    return fmt_table(
        ["Protocol"] + [f"{g} (MB)" for g in GRANULARITIES], rows, title
    )
