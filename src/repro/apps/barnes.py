"""Barnes-Hut hierarchical N-body simulation, three versions (Section
4 / 5.3).  The versions differ in the tree-building algorithm, which
sets their synchronization frequency:

* **Barnes-Original** -- the SPLASH-2 "rebuild" version: every
  processor inserts its particles into one shared tree, locking tree
  cells.  The LRC protocols additionally require extra locking to make
  the program release-consistent: the paper reports 2,086 lock calls
  under SC vs 17,167 under the LRC protocols, with only ~120-150 us of
  computation between synchronizations -- fine-grain synchronization
  that makes relaxed protocols *never worthwhile* for this application
  (Section 5.2.2).
* **Barnes-Parttree** -- each processor builds a partial local tree,
  then the trees are merged: far fewer locks (~1.5 ms between syncs),
  but still too frequent for HLRC-4096 to beat SC-64.
* **Barnes-Spatial** -- space, not particles, is partitioned; the tree
  build uses no locks at all (barriers only), at the cost of load
  imbalance in the build phase (35% barrier time under SC-64).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Generator

from repro.apps.base import Application, register_app

#: bytes per particle record
BODY_BYTES = 96
#: bytes per tree cell
CELL_BYTES = 136
#: us per particle per step for the force phase (calibrated: 16384
#: particles x 2 steps ~ 33.787 s with the other phases below)
FORCE_US = 956.0
#: us per particle insertion into the tree
INSERT_US = 55.0
#: us per particle for the update phase
UPDATE_US = 20.0


class BarnesBase(Application):
    writers = "multiple"
    access_grain = "fine"
    paper_seq_time_s = 33.787
    poll_dilation = 0.10

    tiny_params = {"n_bodies": 256, "steps": 1}
    default_params = {"n_bodies": 2048, "steps": 2}
    full_params = {"n_bodies": 16384, "steps": 2}

    def _configure(self, n_bodies: int, steps: int) -> None:
        self.n_bodies = n_bodies
        self.steps = steps
        # Tree cells ~ 0.5 cells per body (Barnes-Hut octree shape).
        self.n_cells = max(64, n_bodies // 2)

    def sequential_time_us(self) -> float:
        n = self.n_bodies
        return self.steps * n * (FORCE_US + INSERT_US + UPDATE_US)

    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        nprocs = machine.params.n_nodes
        self.bodies = machine.alloc(self.n_bodies * BODY_BYTES, "bh-bodies")
        self.cells = machine.alloc(self.n_cells * CELL_BYTES, "bh-cells")
        for r in range(nprocs):
            lo, hi = self.split(self.n_bodies, nprocs, r)
            machine.place(self.bodies.base + lo * BODY_BYTES,
                          (hi - lo) * BODY_BYTES, r)
        # Tree cells end up spread round-robin over the nodes that
        # allocated them during previous builds.
        for c in range(self.n_cells):
            machine.place(self.cells.base + c * CELL_BYTES,
                          CELL_BYTES, c % nprocs)

    def body_addr(self, i: int) -> int:
        return self.bodies.base + i * BODY_BYTES

    def cell_addr(self, c: int) -> int:
        return self.cells.base + c * CELL_BYTES

    # ------------------------------------------------------------------
    # shared phases
    # ------------------------------------------------------------------
    def _cell_of_insertion(self, body: int, depth: int, step: int) -> int:
        """Deterministic scattered tree-path cell for an insertion."""
        return ((body * 2654435761) ^ (depth * 40503) ^ (step * 9176)) % self.n_cells

    def _force_phase(self, dsm, rank, nprocs, step, lo, hi) -> Generator:
        """Each rank's particles traverse the tree: scattered reads of
        cells and other bodies, then local writes of own particles."""
        mine = hi - lo
        chunk = 4
        for start in range(lo, hi, chunk):
            cnt = min(chunk, hi - start)
            # Tree traversal: scattered cell reads, ~log(n) distinct
            # cells per body.  This is what makes all Barnes versions
            # communication-heavy: at 64 bytes every cell is a separate
            # miss; at 4096 bytes a page fetch prefetches ~30 cells
            # (the 24x SC-64 vs HLRC-4096 read-miss gap of Table 12).
            for k in range(8):
                c = self._cell_of_insertion(start * 2654435761 + k * 7919, k, step)
                yield from dsm.touch_read(self.cell_addr(c), CELL_BYTES)
            # Nearby bodies of other partitions.  The force traversal
            # reads only their *prior-step* position fields; the owner's
            # same-phase update writes the velocity/new-position fields,
            # so the pair is field-disjoint within the record.
            peer = (rank + 1 + (start % max(1, nprocs - 1))) % nprocs
            plo, phi = self.split(self.n_bodies, nprocs, peer)
            if phi > plo:
                baddr = self.body_addr(plo + (start % (phi - plo)))
                with dsm.assume_disjoint(
                    "force phase reads prior-step position fields"
                ):
                    yield from dsm.touch_read(baddr, BODY_BYTES)
            yield from dsm.compute(FORCE_US * cnt)
        # Update own particles (local).
        yield from dsm.touch_write(
            self.body_addr(lo), mine * BODY_BYTES,
            pattern=self.pattern(step, rank),
        )
        yield from dsm.compute(UPDATE_US * mine)


@register_app
class BarnesOriginal(BarnesBase):
    """Shared-tree rebuild with per-cell locks (lock-heavy)."""

    name = "barnes-original"
    sync_grain = "fine"
    paper_barriers = 8

    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        lo, hi = self.split(self.n_bodies, nprocs, rank)
        # The LRC protocols require the extra synchronization that makes
        # the program release-consistent: one lock per insertion instead
        # of one lock per contended cell allocation (~1 in 8).
        lrc_mode = dsm.machine.protocol.uses_notices
        yield from dsm.barrier(0, participants=nprocs)
        for step in range(self.steps):
            # ---- tree build: insert own particles into the shared tree
            for body in range(lo, hi):
                depth = 1 + (body % 3)
                locked = lrc_mode or (body % 8 == 0)
                cell = self._cell_of_insertion(body, depth, step)
                if locked:
                    yield from dsm.acquire(700 + cell % 128)
                # Unlocked (SC-mode) insertions model the common case
                # where the insertion descends into a freshly allocated
                # cell private to this processor; only the ~1-in-8
                # contended allocations take the cell lock.
                ctx = (
                    nullcontext() if locked
                    else dsm.assume_disjoint(
                        "uncontended insertions write privately allocated cells"
                    )
                )
                with ctx:
                    yield from dsm.touch_write(
                        self.cell_addr(cell), CELL_BYTES,
                        pattern=self.pattern(step, body),
                    )
                yield from dsm.compute(INSERT_US)
                if locked:
                    yield from dsm.release(700 + cell % 128)
            yield from dsm.barrier(1, participants=nprocs)
            # ---- forces + update
            yield from self._force_phase(dsm, rank, nprocs, step, lo, hi)
            yield from dsm.barrier(2, participants=nprocs)
            yield from dsm.barrier(3, participants=nprocs)
            yield from dsm.barrier(1, participants=nprocs)


@register_app
class BarnesParttree(BarnesBase):
    """Partial local trees merged into a global tree (fewer locks)."""

    name = "barnes-parttree"
    sync_grain = "coarse"
    paper_barriers = 13

    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        lo, hi = self.split(self.n_bodies, nprocs, rank)
        mine = hi - lo
        yield from dsm.barrier(0, participants=nprocs)
        for step in range(self.steps):
            # ---- local tree build: no shared writes, no locks.
            yield from dsm.compute(INSERT_US * mine * 0.8)
            yield from dsm.barrier(1, participants=nprocs)
            # ---- merge local trees into the global tree: writes to the
            # shared cells under locks, but only ~n/32 merge operations.
            # Merging goes into the (shared) top levels of the tree, so
            # different processors' merge writes land on the same cells.
            merges = max(1, mine // 24)
            top_cells = max(16, self.n_cells // 16)
            for k in range(merges):
                cell = self._cell_of_insertion(rank * 131 + k, k % 4, step) % top_cells
                yield from dsm.acquire(700 + cell % 64)
                yield from dsm.touch_write(
                    self.cell_addr(cell), CELL_BYTES,
                    pattern=self.pattern(step, rank, k),
                )
                yield from dsm.compute(INSERT_US * 0.2 * mine / merges)
                yield from dsm.release(700 + cell % 64)
            yield from dsm.barrier(2, participants=nprocs)
            # ---- forces + update
            yield from self._force_phase(dsm, rank, nprocs, step, lo, hi)
            yield from dsm.barrier(3, participants=nprocs)
            yield from dsm.barrier(4, participants=nprocs)
            yield from dsm.barrier(1, participants=nprocs)
            yield from dsm.barrier(2, participants=nprocs)


@register_app
class BarnesSpatial(BarnesBase):
    """Spatial partitioning: lock-free tree build, barriers only, at
    the price of load imbalance in the build phase."""

    name = "barnes-spatial"
    sync_grain = "coarse"
    paper_barriers = 12

    #: build-phase imbalance: the densest spatial region has ~2.6x the
    #: average insertion work (paper: >35% barrier time at SC-64)
    IMBALANCE = 2.6

    def spatial_cell_owner(self, c: int, step: int, nprocs: int) -> int:
        """Which processor's space a tree cell belongs to.

        Octree cells are allocated from a shared pool as the tree
        grows, so one processor's cells *scatter* across the address
        space ("each processor accesses tree cells and particles that
        fall on different pages") -- a hash, not a contiguous slab.
        Particles drift between regions, so a fraction of cells change
        owner every step."""
        owner = ((c * 40503) >> 3) % nprocs
        if (c + step) % 6 == 0:
            owner = (owner + 1) % nprocs
        return owner

    def _build_weight(self, rank: int, nprocs: int, step: int) -> float:
        """Deterministic per-rank build-load factor with mean ~1."""
        hot = (step * 5 + 3) % nprocs
        if rank == hot:
            return self.IMBALANCE
        return (nprocs - self.IMBALANCE) / (nprocs - 1)

    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        lo, hi = self.split(self.n_bodies, nprocs, rank)
        mine = hi - lo
        yield from dsm.barrier(0, participants=nprocs)
        for step in range(self.steps):
            # ---- lock-free spatial tree build: each rank writes only
            # the cells of its own space (no locks, but imbalanced, and
            # the cells scatter over pages written by other regions'
            # owners -> write-write false sharing at coarse grain).
            w = self._build_weight(rank, nprocs, step)
            for c in range(self.n_cells):
                if self.spatial_cell_owner(c, step, nprocs) == rank:
                    yield from dsm.touch_write(
                        self.cell_addr(c), CELL_BYTES,
                        pattern=self.pattern(step, rank, c),
                    )
            yield from dsm.compute(INSERT_US * mine * w)
            yield from dsm.barrier(1, participants=nprocs)
            # ---- forces + update
            yield from self._force_phase(dsm, rank, nprocs, step, lo, hi)
            yield from dsm.barrier(2, participants=nprocs)
            yield from dsm.barrier(3, participants=nprocs)
            yield from dsm.barrier(1, participants=nprocs)
            yield from dsm.barrier(2, participants=nprocs)
