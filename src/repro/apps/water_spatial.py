"""Water-Spatial: cell-based molecular dynamics (SPLASH-2).

The 3-d box is cut into cells; each processor owns a contiguous
cubical partition of cells with the linked lists of molecules in them.
Force computation reads molecule data from neighbouring partitions'
face cells, and as molecules *move* between cells across steps, a
processor's molecules scatter over pages owned by others -- the
fine-grain, multiple-writer pattern of Table 10.  Synchronization is
very coarse (Table 2: 1439.83 ms computation between syncs).
"""

from __future__ import annotations

import math
from typing import Generator, List, Tuple

from repro.apps.base import Application, register_app

#: bytes per molecule record
MOL_BYTES = 672
#: us per molecule per step (calibrated: 4096 mol x 5 steps ~ 898.454 s)
MOL_STEP_US = 43870.0


@register_app
class WaterSpatial(Application):
    name = "water-spatial"
    writers = "multiple"
    access_grain = "fine"
    sync_grain = "coarse"
    paper_barriers = 18
    paper_seq_time_s = 898.454
    poll_dilation = 0.10

    tiny_params = {"n_mols": 64, "steps": 1, "cells_side": 4}
    default_params = {"n_mols": 512, "steps": 2, "cells_side": 8}
    full_params = {"n_mols": 4096, "steps": 5, "cells_side": 16}

    def _configure(self, n_mols: int, steps: int, cells_side: int) -> None:
        self.n_mols = n_mols
        self.steps = steps
        self.side = cells_side
        self.n_cells = cells_side**3
        #: capacity per cell (molecules move; cells hold a few each)
        self.cell_cap = max(2, (2 * n_mols) // self.n_cells)
        self.cell_bytes = self.cell_cap * MOL_BYTES

    def sequential_time_us(self) -> float:
        return MOL_STEP_US * self.n_mols * self.steps

    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        nprocs = machine.params.n_nodes
        self.cells = machine.alloc(self.n_cells * self.cell_bytes, "ws-cells")
        # Cubical partition: split the cube into nprocs sub-boxes along
        # a 3-d processor grid.
        self.pgrid = self._proc_grid(nprocs)
        for cid in range(self.n_cells):
            machine.place(
                self.cells.base + cid * self.cell_bytes,
                self.cell_bytes,
                self.cell_owner(cid, nprocs),
            )

    @staticmethod
    def _proc_grid(nprocs: int) -> Tuple[int, int, int]:
        px = int(round(nprocs ** (1 / 3))) or 1
        while nprocs % px:
            px -= 1
        rest = nprocs // px
        py = int(math.sqrt(rest)) or 1
        while rest % py:
            py -= 1
        pz = rest // py
        return px, py, pz

    def cell_coords(self, cid: int) -> Tuple[int, int, int]:
        s = self.side
        return cid // (s * s), (cid // s) % s, cid % s

    def cell_owner(self, cid: int, nprocs: int) -> int:
        px, py, pz = self.pgrid
        x, y, z = self.cell_coords(cid)
        s = self.side
        ox = min(x * px // s, px - 1)
        oy = min(y * py // s, py - 1)
        oz = min(z * pz // s, pz - 1)
        return (ox * py + oy) * pz + oz

    def cell_addr(self, cid: int) -> int:
        return self.cells.base + cid * self.cell_bytes

    def owned_cells(self, rank: int, nprocs: int) -> List[int]:
        return [c for c in range(self.n_cells) if self.cell_owner(c, nprocs) == rank]

    def boundary_cells(self, rank: int, nprocs: int) -> List[int]:
        """Owned cells with at least one face neighbour owned elsewhere."""
        out = []
        s = self.side
        for c in self.owned_cells(rank, nprocs):
            x, y, z = self.cell_coords(c)
            for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
                               (0, 0, 1), (0, 0, -1)):
                nx, ny, nz = x + dx, y + dy, z + dz
                if 0 <= nx < s and 0 <= ny < s and 0 <= nz < s:
                    ncid = (nx * s + ny) * s + nz
                    if self.cell_owner(ncid, nprocs) != rank:
                        out.append((c, ncid))
        return out

    # ------------------------------------------------------------------
    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        owned = self.owned_cells(rank, nprocs)
        boundary = self.boundary_cells(rank, nprocs)
        my_mols = self.n_mols * len(owned) / max(1, self.n_cells)
        step_cost = MOL_STEP_US * my_mols
        yield from dsm.barrier(0, participants=nprocs)
        for step in range(self.steps):
            # ---- force phase: read neighbour partitions' face cells
            # (one fine-grained read per remote cell), compute.
            # Face-cell reads fetch the neighbours' *prior-step*
            # molecule positions; the owner's same-phase in-place update
            # writes the new-step fields -- field-disjoint in the real
            # program though the region touches overlap.
            # Dedup is local bookkeeping; the exemption scope covers
            # only the shared face-cell reads.
            remote_cells = dict.fromkeys(rc for _, rc in boundary)
            with dsm.assume_disjoint(
                "force phase reads prior-step position fields"
            ):
                for remote_c in remote_cells:
                    yield from dsm.touch_read(
                        self.cell_addr(remote_c), self.cell_bytes
                    )
            yield from dsm.compute(step_cost * 0.8)
            # Update own cells in place.
            for c in owned:
                yield from dsm.touch_write(
                    self.cell_addr(c), self.cell_bytes,
                    pattern=self.pattern(step, rank, c),
                )
            yield from dsm.barrier(1, participants=nprocs)

            # ---- molecule movement: some molecules cross partition
            # faces, so this processor writes into cells owned by its
            # neighbours (fine-grain multiple-writer; lock per cell).
            moved = 0
            for own_c, remote_c in boundary:
                # Deterministically move from every 3rd boundary face.
                if (own_c + remote_c + step) % 3 == 0:
                    yield from dsm.acquire(500 + remote_c % 64)
                    yield from dsm.touch_write(
                        self.cell_addr(remote_c), MOL_BYTES,
                        pattern=self.pattern(step, rank, remote_c),
                    )
                    yield from dsm.release(500 + remote_c % 64)
                    moved += 1
            yield from dsm.compute(step_cost * 0.2)
            yield from dsm.barrier(2, participants=nprocs)
            yield from dsm.barrier(1, participants=nprocs)
