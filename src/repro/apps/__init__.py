"""The 12 applications of the paper's evaluation (Section 4).

Eight SPLASH-2 benchmarks plus restructured variants:

=================  ==========================================================
LU                 blocked dense LU, contiguous blocks (single-writer coarse)
FFT                six-step 1-D FFT with transposes (single-writer fine reads)
Ocean-Original     contiguous 4-d array subgrid partitions (fine column reads)
Ocean-Rowwise      row-wise partitioning (coarse reads)
Water-Nsquared     O(n^2) molecular dynamics, migratory lock-protected updates
Water-Spatial      cell-based molecular dynamics (fine multi-writer)
Volrend-Original   ray casting, 4x4-pixel tile tasks + stealing
Volrend-Rowwise    ray casting, row tasks (less image false sharing)
Raytrace           ray tracing with distributed task queues
Barnes-Original    Barnes-Hut, lock-heavy shared tree rebuild
Barnes-Parttree    Barnes-Hut, partial local trees merged (fewer locks)
Barnes-Spatial     Barnes-Hut, spatial partition, lock-free tree build
=================  ==========================================================

Every application is an *access-pattern-faithful* reimplementation: it
allocates the same data structures in the shared address space,
partitions them the same way, synchronizes at the same points, and
issues region reads/writes matching the paper's description of each
program's sharing behaviour.  Computation between accesses is costed by
a per-application model calibrated so the full paper-scale problem
reproduces Table 1's sequential times (see tests/test_table1).
"""

from repro.apps.base import Application, make_app, APP_REGISTRY, register_app
from repro.apps import lu, fft, ocean, water_nsquared, water_spatial  # noqa: F401
from repro.apps import volrend, raytrace, barnes  # noqa: F401

#: canonical paper order of the 12 applications
APP_NAMES = [
    "lu",
    "fft",
    "ocean-original",
    "ocean-rowwise",
    "water-nsquared",
    "water-spatial",
    "volrend-original",
    "volrend-rowwise",
    "raytrace",
    "barnes-original",
    "barnes-parttree",
    "barnes-spatial",
]

#: the 8 "original" implementations used for Table 16
ORIGINAL_8 = [
    "lu",
    "fft",
    "ocean-original",
    "water-nsquared",
    "volrend-original",
    "water-spatial",
    "raytrace",
    "barnes-original",
]

#: version groups used for the Table 17 best-version statistics
VERSION_GROUPS = {
    "lu": ["lu"],
    "fft": ["fft"],
    "ocean": ["ocean-original", "ocean-rowwise"],
    "water-nsquared": ["water-nsquared"],
    "water-spatial": ["water-spatial"],
    "volrend": ["volrend-original", "volrend-rowwise"],
    "raytrace": ["raytrace"],
    "barnes": ["barnes-original", "barnes-parttree", "barnes-spatial"],
}

__all__ = [
    "Application",
    "make_app",
    "register_app",
    "APP_REGISTRY",
    "APP_NAMES",
    "ORIGINAL_8",
    "VERSION_GROUPS",
]
