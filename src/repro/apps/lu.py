"""LU: blocked dense LU factorization (SPLASH-2, contiguous-blocks
version).

The version the paper uses "allocates each block continuously in
virtual memory and assigns contiguous blocks to each processor": block
(I, J) belongs to a 2-D-scattered owner, and all blocks of one owner
are laid out back-to-back in the shared address space, so no two
processors' blocks share a page.  The result (paper Table 3): zero
write faults at every granularity, read faults shrinking ~4x per 4x
granularity, and all protocols improving with granularity
(prefetching).

Classification (Table 2): single writer, coarse-grain access,
coarse-grain synchronization; 64 barriers at full scale; all protocols
good, all improve with granularity.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, Tuple

from repro.apps.base import Application, register_app

#: bytes per matrix element
ELEM = 8
#: calibration constant: microseconds per B^3-flop block operation unit
#: (chosen so the 1024x1024/B=16 problem matches Table 1's 73.41 s)
BLOCK_OP_US = 420.0


@register_app
class LUApp(Application):
    name = "lu"
    writers = "single"
    access_grain = "coarse"
    sync_grain = "coarse"
    paper_barriers = 64
    paper_seq_time_s = 73.41
    # Section 5.4: LU with polling code inserted runs 55% slower on one
    # processor.
    poll_dilation = 0.55

    tiny_params = {"n": 64, "block": 16}
    default_params = {"n": 384, "block": 16}
    full_params = {"n": 1024, "block": 16}

    def _configure(self, n: int, block: int) -> None:
        if n % block:
            raise ValueError("matrix size must be a multiple of the block size")
        self.n = n
        self.block = block
        self.nb = n // block
        self.block_bytes = block * block * ELEM
        self._addr: Dict[Tuple[int, int], int] = {}
        self._grid: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    def grid_dims(self, nprocs: int) -> Tuple[int, int]:
        """(rows, cols) of the ~square processor grid, memoized --
        ``owner`` runs in the innermost factorization loop."""
        dims = self._grid.get(nprocs)
        if dims is None:
            pr = int(math.sqrt(nprocs))
            while nprocs % pr:
                pr -= 1
            dims = (pr, nprocs // pr)
            self._grid[nprocs] = dims
        return dims

    def owner(self, bi: int, bj: int, nprocs: int) -> int:
        """2-D scatter decomposition of blocks over a ~square grid."""
        pr, pc = self.grid_dims(nprocs)
        return (bi % pr) * pc + (bj % pc)

    def work_units(self) -> float:
        """Total block-operation units of the factorization."""
        nb = self.nb
        units = 0.0
        for k in range(nb):
            units += 0.5  # diagonal factorization
            units += 2.0 * (nb - k - 1)  # row + column perimeter
            units += 2.0 * (nb - k - 1) ** 2  # interior updates
        return units

    def _unit_cost(self) -> float:
        # Scale block-op cost with B^3 relative to the reference B=16.
        return BLOCK_OP_US * (self.block / 16) ** 3

    def sequential_time_us(self) -> float:
        return self.work_units() * self._unit_cost()

    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        nprocs = machine.params.n_nodes
        # Group the blocks by owner so each processor's data is
        # contiguous in the address space (the version's key property).
        per_owner: Dict[int, list] = {}
        for bi in range(self.nb):
            for bj in range(self.nb):
                per_owner.setdefault(self.owner(bi, bj, nprocs), []).append((bi, bj))
        for owner_id in sorted(per_owner):
            # Column-major order within an owner: adjacent blocks in
            # memory are (i, k) and (i + pr, k) -- read in the same
            # step, written in the same earlier steps, so a 4096-byte
            # page never sees read-write false sharing and the extra
            # block fetched with a page is exactly the next one needed
            # (prefetching, Section 5.2.2).
            blocks = sorted(per_owner[owner_id], key=lambda b: (b[1], b[0]))
            seg = machine.alloc(len(blocks) * self.block_bytes, f"lu-p{owner_id}")
            machine.place_segment(seg, owner_id)
            for idx, (bi, bj) in enumerate(blocks):
                self._addr[(bi, bj)] = seg.base + idx * self.block_bytes

    def block_addr(self, bi: int, bj: int) -> int:
        return self._addr[(bi, bj)]

    # ------------------------------------------------------------------
    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        nb = self.nb
        c = self._unit_cost()
        bb = self.block_bytes
        pr, pc = self.grid_dims(nprocs)
        own = lambda bi, bj: (bi % pr) * pc + (bj % pc) == rank

        for k in range(nb):
            # -- diagonal factorization by its owner
            if own(k, k):
                yield from dsm.touch_write(
                    self.block_addr(k, k), bb, pattern=self.pattern(k, k, 0)
                )
                yield from dsm.compute(0.5 * c)
            yield from dsm.barrier(0, participants=nprocs)

            # -- perimeter updates read the diagonal block
            diag = self.block_addr(k, k)
            for i in range(k + 1, nb):
                if own(i, k):
                    yield from dsm.touch_read(diag, bb)
                    yield from dsm.touch_write(
                        self.block_addr(i, k), bb, pattern=self.pattern(k, i, 1)
                    )
                    yield from dsm.compute(c)
            for j in range(k + 1, nb):
                if own(k, j):
                    yield from dsm.touch_read(diag, bb)
                    yield from dsm.touch_write(
                        self.block_addr(k, j), bb, pattern=self.pattern(k, j, 2)
                    )
                    yield from dsm.compute(c)
            yield from dsm.barrier(1, participants=nprocs)

            # -- interior updates: A[i][j] -= A[i][k] * A[k][j]
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    if own(i, j):
                        yield from dsm.touch_read(self.block_addr(i, k), bb)
                        yield from dsm.touch_read(self.block_addr(k, j), bb)
                        yield from dsm.touch_write(
                            self.block_addr(i, j),
                            bb,
                            pattern=self.pattern(k, i * nb + j, 3),
                        )
                        yield from dsm.compute(2.0 * c)
            # The next step's diagonal is computed by the processor that
            # just updated it, so only the perimeter consumers need the
            # top-of-loop barrier.
        yield from dsm.barrier(0, participants=nprocs)
