"""Ocean: eddy-current simulation on regular grids (SPLASH-2).

Two versions (paper Section 4 / 5.3):

* **Ocean-Original** -- the SPLASH-2 "contiguous" version: each
  processor's square subgrid is allocated contiguously (4-d arrays), so
  there is a single writer per page, but *column* borders are read one
  8-byte element at a time -> fine-grain reads, 88-99% fragmentation,
  all protocols poor (Table 5).
* **Ocean-Rowwise** -- row-wise partitioning: border exchanges become
  whole contiguous rows -> coarse-grain reads.  The 514x514 grid's
  4112-byte rows misalign with 4096-byte pages, so fragmentation and
  write-write false sharing appear at the partition boundaries at page
  granularity (speedups decline at 4K, Table 4).
"""

from __future__ import annotations

import math
from typing import Generator

from repro.apps.base import Application, register_app

ELEM = 8
#: us per grid point per relaxation sweep (calibrated: 514^2 x 150
#: sweeps ~ 37.43 s, Table 1)
POINT_US = 0.945


class OceanBase(Application):
    writers = "single"
    sync_grain = "coarse"
    paper_seq_time_s = 37.43
    poll_dilation = 0.12

    tiny_params = {"n": 34, "sweeps": 3}
    default_params = {"n": 450, "sweeps": 10}
    full_params = {"n": 514, "sweeps": 150}

    def _configure(self, n: int, sweeps: int) -> None:
        self.n = n
        self.sweeps = sweeps
        self.row_bytes = n * ELEM

    def sequential_time_us(self) -> float:
        return POINT_US * self.n * self.n * self.sweeps


@register_app
class OceanRowwise(OceanBase):
    """Row-wise partitioning: coarse-grain border reads."""

    name = "ocean-rowwise"
    access_grain = "coarse"
    paper_barriers = 323

    def setup(self, machine) -> None:
        nprocs = machine.params.n_nodes
        # The grid's rows are packed back-to-back; 514*8 = 4112-byte
        # rows deliberately do NOT align to pages, creating boundary
        # false sharing at 4096-byte granularity exactly as the paper
        # describes.
        self.grid = machine.alloc(self.n * self.row_bytes, "ocean-grid")
        for r in range(nprocs):
            lo, hi = self.split(self.n, nprocs, r)
            machine.place(self.grid.base + lo * self.row_bytes,
                          (hi - lo) * self.row_bytes, r)

    def row_addr(self, row: int) -> int:
        return self.grid.base + row * self.row_bytes

    #: chunks per boundary row: element-level stores at the partition
    #: edge are individually preemptible by the neighbour's recalls, so
    #: the boundary row is written in pieces with relaxation compute in
    #: between -- the SC "ping-pong" of Section 5.4 needs this temporal
    #: spread to show up
    BOUNDARY_CHUNKS = 8

    def _write_boundary_row(self, dsm, row: int, it: int, phase: int,
                            rank: int, chunk_cost: float) -> Generator:
        addr = self.row_addr(row)
        chunk = max(1, self.row_bytes // self.BOUNDARY_CHUNKS)
        pos = 0
        while pos < self.row_bytes:
            size = min(chunk, self.row_bytes - pos)
            yield from dsm.touch_write(
                addr + pos, size, pattern=self.pattern(it, phase, rank, pos)
            )
            yield from dsm.compute(chunk_cost)
            pos += size

    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        lo, hi = self.split(self.n, nprocs, rank)
        my_rows = hi - lo
        # Red-black Gauss-Seidel: two half-sweeps per iteration, each
        # reading the neighbours' boundary rows again (they changed in
        # the other colour's pass).
        half_cost = POINT_US * my_rows * self.n / 2.0
        # More ranks than rows (tiny grids on big machines) leaves the
        # tail ranks with an empty [lo, lo) slice; they own no rows and
        # only participate in the barriers.
        if my_rows > 1:
            boundary_rows = [lo, hi - 1]
        elif my_rows == 1:
            boundary_rows = [lo]
        else:
            boundary_rows = []
        interior_rows = my_rows - len(boundary_rows)
        boundary_chunk_cost = (
            POINT_US * self.n / 2.0 / self.BOUNDARY_CHUNKS
        )
        interior_cost = half_cost - POINT_US * self.n * len(boundary_rows) / 2.0
        yield from dsm.barrier(0, participants=nprocs)
        for it in range(self.sweeps):
            for phase in range(2):
                # Same-phase neighbour writes touch these rows at region
                # granularity, but the red-black sweep only reads the
                # other (element-disjoint) colour.
                with dsm.assume_disjoint(
                    "red-black half-sweeps read the other colour"
                ):
                    if my_rows > 0 and lo > 0:
                        yield from dsm.touch_read(self.row_addr(lo - 1), self.row_bytes)
                    if my_rows > 0 and hi < self.n:
                        yield from dsm.touch_read(self.row_addr(hi), self.row_bytes)
                # Interior rows relax in bulk (their pages are private).
                if interior_rows > 0:
                    yield from dsm.touch_write(
                        self.row_addr(lo + 1),
                        interior_rows * self.row_bytes,
                        pattern=self.pattern(it, phase, rank),
                    )
                    yield from dsm.compute(max(0.0, interior_cost))
                # Boundary rows relax element-chunk-wise (shared pages).
                for row in boundary_rows:
                    yield from self._write_boundary_row(
                        dsm, row, it, phase, rank, boundary_chunk_cost
                    )
                yield from dsm.barrier(1 + phase, participants=nprocs)


@register_app
class OceanOriginal(OceanBase):
    """Contiguous subgrid (4-d array) partitioning: fine column reads."""

    name = "ocean-original"
    access_grain = "fine"
    paper_barriers = 328

    def setup(self, machine) -> None:
        nprocs = machine.params.n_nodes
        pr = int(math.sqrt(nprocs))
        while nprocs % pr:
            pr -= 1
        self.pr = pr
        self.pc = nprocs // pr
        self.sub_rows = (self.n + self.pr - 1) // self.pr
        self.sub_cols = (self.n + self.pc - 1) // self.pc
        self.sub_row_bytes = self.sub_cols * ELEM
        self.sub_bytes = self.sub_rows * self.sub_row_bytes
        # One contiguous allocation per processor's subgrid: single
        # writer per page by construction.
        self.subgrids = []
        for r in range(nprocs):
            seg = machine.alloc(self.sub_bytes, f"ocean-sub{r}")
            machine.place_segment(seg, r)
            self.subgrids.append(seg.base)

    def neighbor(self, rank: int, dr: int, dc: int, nprocs: int):
        r, c = divmod(rank, self.pc)
        nr, nc = r + dr, c + dc
        if 0 <= nr < self.pr and 0 <= nc < self.pc:
            n = nr * self.pc + nc
            if n < nprocs:
                return n
        return None

    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        base = self.subgrids[rank]
        sweep_cost = POINT_US * self.sub_rows * self.sub_cols
        yield from dsm.barrier(0, participants=nprocs)
        for it in range(self.sweeps):
            # Border reads overlap the neighbours' same-sweep in-place
            # relaxation at region granularity; the real red-black
            # sweeps only read the *other* colour's (element-disjoint)
            # points, so the pairs are conflict-free.
            # Neighbour lookup and address arithmetic are plain local
            # work; keep the exemption scope to the shared reads alone.
            up = self.neighbor(rank, -1, 0, nprocs)
            down = self.neighbor(rank, 1, 0, nprocs)
            left = self.neighbor(rank, 0, -1, nprocs)
            right = self.neighbor(rank, 0, 1, nprocs)
            with dsm.assume_disjoint("red-black half-sweeps read the other colour"):
                # Row borders of up/down neighbours: contiguous sub-rows.
                if up is not None:
                    last_row = self.subgrids[up] + (self.sub_rows - 1) * self.sub_row_bytes
                    yield from dsm.touch_read(last_row, self.sub_row_bytes)
                if down is not None:
                    yield from dsm.touch_read(self.subgrids[down], self.sub_row_bytes)
                # Column borders of left/right neighbours: ONE ELEMENT AT
                # A TIME -- the fine-grain pattern that fragments badly at
                # coarse granularity (>99% useless traffic at 4096 bytes).
                if left is not None:
                    col = self.subgrids[left] + (self.sub_cols - 1) * ELEM
                    for row in range(self.sub_rows):
                        yield from dsm.touch_read(col + row * self.sub_row_bytes, ELEM)
                if right is not None:
                    col = self.subgrids[right]
                    for row in range(self.sub_rows):
                        yield from dsm.touch_read(col + row * self.sub_row_bytes, ELEM)
            # Relax the whole local subgrid in place (local writes).
            yield from dsm.touch_write(
                base, self.sub_bytes, pattern=self.pattern(it, rank)
            )
            yield from dsm.compute(sweep_cost)
            yield from dsm.barrier(1, participants=nprocs)
            yield from dsm.barrier(2, participants=nprocs)
