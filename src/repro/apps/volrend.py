"""Volrend: volume rendering by ray casting (SPLASH-2).

Rays are cast through read-only volume data onto a shared image plane.
Work is distributed through per-processor task queues with stealing
(lock-protected).  The two versions differ only in task shape
(Section 4 / 5.3):

* **Volrend-Original** -- 4x4-pixel tiles: better initial load balance,
  but tiles are so small that *write-write false sharing on the image
  is not eliminated even at 64-byte granularity* (Table 9 shows write
  faults at every granularity).
* **Volrend-Rowwise** -- whole image rows: interacts well with the
  row-major layout, far less false sharing, but coarser load balance.

Classification: multiple writer, fine-grain access, coarse-grain
synchronization; 16 barriers.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import Application, register_app

#: bytes per pixel
PIXEL = 4
#: us per pixel rendered (calibrated: 128^2 x 4 frames ~ 4.493 s)
PIXEL_US = 45.0
#: weight spread of per-task cost (center of the head is denser)
MAX_WEIGHT = 2.0


class VolrendBase(Application):
    writers = "multiple"
    access_grain = "fine"
    sync_grain = "coarse"
    paper_barriers = 16
    paper_seq_time_s = 4.493
    poll_dilation = 0.10

    tiny_params = {"image": 32, "frames": 1, "volume_kb": 64}
    default_params = {"image": 64, "frames": 2, "volume_kb": 256}
    full_params = {"image": 128, "frames": 4, "volume_kb": 2048}

    def _configure(self, image: int, frames: int, volume_kb: int) -> None:
        self.image = image
        self.frames = frames
        self.volume_bytes = volume_kb * 1024
        self.row_bytes = image * PIXEL

    def _task_grid(self):
        """(x0, y0, w, h) of every task of one frame."""
        raise NotImplementedError

    def sequential_time_us(self) -> float:
        """Exact sum of the per-task cost model over all frames."""
        img = self.image
        total = 0.0
        for x0, y0, w, h in self._task_grid():
            cx = (x0 + w / 2.0) / img
            cy = (y0 + h / 2.0) / img
            total += PIXEL_US * w * h * self.weight(cx, cy)
        return total * self.frames

    def weight(self, cx: float, cy: float) -> float:
        """Ray-casting work is heavier near the volume center."""
        dx = abs(cx - 0.5) * 2
        dy = abs(cy - 0.5) * 2
        r = min(1.0, (dx * dx + dy * dy) ** 0.5)
        return 1.0 + MAX_WEIGHT * (1.0 - r)

    def setup(self, machine) -> None:
        nprocs = machine.params.n_nodes
        self.img = machine.alloc(self.image * self.row_bytes, "vr-image")
        self.vol = machine.alloc(self.volume_bytes, "vr-volume")
        # The volume was initialized by node 0 (read-only afterwards).
        machine.place_segment(self.vol, 0)
        for r in range(nprocs):
            lo, hi = self.split(self.image, nprocs, r)
            machine.place(self.img.base + lo * self.row_bytes,
                          (hi - lo) * self.row_bytes, r)

    # ------------------------------------------------------------------
    # task-queue machinery shared by both versions
    # ------------------------------------------------------------------
    def _run_task_loop(self, dsm, rank, nprocs, frame, tasks_of, do_task) -> Generator:
        """Process own tasks lock-free, then steal from other queues.

        As in the real program, a processor drains its own queue with
        local atomic operations; the distributed-lock traffic comes
        only from *stealing*, where a thief locks the victim's queue
        and takes half of what remains ("the interesting communication
        occurs in task stealing", Section 4).  The shared queues live
        on the single Application object all ranks share; pops happen
        atomically within one simulation event."""
        key = ("queues", frame)
        if not hasattr(self, "_shared"):
            self._shared = {}
        if key not in self._shared:
            self._shared[key] = [list(tasks_of(p)) for p in range(nprocs)]
        queues = self._shared[key]

        # Drain own queue (no DSM locks; local queue operations).
        while queues[rank]:
            task = queues[rank].pop(0)
            yield from do_task(task)

        # Steal: lock the victim, take half of its remaining tasks.
        for i in range(1, nprocs):
            victim = (rank + i) % nprocs
            while queues[victim]:
                yield from dsm.acquire(900 + victim)
                n = len(queues[victim])
                grabbed = []
                if n:
                    take = max(1, n // 2)
                    grabbed = queues[victim][n - take :]
                    del queues[victim][n - take :]
                yield from dsm.release(900 + victim)
                for task in grabbed:
                    yield from do_task(task)

    def _render_task(self, dsm, rank, frame, x0, y0, w, h) -> Generator:
        """Cast rays for a w x h pixel region: scattered reads of the
        read-only volume plus writes of the region's pixel rows."""
        img = self.image
        cx = (x0 + w / 2.0) / img
        cy = (y0 + h / 2.0) / img
        cost = PIXEL_US * w * h * self.weight(cx, cy)
        # A few scattered volume reads (read-only: faults only cold).
        for k in range(2):
            off = (
                (x0 * 7919 + y0 * 104729 + k * 31 + frame)
                * 64
            ) % max(64, self.volume_bytes - 64)
            yield from dsm.touch_read(self.vol.base + off, 64)
        yield from dsm.compute(cost)
        # Write the task's pixels row by row (tiles write 16-byte
        # strips -> false sharing; rows write 512-byte rows).
        for row in range(y0, y0 + h):
            addr = self.img.base + row * self.row_bytes + x0 * PIXEL
            yield from dsm.touch_write(
                addr, w * PIXEL, pattern=self.pattern(frame, rank, row)
            )


@register_app
class VolrendOriginal(VolrendBase):
    """4x4-pixel tile tasks."""

    name = "volrend-original"
    TILE = 4

    def _task_grid(self):
        t = self.TILE
        n = self.image // t
        return [(x * t, y * t, t, t) for y in range(n) for x in range(n)]

    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        img = self.image
        t = self.TILE
        tiles_per_dim = img // t
        all_tiles = [
            (x * t, y * t) for y in range(tiles_per_dim) for x in range(tiles_per_dim)
        ]

        def tasks_of(p):
            # Round-robin tile assignment: the Original version trades
            # memory-layout affinity for initial load balance (Section
            # 5.3), which interleaves different processors' tiles in
            # every image block -- write-write false sharing that not
            # even 64-byte granularity eliminates.
            return all_tiles[p::nprocs]

        yield from dsm.barrier(0, participants=nprocs)
        for frame in range(self.frames):
            def do_task(tile, _frame=frame):
                x0, y0 = tile
                return self._render_task(dsm, rank, _frame, x0, y0, t, t)

            yield from self._run_task_loop(
                dsm, rank, nprocs, frame, tasks_of, do_task
            )
            yield from dsm.barrier(1, participants=nprocs)
            yield from dsm.barrier(2, participants=nprocs)
            yield from dsm.barrier(1, participants=nprocs)


@register_app
class VolrendRowwise(VolrendBase):
    """Whole-image-row tasks."""

    name = "volrend-rowwise"

    def _task_grid(self):
        return [(0, row, self.image, 1) for row in range(self.image)]

    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        img = self.image
        rows = list(range(img))

        def tasks_of(p):
            lo, hi = self.split(img, nprocs, p)
            return rows[lo:hi]

        yield from dsm.barrier(0, participants=nprocs)
        for frame in range(self.frames):
            def do_task(row, _frame=frame):
                return self._render_task(dsm, rank, _frame, 0, row, img, 1)

            yield from self._run_task_loop(
                dsm, rank, nprocs, frame, tasks_of, do_task
            )
            yield from dsm.barrier(1, participants=nprocs)
            yield from dsm.barrier(2, participants=nprocs)
            yield from dsm.barrier(1, participants=nprocs)
