"""Water-Nsquared: O(n^2) molecular dynamics (SPLASH-2).

Molecules live in one contiguous array (672 bytes each), partitioned
contiguously (n/p per processor).  In the force phase each processor
updates its own molecules *and the following n/2 molecules* of other
processors, under per-partition locks -- a migratory read-modify-write
pattern that stays coarse-grained at page level because consecutive
molecules are contiguous (paper Table 7: large prefetching effects,
LRC protocols show fewer read misses at 4096 bytes).

Classification: multiple writer, coarse-grain access, *fine-grain
synchronization* per Table 2 (12 barriers but frequent lock activity
relative to the platform's sync cost).
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import Application, register_app

#: bytes per molecule record (SPLASH-2 molecule struct)
MOL_BYTES = 672
#: us per molecule pair interaction (calibrated: 4096 mol x 3 steps
#: ~ 575.283 s, Table 1)
PAIR_US = 22.8
#: us per molecule for the intra-molecule phases
INTRA_US = 40.0


@register_app
class WaterNsquared(Application):
    name = "water-nsquared"
    writers = "multiple"
    access_grain = "coarse"
    sync_grain = "fine"
    paper_barriers = 12
    paper_seq_time_s = 575.283
    poll_dilation = 0.15

    tiny_params = {"n_mols": 64, "steps": 1}
    default_params = {"n_mols": 512, "steps": 2}
    full_params = {"n_mols": 4096, "steps": 3}

    def _configure(self, n_mols: int, steps: int) -> None:
        self.n_mols = n_mols
        self.steps = steps

    def sequential_time_us(self) -> float:
        pairs = self.n_mols * (self.n_mols / 2.0)
        return self.steps * (pairs * PAIR_US + 2 * self.n_mols * INTRA_US)

    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        nprocs = machine.params.n_nodes
        self.mols = machine.alloc(self.n_mols * MOL_BYTES, "water-mols")
        for r in range(nprocs):
            lo, hi = self.split(self.n_mols, nprocs, r)
            machine.place(
                self.mols.base + lo * MOL_BYTES, (hi - lo) * MOL_BYTES, r
            )

    def mol_addr(self, i: int) -> int:
        return self.mols.base + i * MOL_BYTES

    # ------------------------------------------------------------------
    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        n = self.n_mols
        lo, hi = self.split(n, nprocs, rank)
        mine = hi - lo
        yield from dsm.barrier(0, participants=nprocs)
        for step in range(self.steps):
            # ---- intra-molecule phase (predict positions): local -----
            yield from dsm.touch_write(
                self.mol_addr(lo), mine * MOL_BYTES,
                pattern=self.pattern(step, rank, 0),
            )
            yield from dsm.compute(INTRA_US * mine)
            yield from dsm.barrier(1, participants=nprocs)

            # ---- inter-molecule force phase --------------------------
            # Each processor interacts its molecules with the n/2
            # molecules following its partition, grouped by the owner
            # partition they fall in; per-partition locks serialize the
            # read-modify-write force accumulation (migratory pattern).
            window_end = lo + mine + n // 2
            # Each own molecule interacts with the n/2 following ones:
            # mine * n/2 pairs spread over a window of mine + n/2
            # molecules.
            pair_frac = (n / 2.0) / (mine + n / 2.0)
            pos = lo
            while pos < window_end:
                owner = None
                # find the partition containing `pos % n`
                m = pos % n
                for r2 in range(nprocs):
                    plo, phi = self.split(n, nprocs, r2)
                    if plo <= m < phi:
                        owner = r2
                        chunk_end = min(window_end, pos + (phi - m))
                        break
                span = chunk_end - pos
                # Pair interactions computed for this chunk.
                cost = PAIR_US * mine * span * pair_frac
                if owner == rank:
                    # Own partition: no lock needed for self pairs.  The
                    # real code accumulates other processors' force
                    # contributions into private arrays merged under the
                    # partition lock, so this unlocked update never
                    # touches the same elements as their locked updates.
                    with dsm.assume_disjoint(
                        "forces accumulate in private arrays merged under locks"
                    ):
                        yield from dsm.touch_write(
                            self.mol_addr(m), span * MOL_BYTES,
                            pattern=self.pattern(step, rank, pos),
                        )
                    yield from dsm.compute(cost)
                else:
                    yield from dsm.acquire(100 + owner)
                    yield from dsm.touch_read(self.mol_addr(m), span * MOL_BYTES)
                    yield from dsm.touch_write(
                        self.mol_addr(m), span * MOL_BYTES,
                        pattern=self.pattern(step, rank, pos),
                    )
                    yield from dsm.compute(cost)
                    yield from dsm.release(100 + owner)
                pos = chunk_end
            yield from dsm.barrier(2, participants=nprocs)

            # ---- intra-molecule correction phase: local --------------
            yield from dsm.touch_write(
                self.mol_addr(lo), mine * MOL_BYTES,
                pattern=self.pattern(step, rank, 1),
            )
            yield from dsm.compute(INTRA_US * mine)
            yield from dsm.barrier(3, participants=nprocs)
            yield from dsm.barrier(1, participants=nprocs)
