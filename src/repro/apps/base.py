"""Application framework.

An :class:`Application` bundles

* problem-size parameters at three scales (``tiny`` for tests,
  ``default`` for the benchmark matrix, ``full`` = the paper's sizes),
* a compute-cost model whose full-scale total matches Table 1,
* a ``setup(machine)`` that allocates/places/initializes shared data
  the way the SPLASH-2 program's init phase would (first-touch layout),
* a ``program(dsm, rank, nprocs)`` generator -- the parallel program,
* the paper's Table 2 classification, asserted by the classification
  tests and re-derived by the measured classifier.
"""

from __future__ import annotations

from typing import Dict, Generator, Type

from repro.cluster.machine import Machine
from repro.runtime.dsm import Dsm


class Application:
    """Base class for the 12 benchmark applications."""

    #: registry key, e.g. "ocean-rowwise"
    name: str = "base"
    #: Table 2 classification (expected)
    writers: str = "single"        # 'single' | 'multiple'
    access_grain: str = "coarse"   # 'coarse' | 'fine'
    sync_grain: str = "coarse"     # 'coarse' | 'fine'
    #: number of barrier episodes the paper reports (Table 2)
    paper_barriers: int = 0
    #: Table 1 sequential execution time at full scale (seconds)
    paper_seq_time_s: float = 0.0
    #: compute dilation when polling instrumentation is inserted
    #: (Section 5.4: LU runs 55% slower uniprocessor with polling code)
    poll_dilation: float = 0.08

    #: parameter dictionaries per scale
    tiny_params: Dict = {}
    default_params: Dict = {}
    full_params: Dict = {}

    def __init__(self, scale: str = "default", **overrides):
        if scale == "tiny":
            base = dict(self.tiny_params)
        elif scale == "default":
            base = dict(self.default_params)
        elif scale == "full":
            base = dict(self.full_params)
        else:
            raise ValueError(f"unknown scale {scale!r}")
        base.update(overrides)
        self.scale = scale
        self.params = base
        self._configure(**base)

    # ------------------------------------------------------------------
    # subclass interface
    # ------------------------------------------------------------------
    def _configure(self, **params) -> None:
        """Unpack the parameter dict into attributes."""
        raise NotImplementedError

    def sequential_time_us(self) -> float:
        """Modeled uniprocessor execution time (no DSM, no polling)."""
        raise NotImplementedError

    def setup(self, machine: Machine) -> None:
        """Allocate, place and initialize shared data (pre-parallel)."""
        raise NotImplementedError

    def program(self, dsm: Dsm, rank: int, nprocs: int) -> Generator:
        """The per-rank parallel program."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def split(n: int, nprocs: int, rank: int) -> tuple:
        """Contiguous block partition: [lo, hi) of n items for rank."""
        base = n // nprocs
        extra = n % nprocs
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        return lo, hi

    @staticmethod
    def pattern(*keys: int) -> int:
        """A deterministic byte pattern that varies with its keys, used
        to make performance-app writes actually change memory (so HLRC
        diffs are non-empty, as real data would be)."""
        h = 0x9E
        for k in keys:
            h = (h * 31 + k + 1) & 0xFF
        return h | 0x01  # never zero

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} scale={self.scale} {self.params}>"


#: name -> Application subclass
APP_REGISTRY: Dict[str, Type[Application]] = {}


def register_app(cls: Type[Application]) -> Type[Application]:
    if cls.name in APP_REGISTRY:
        raise ValueError(f"duplicate app name {cls.name!r}")
    APP_REGISTRY[cls.name] = cls
    return cls


def make_app(name: str, scale: str = "default", **overrides) -> Application:
    try:
        cls = APP_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; available: {sorted(APP_REGISTRY)}"
        ) from None
    return cls(scale=scale, **overrides)
