"""FFT: six-step 1-D FFT kernel (SPLASH-2).

The n complex points are viewed as a sqrt(n) x sqrt(n) matrix with a
contiguous set of rows per processor; source and destination matrices
swap roles at each transpose.  In a transpose every processor reads an
(n/p x n/p) submatrix from every other processor -- sub-row reads of
``16 * sqrt(n)/p`` bytes, which is what makes FFT's *read* access
granularity fine while its writes stay local and coarse (paper Tables
2/6).

Classification: single writer, fine-grain access, coarse-grain
synchronization (10 barriers); all protocols poor (fragmentation);
coarser granularity helps SC slightly through prefetching.
"""

from __future__ import annotations

import math
from typing import Generator, List

from repro.apps.base import Application, register_app

#: bytes per complex point
ELEM = 16
#: us per point per log2(point) per FFT pass (calibrated to Table 1)
FFT_POINT_US = 1.12
#: us per point per transpose (copy + cache misses)
TRANSPOSE_POINT_US = 1.2


@register_app
class FFTApp(Application):
    name = "fft"
    writers = "single"
    access_grain = "fine"
    sync_grain = "coarse"
    paper_barriers = 10
    paper_seq_time_s = 27.257
    poll_dilation = 0.10

    tiny_params = {"n_points": 4096}
    default_params = {"n_points": 65536}
    full_params = {"n_points": 1 << 20}  # the paper's 1M-point / "1MB" run

    #: (fft-passes, transposes) of the six-step algorithm
    N_FFT_PASSES = 2
    N_TRANSPOSES = 3

    def _configure(self, n_points: int) -> None:
        r = int(math.isqrt(n_points))
        if r * r != n_points:
            raise ValueError("n_points must be a perfect square")
        self.n_points = n_points
        self.rows = r
        self.row_bytes = r * ELEM
        self._mat: List[int] = []  # base addresses of the two matrices

    def sequential_time_us(self) -> float:
        n = self.n_points
        fft = self.N_FFT_PASSES * FFT_POINT_US * n * math.log2(n) / 2
        trans = self.N_TRANSPOSES * TRANSPOSE_POINT_US * n
        return fft + trans

    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        nprocs = machine.params.n_nodes
        for name in ("fft-src", "fft-dst"):
            seg = machine.alloc(self.n_points * ELEM, name)
            self._mat.append(seg.base)
            # First-touch layout: each processor's rows live with it.
            for r in range(nprocs):
                lo, hi = self.split(self.rows, nprocs, r)
                machine.place(
                    seg.base + lo * self.row_bytes,
                    (hi - lo) * self.row_bytes,
                    r,
                )

    def row_addr(self, mat: int, row: int, col: int = 0) -> int:
        return self._mat[mat] + row * self.row_bytes + col * ELEM

    # ------------------------------------------------------------------
    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        r = self.rows
        lo, hi = self.split(r, nprocs, rank)
        my_rows = hi - lo
        n_local = my_rows * r
        fft_cost = FFT_POINT_US * n_local * math.log2(self.n_points) / 2
        trans_cost = TRANSPOSE_POINT_US * n_local

        src, dst = 0, 1
        phase = 0
        yield from dsm.barrier(0, participants=nprocs)
        for step in range(self.N_TRANSPOSES):
            # ---- transpose src -> dst --------------------------------
            # Read the (my_rows x their_rows) submatrix of every other
            # processor: their rows, my column range -- one sub-row
            # read per remote row (the fine-grain pattern).
            for p in range(nprocs):
                peer = (rank + p) % nprocs  # stagger to avoid hot spots
                plo, phi = self.split(r, nprocs, peer)
                if peer != rank:
                    for row in range(plo, phi):
                        yield from dsm.touch_read(
                            self.row_addr(src, row, lo), my_rows * ELEM
                        )
            # Destination rows are local and written wholesale.
            yield from dsm.touch_write(
                self.row_addr(dst, lo, 0),
                my_rows * self.row_bytes,
                pattern=self.pattern(step, rank, phase),
            )
            yield from dsm.compute(trans_cost)
            yield from dsm.barrier(1, participants=nprocs)
            phase += 1

            # ---- local FFT pass on own rows (no communication) -------
            if step < self.N_FFT_PASSES:
                yield from dsm.touch_write(
                    self.row_addr(dst, lo, 0),
                    my_rows * self.row_bytes,
                    pattern=self.pattern(step, rank, 99),
                )
                yield from dsm.compute(fft_cost)
                yield from dsm.barrier(2, participants=nprocs)
            src, dst = dst, src
        yield from dsm.barrier(0, participants=nprocs)
