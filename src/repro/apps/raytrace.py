"""Raytrace: optimized ray tracing of complex scenes (SPLASH-2).

The scene data (balls4) is read-only during rendering; rays shot into
it cause cold read misses that replicate the scene across nodes.  The
interesting communication is (a) task stealing through distributed
lock-protected task queues and (b) fine-grained writes of image-plane
pixels as each task completes -- multiple writers with false sharing at
coarse granularity (Table 11).  Only one barrier (Table 2).
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import Application, register_app

PIXEL = 4
#: us per primary ray / pixel (calibrated: 512^2 balls4 ~ 343.76 s)
RAY_US = 1311.0
#: pixels per task (the SPLASH-2 bundle)
TASK_PIXELS = 16


@register_app
class Raytrace(Application):
    name = "raytrace"
    writers = "multiple"
    access_grain = "fine"
    sync_grain = "coarse"
    paper_barriers = 1
    paper_seq_time_s = 343.76
    poll_dilation = 0.10

    tiny_params = {"image": 32, "scene_kb": 128}
    default_params = {"image": 64, "scene_kb": 512}
    full_params = {"image": 512, "scene_kb": 8192}

    def _configure(self, image: int, scene_kb: int) -> None:
        self.image = image
        self.scene_bytes = scene_kb * 1024
        self.row_bytes = image * PIXEL
        self.n_tasks = (image * image) // TASK_PIXELS

    def sequential_time_us(self) -> float:
        return RAY_US * self.image * self.image

    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        nprocs = machine.params.n_nodes
        self.img = machine.alloc(self.image * self.row_bytes, "rt-image")
        self.scene = machine.alloc(self.scene_bytes, "rt-scene")
        machine.place_segment(self.scene, 0)
        for r in range(nprocs):
            lo, hi = self.split(self.image, nprocs, r)
            machine.place(self.img.base + lo * self.row_bytes,
                          (hi - lo) * self.row_bytes, r)

    # ------------------------------------------------------------------
    def program(self, dsm, rank: int, nprocs: int) -> Generator:
        img = self.image
        n_tasks = self.n_tasks

        # Tasks are 4x4 pixel bundles in scanline order.
        def task_region(t):
            pix = t * TASK_PIXELS
            row, col = divmod(pix, img)
            return row, col

        # Per-task work varies with scene density (deterministic hash),
        # which is what makes stealing worthwhile.
        def task_cost(t):
            # Mean factor is 1.0, so the per-rank totals sum to the
            # sequential model; the 6x spread drives task stealing.
            h = (t * 2654435761) & 0xFFFF
            return RAY_US * TASK_PIXELS * (0.25 + 1.5 * h / 0xFFFF)

        def do_task(t):
            row, col = task_region(t)
            # Rays traverse the scene: a handful of scattered reads of
            # the read-only scene data (cold misses replicate it).
            for k in range(3):
                off = ((t * 104729 + k * 7919) * 128) % max(
                    128, self.scene_bytes - 128
                )
                yield from dsm.touch_read(self.scene.base + off, 128)
            yield from dsm.compute(task_cost(t))
            addr = self.img.base + row * self.row_bytes + col * PIXEL
            yield from dsm.touch_write(
                addr,
                TASK_PIXELS * PIXEL,
                pattern=self.pattern(rank, t),
            )

        # Distributed task queues: drain the own queue with local
        # operations; steal half of a victim's remainder under its
        # queue lock (the paper's "interesting communication").
        if not hasattr(self, "_queues"):
            self._queues = [
                list(range(*self.split(n_tasks, nprocs, p))) for p in range(nprocs)
            ]
        queues = self._queues

        while queues[rank]:
            t = queues[rank].pop(0)
            yield from do_task(t)

        for i in range(1, nprocs):
            victim = (rank + i) % nprocs
            while queues[victim]:
                yield from dsm.acquire(800 + victim)
                n = len(queues[victim])
                grabbed = []
                if n:
                    take = max(1, n // 2)
                    grabbed = queues[victim][n - take :]
                    del queues[victim][n - take :]
                yield from dsm.release(800 + victim)
                for t in grabbed:
                    yield from do_task(t)
        yield from dsm.barrier(0, participants=nprocs)
