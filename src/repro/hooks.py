"""Instrumentation-hook interface for observing a running machine.

Lives at the package root (not under ``repro.runtime``) because it must
be importable from anywhere -- including ``repro.stats``, which package
inits pull in before the runtime exists -- without creating a cycle.

The runtime and synchronization services call these hooks at every
observation point an external tool could care about: region accesses,
write faults, lock acquire/release, barrier entry/exit, and the
protocol-level sync payload application.  The base class is a no-op on
every method, so a hook implementation overrides only what it needs
(:class:`~repro.stats.classify.AccessTrace` records region shapes; the
:mod:`repro.check` race detector consumes the full set).

Design notes
------------
* ``Machine.hooks`` is ``None`` by default; the hot paths test that one
  attribute instead of duck-typing with ``getattr``.  A simulation with
  no hooks installed pays a single attribute load per region operation.
* Hooks *observe* -- they must not yield simulated time, send messages,
  or mutate machine state.  Installing hooks therefore never perturbs
  event ordering: a hooked run produces bit-identical stats to an
  unhooked one.
* Multiple hooks compose through :class:`CompositeHooks`
  (``Machine.add_hooks`` handles this automatically).
"""

from __future__ import annotations

from typing import Any, List


class Hooks:
    """No-op base class: the full observation interface."""

    def on_region(self, node_id: int, addr: int, size: int, write: bool) -> None:
        """A region read/write/touch issued by the application."""

    def on_write_fault(self, node_id: int, block: int) -> None:
        """A store is about to enter the protocol's write-fault path."""

    def on_acquire(self, node_id: int, lock_id: int) -> None:
        """A lock acquire completed (grant received, notices applied)."""

    def on_release(self, node_id: int, lock_id: int) -> None:
        """A lock release completed its protocol preparation."""

    def on_barrier_enter(self, node_id: int, barrier_id: int, episode: int) -> None:
        """A node arrived at a barrier (after its release preparation)."""

    def on_barrier_exit(self, node_id: int, barrier_id: int, episode: int) -> None:
        """A node left a barrier (release payload applied)."""

    def on_sync_applied(self, node_id: int, payload: Any) -> None:
        """A protocol sync payload (grant / barrier release) was applied."""

    def on_release_done(self, node_id: int) -> None:
        """``release_prepare`` finished: intervals closed, diffs flushed."""

    def on_assume_disjoint(self, node_id: int, active: bool, reason: str) -> None:
        """The application entered (``active=True``) or left an
        ``assume_disjoint`` scope: its region touches model accesses
        that the original program keeps element-disjoint or
        phase-ordered, so conflict checkers must not flag them."""


#: Every observation point of the interface, in declaration order.
HOOK_METHODS = (
    "on_region",
    "on_write_fault",
    "on_acquire",
    "on_release",
    "on_barrier_enter",
    "on_barrier_exit",
    "on_sync_applied",
    "on_release_done",
    "on_assume_disjoint",
)


def _noop(*_args: Any) -> None:
    """Shared per-method no-op for collapsed composite slots."""


def _fanout(impls: List[Any]):
    def call(*args: Any) -> None:
        for m in impls:
            m(*args)

    return call


class CompositeHooks(Hooks):
    """Fan every callback out to an ordered list of hooks.

    The fan-out is *collapsed at wire-up time*, not dispatched per
    call: for each observation point, :meth:`_collapse` binds an
    instance attribute that is the shared no-op (nobody overrides it),
    the single overriding hook's bound method (no extra frame), or a
    closure over the overriding subset.  ``on_region`` fires for every
    shared access of an instrumented run, so skipping hooks that left a
    method as the base-class no-op matters.  Mutate :attr:`hooks`
    through :meth:`add` so the collapsed slots stay in sync.
    """

    def __init__(self, hooks: List[Hooks]):
        self.hooks = list(hooks)
        self._collapse()

    def add(self, hook: Hooks) -> None:
        """Append ``hook`` and refresh the collapsed dispatch slots."""
        self.hooks.append(hook)
        self._collapse()

    def _collapse(self) -> None:
        for name in HOOK_METHODS:
            base = getattr(Hooks, name)
            impls = []
            for h in self.hooks:
                m = getattr(h, name)
                if m is _noop:
                    continue
                if getattr(m, "__func__", m) is not base:
                    impls.append(m)
            if not impls:
                setattr(self, name, _noop)
            elif len(impls) == 1:
                setattr(self, name, impls[0])
            else:
                setattr(self, name, _fanout(impls))


def add_hooks(machine, hook: Hooks) -> Hooks:
    """Install ``hook`` on ``machine``, composing with existing hooks."""
    current = machine.hooks
    if current is None:
        machine.hooks = hook
    elif isinstance(current, CompositeHooks):
        current.add(hook)
    else:
        machine.hooks = CompositeHooks([current, hook])
    return hook
