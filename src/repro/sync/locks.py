"""Distributed lock service (TreadMarks-style lazy forwarding).

Each lock has a statically assigned *manager* node (``lock_id mod N``).
The manager assigns every request a position (sequence number) in the
global grant order and forwards it to the previous requester; the grant
comes directly from that previous holder once its tenure completes --
a 3-hop acquire when the lock moves between nodes, 2-hop when the
manager grants a never-held lock itself.

Sequence numbers are what make the chain robust: a forward that
arrives at a node tells it *which of its tenures* the new requester
follows (``after_seq``).  If that tenure has already been released the
grant is immediate -- even if the node has meanwhile issued a newer
request of its own (without the tenure check, the successor would be
queued behind the node's new request, inverting the global order and
deadlocking the chain).

Under the LRC protocols the grant message carries the write notices of
every interval the acquirer has not seen (computed from the vector
timestamp the acquirer sent with its request), which is how coherence
information propagates at acquire time (paper Sections 2.2/2.3).

Release is *lazy*: no message leaves the releasing node unless a
successor's forwarded request is already queued locally.

Note on notice precision: a granter that created further intervals
after releasing this lock sends notices up to its *current* timestamp.
That is conservative (extra invalidations are always safe under LRC)
and matches the one-timestamp-per-node design.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, Optional, Tuple

from repro.net.message import Message, notice_size
from repro.sim.process import Future


@dataclass
class ManagerEntry:
    """Manager-side state: tail of the distributed request queue."""

    last_requester: Optional[int] = None
    #: sequence number of the most recently enqueued request
    seq: int = 0


@dataclass
class HolderEntry:
    """Holder-side state for one lock on one node."""

    holding: bool = False
    #: sequence number of the tenure currently pending or held
    cur_seq: int = -1
    #: sequence number of the most recently released tenure
    last_completed_seq: int = -1
    #: True between sending our own lock_req and receiving the grant
    pending: bool = False
    #: successors waiting for our current tenure:
    #: (requester, vt, future, their_seq)
    waiters: Deque[Tuple[int, tuple, Future, int]] = field(default_factory=deque)


class LockService:
    """Implements lock_req / lock_fwd / lock_grant messaging."""

    def __init__(self, machine):
        self.m = machine
        self.engine = machine.engine
        self.params = machine.params
        self.stats = machine.stats
        self._manager: Dict[int, ManagerEntry] = {}
        #: per-node, per-lock holder state
        self._holder: Dict[Tuple[int, int], HolderEntry] = {}

    def handles(self, mtype: str) -> bool:
        return mtype in ("lock_req", "lock_fwd", "lock_grant")

    def manager_of(self, lock_id: int) -> int:
        return lock_id % self.params.n_nodes

    def _hstate(self, node_id: int, lock_id: int) -> HolderEntry:
        key = (node_id, lock_id)
        st = self._holder.get(key)
        if st is None:
            st = HolderEntry()
            self._holder[key] = st
        return st

    # ------------------------------------------------------------------
    # application side (generators)
    # ------------------------------------------------------------------
    def acquire(self, node, lock_id: int) -> Generator:
        """Acquire a lock; applies piggybacked coherence state."""
        protocol = self.m.protocol
        st = self._hstate(node.id, lock_id)
        if st.holding or st.pending:
            raise RuntimeError(
                f"node {node.id} re-entered lock {lock_id} (not supported)"
            )
        fut = Future(self.engine)
        st.pending = True
        vt = protocol.current_vt(node.id)
        self._send(
            node.id,
            self.manager_of(lock_id),
            "lock_req",
            lock_id,
            payload={"requester": node.id, "vt": vt, "future": fut},
        )
        payload = yield from node.wait(fut, "lock_wait_us")
        st.pending = False
        st.holding = True
        st.cur_seq = payload["seq"]
        node.node_stats.lock_acquires += 1
        # Apply write notices etc. in app context (may flush diffs).
        yield from protocol.apply_sync(node, payload["grant"])
        hooks = self.m.hooks
        if hooks is not None:
            hooks.on_sync_applied(node.id, payload["grant"])
            hooks.on_acquire(node.id, lock_id)

    def release(self, node, lock_id: int) -> Generator:
        """Release: close the interval (LRC), grant the successor."""
        st = self._hstate(node.id, lock_id)
        if not st.holding:
            raise RuntimeError(
                f"node {node.id} releasing lock {lock_id} it does not hold"
            )
        protocol = self.m.protocol
        yield from protocol.release_prepare(node)
        hooks = self.m.hooks
        if hooks is not None:
            # Fires before any successor's grant leaves this node, so a
            # happens-before observer sees release -> grant -> acquire.
            hooks.on_release_done(node.id)
            hooks.on_release(node.id, lock_id)
        st.holding = False
        st.last_completed_seq = st.cur_seq
        while st.waiters and st.waiters[0][3] == st.cur_seq + 1:
            requester, vt, fut, seq = st.waiters.popleft()
            self._grant(node.id, lock_id, requester, vt, fut, seq)

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def on_message(self, node, msg: Message) -> None:
        if msg.mtype == "lock_req":
            self._h_req(node, msg)
        elif msg.mtype == "lock_fwd":
            self._h_fwd(node, msg)
        elif msg.mtype == "lock_grant":
            self._h_grant(node, msg)
        else:  # pragma: no cover
            raise KeyError(msg.mtype)

    def _h_req(self, node, msg: Message) -> None:
        lock_id = msg.block
        p = msg.payload
        entry = self._manager.setdefault(lock_id, ManagerEntry())
        prev = entry.last_requester
        entry.seq += 1
        seq = entry.seq
        entry.last_requester = p["requester"]
        if prev is None:
            # Never held: the manager grants directly (2-hop acquire).
            payload, n_notices = self.m.protocol.grant_payload(node.id, p["vt"])
            self._send(
                node.id,
                p["requester"],
                "lock_grant",
                lock_id,
                size=notice_size(n_notices),
                payload={"future": p["future"], "grant": payload, "seq": seq},
                cost=self.params.sync_handler_us,
            )
        else:
            self._send(
                node.id,
                prev,
                "lock_fwd",
                lock_id,
                payload={
                    "requester": p["requester"],
                    "vt": p["vt"],
                    "future": p["future"],
                    "seq": seq,
                },
            )

    def _h_fwd(self, node, msg: Message) -> None:
        lock_id = msg.block
        p = msg.payload
        st = self._hstate(node.id, lock_id)
        after_seq = p["seq"] - 1
        if after_seq <= st.last_completed_seq:
            # The tenure this requester follows is already over: grant
            # immediately (covers our own re-acquire bouncing back, and
            # successors whose forward arrived after our release).
            self._grant(node.id, lock_id, p["requester"], p["vt"], p["future"],
                        p["seq"])
        else:
            st.waiters.append((p["requester"], p["vt"], p["future"], p["seq"]))

    def _grant(
        self, from_node: int, lock_id: int, requester: int, vt, fut: Future,
        seq: int,
    ) -> None:
        payload, n_notices = self.m.protocol.grant_payload(from_node, vt)
        self._send(
            from_node,
            requester,
            "lock_grant",
            lock_id,
            size=notice_size(n_notices),
            payload={"future": fut, "grant": payload, "seq": seq},
            cost=self.params.sync_handler_us,
        )

    def _h_grant(self, node, msg: Message) -> None:
        msg.payload["future"].resolve(
            {"grant": msg.payload["grant"], "seq": msg.payload["seq"]}
        )

    # ------------------------------------------------------------------
    def _send(self, src, dst, mtype, lock_id, *, size=None, payload=None, cost=None):
        vec_bytes = 4 * self.params.n_nodes if self.m.protocol.uses_notices else 0
        msg = Message(
            src=src,
            dst=dst,
            mtype=mtype,
            size_bytes=(size if size is not None else 24) + vec_bytes,
            block=lock_id,
            payload=payload,
            handle_cost_us=cost if cost is not None else self.params.sync_handler_us,
        )
        self.m.send(msg)
