"""Synchronization: distributed lock managers and barriers.

Both services piggyback protocol coherence actions through the
protocol's sync hooks (write notices under the LRC protocols; nothing
under SC -- which is why the paper finds synchronization "much cheaper
in SC since [it does] not involve protocol activity").
"""

from repro.sync.locks import LockService
from repro.sync.barriers import BarrierService

__all__ = ["LockService", "BarrierService"]
