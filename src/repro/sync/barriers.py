"""Barrier service.

A centralized barrier manager (node ``barrier_id mod N``) collects one
arrival message from every node, then broadcasts releases.  Under the
LRC protocols each arrival carries the node's vector timestamp (the
node first runs ``release_prepare`` -- HLRC flushes all its diffs
before arriving); the manager merges the timestamps and sends each node
a *tailored* set of write notices covering exactly the intervals that
node has not seen.  This is the all-to-all coherence exchange that
makes barriers the natural full-synchronization point of LRC programs.

Barriers are identified by ``(barrier_id, episode)`` so the same
barrier object can be reused across iterations, like SPLASH-2's
``BARRIER(bar, P)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Tuple

from repro.net.message import Message, notice_size
from repro.sim.process import Future


@dataclass
class Episode:
    """Manager-side state of one barrier episode."""

    arrivals: Dict[int, tuple] = field(default_factory=dict)  # node -> vt
    futures: Dict[int, Future] = field(default_factory=dict)


class BarrierService:
    def __init__(self, machine):
        self.m = machine
        self.engine = machine.engine
        self.params = machine.params
        self.stats = machine.stats
        #: (barrier_id, episode_idx) -> Episode
        self._episodes: Dict[Tuple[int, int], Episode] = {}
        #: per-node next episode index per barrier
        self._counts: Dict[Tuple[int, int], int] = {}

    def handles(self, mtype: str) -> bool:
        return mtype in ("barrier_arrive", "barrier_release")

    def manager_of(self, barrier_id: int) -> int:
        return barrier_id % self.params.n_nodes

    # ------------------------------------------------------------------
    # application side
    # ------------------------------------------------------------------
    def barrier(self, node, barrier_id: int, participants: Optional[int] = None) -> Generator:
        """Arrive at the barrier and wait for everyone.

        ``participants`` defaults to all nodes; programs running on a
        subset pass the subset size.
        """
        n_participants = (
            self.params.n_nodes if participants is None else participants
        )
        protocol = self.m.protocol
        # Make our modifications visible before arriving.
        yield from protocol.release_prepare(node)
        key = (node.id, barrier_id)
        episode = self._counts.get(key, 0)
        self._counts[key] = episode + 1
        hooks = self.m.hooks
        if hooks is not None:
            hooks.on_release_done(node.id)
            hooks.on_barrier_enter(node.id, barrier_id, episode)
        fut = Future(self.engine)
        vt = protocol.current_vt(node.id)
        vec_bytes = 4 * self.params.n_nodes if protocol.uses_notices else 0
        msg = Message(
            src=node.id,
            dst=self.manager_of(barrier_id),
            mtype="barrier_arrive",
            size_bytes=24 + vec_bytes,
            block=barrier_id,
            payload={
                "node": node.id,
                "episode": episode,
                "vt": vt,
                "future": fut,
                "participants": n_participants,
            },
            handle_cost_us=self.params.sync_handler_us,
        )
        self.m.send(msg)
        node.node_stats.barriers += 1
        payload = yield from node.wait(fut, "barrier_wait_us")
        yield from protocol.apply_sync(node, payload)
        if hooks is not None:
            hooks.on_sync_applied(node.id, payload)
            hooks.on_barrier_exit(node.id, barrier_id, episode)

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def on_message(self, node, msg: Message) -> None:
        if msg.mtype == "barrier_arrive":
            self._h_arrive(node, msg)
        elif msg.mtype == "barrier_release":
            self._h_release(node, msg)
        else:  # pragma: no cover
            raise KeyError(msg.mtype)

    def _h_arrive(self, node, msg: Message) -> None:
        p = msg.payload
        key = (msg.block, p["episode"])
        ep = self._episodes.setdefault(key, Episode())
        ep.arrivals[p["node"]] = p["vt"]
        ep.futures[p["node"]] = p["future"]
        if len(ep.arrivals) < p["participants"]:
            return
        # Everyone is here: compute tailored release payloads and
        # broadcast.  The merge cost scales with total notices.
        del self._episodes[key]
        payloads = self.m.protocol.barrier_payloads(ep.arrivals)
        # Insertion order == arrival order, which is deterministic and
        # is the order the protocol's payloads were costed for; sorting
        # by nid would silently reshuffle long-established schedules.
        for nid, fut in ep.futures.items():  # noqa: SIM006
            payload, n_notices = payloads[nid]
            rel = Message(
                src=node.id,
                dst=nid,
                mtype="barrier_release",
                size_bytes=notice_size(n_notices),
                block=msg.block,
                payload={"future": fut, "grant": payload},
                handle_cost_us=self.params.sync_handler_us
                + self.params.write_notice_us * n_notices * 0.1,
            )
            self.m.send(rel)

    @staticmethod
    def _h_release(node, msg: Message) -> None:
        msg.payload["future"].resolve(msg.payload["grant"])
