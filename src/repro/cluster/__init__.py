"""Cluster/testbed model: nodes, CPU accounting, machine assembly.

Models the paper's testbed (Section 3): 16 dual-processor SPARCstation
20s (one processor used per node), Myrinet interconnect, and Typhoon-0
fine-grain access-control hardware.  All cost constants live in
:class:`~repro.cluster.config.MachineParams` and default to the values
the paper reports.
"""

from repro.cluster.config import MachineParams, NotificationMechanism
from repro.cluster.node import Cpu, Node
from repro.cluster.machine import Machine

__all__ = ["MachineParams", "NotificationMechanism", "Node", "Cpu", "Machine"]
