"""Machine: wires engine, nodes, network, memory system, protocol and
synchronization services into one simulated cluster.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.config import MachineParams
from repro.cluster.node import Node
from repro.memory.address_space import AddressSpace, Segment
from repro.memory.blocks import BlockSpace
from repro.memory.home import HomeTable
from repro.net.faultplan import FaultPlan, FaultSpec
from repro.net.message import Message
from repro.net.myrinet import Network
from repro.net.reliable import ReliableTransport
from repro.sim.engine import Engine
from repro.stats.counters import Stats


class Machine:
    """One configured cluster ready to run a program.

    Construction order matters only in that nodes receive a dispatch
    callback bound to this machine; the protocol and sync services are
    created last and resolved through ``self`` at dispatch time.

    ``faults`` (a :class:`~repro.net.faultplan.FaultSpec`) makes the
    interconnect unreliable and slides the reliable-delivery transport
    (:mod:`repro.net.reliable`) between the protocol/sync services and
    the wire.  ``faults=None`` (the default) is the trusted legacy
    wire: no transport, no sequence numbers, bit-identical behavior to
    pre-chaos builds.  Either way, all outbound traffic goes through
    :attr:`send` -- the single seam the transport hooks.
    """

    def __init__(
        self,
        params: MachineParams,
        protocol: str = "hlrc",
        poll_dilation: float = 0.0,
        max_events: Optional[int] = None,
        faults: Optional[FaultSpec] = None,
    ):
        params.validate()
        self.params = params
        self.engine = Engine() if max_events is None else Engine(max_events=max_events)
        self.stats = Stats(params.n_nodes)
        self.blockspace = BlockSpace(params.granularity)
        self.space = AddressSpace()
        self.home = HomeTable(params.n_nodes, params.granularity)
        self.poll_dilation = poll_dilation
        #: instrumentation hooks (None = uninstrumented hot path); see
        #: repro.hooks.Hooks for the observation interface
        self.hooks = None
        self.nodes: List[Node] = [
            Node(i, self.engine, params, self.stats, self._dispatch, poll_dilation)
            for i in range(params.n_nodes)
        ]
        if faults is None:
            self.fault_plan = None
            self.transport = None
            self.network = Network(self.engine, params, self.stats, self._deliver)
            #: bound per-instance so the hot path pays no routing test
            self.send = self.network.send
        else:
            self.fault_plan = FaultPlan(faults, params.n_nodes)
            self.stats.enable_transport()
            self.network = Network(
                self.engine, params, self.stats, self._deliver, self.fault_plan
            )
            self.transport = ReliableTransport(self, self.network, self.fault_plan)
            # Wire arrivals detour through the transport (ack/dedup/
            # resequence) before reaching the nodes.
            self.network.set_deliver(self.transport.on_wire)
            self.send = self.transport.send
        # Imported lazily to avoid a cycle (protocols import memory/net).
        from repro.core import make_protocol
        from repro.sync import BarrierService, LockService

        self.protocol = make_protocol(protocol, self)
        self.locks = LockService(self)
        self.barriers = BarrierService(self)
        #: message-type -> bound service handler, filled lazily
        self._route: dict = {}

    def add_hooks(self, hook) -> None:
        """Install an instrumentation hook (composes with existing ones)."""
        from repro.hooks import add_hooks

        add_hooks(self, hook)

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        self.nodes[msg.dst].deliver(msg)

    #: public alias used by the reliable transport once it has decided
    #: a wire arrival really is the next in-order message for the node
    deliver_to_node = _deliver

    def _dispatch(self, node: Node, msg: Message) -> None:
        t = msg.mtype
        handler = self._route.get(t)
        if handler is None:
            # Resolve the service once per message type; the prefix
            # test runs once instead of twice per delivered message.
            if t.startswith("lock_"):
                handler = self.locks.on_message
            elif t.startswith("barrier_"):
                handler = self.barriers.on_message
            else:
                handler = self.protocol.on_message
            self._route[t] = handler
        handler(node, msg)

    # ------------------------------------------------------------------
    # setup-time helpers (pre-parallel phase, zero simulated cost)
    # ------------------------------------------------------------------
    def alloc(self, size: int, name: str, align: Optional[int] = None) -> Segment:
        if align is None:
            return self.space.alloc(size, name)
        return self.space.alloc(size, name, align=align)

    def place(self, addr: int, size: int, node: int) -> None:
        """Declarative first-touch placement of a region (see
        HomeTable.place): models the home layout the application's
        initialization phase would establish, including the access tags
        the init-phase touches would leave behind."""
        self.home.place_region(addr, size, node)
        first = addr // self.params.granularity
        last = (addr + size - 1) // self.params.granularity
        for b in range(first, last + 1):
            self.protocol.on_place(b, node)

    def place_segment(self, seg: Segment, node: int) -> None:
        self.place(seg.base, seg.size, node)

    def init_data(self, addr: int, data) -> None:
        """Write initial contents into the (current or static) home
        copies, pre-parallel-phase (no simulated cost)."""
        from repro.simcore import as_payload

        data = as_payload(data)
        bs = self.blockspace
        for block, off, roff, length in bs.block_slices(addr, len(data)):
            home = self.home.home_or_static(block)
            self.nodes[home].store.block(block)[off : off + length] = data[
                roff : roff + length
            ]

    def run(self, until: Optional[float] = None) -> float:
        return self.engine.run(until=until)
