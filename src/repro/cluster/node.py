"""A cluster node: host CPU, access-control tags, local block store,
and message notification/handling.

CPU model
---------
One application process runs per node (the paper uses one of the two
HyperSPARC processors).  Protocol handlers execute on the same CPU, so
a handler that runs while the application is computing steals cycles
from it.  We model this with *debt accounting*: while the app is inside
a ``compute(us)`` segment, every handler adds its cost to ``debt``; when
the segment's sleep expires the app sleeps again for the accumulated
debt (during which more debt may accrue).  This is exact for handler
time and avoids a full preemptive scheduler.

Notification model (paper Section 5.4)
--------------------------------------
How long after wire arrival a message starts being handled depends on
what the node is doing:

* blocked inside the runtime (waiting for a fault or lock): both
  mechanisms spin-poll -- ``blocked_poll_us``;
* computing, polling mechanism: next backedge check plus the 1.5 us
  poll round trip;
* computing, interrupt mechanism: the ~70 us Solaris signal path.

Polling additionally dilates *all* compute time by the per-application
backedge instrumentation overhead (``Machine.poll_dilation``) -- the
paper reports LU runs 55% slower uniprocessor with polling code
inserted.

Handlers on one node serialize (single CPU): each message's handling
occupies ``[start, start + handle_cost]`` where start respects the
previous handler's completion.  Back-to-back wire arrivals therefore
overlap their notification windows -- each arrival computes its own
delay from the node state *at arrival time*, then queues behind
``_handler_busy_until``; two deliveries 1 us apart under the interrupt
mechanism both pay the ~70 us signal path but their handlers run
strictly serialized (see tests/test_node.py).  The reliable transport
(:mod:`repro.net.reliable`) leans on this when it drains a held-out-of-
order buffer: it hands the node several messages at the same simulated
instant and the node spaces their handlers out itself.  Transport acks
never reach a node -- they are consumed at wire arrival inside the
transport with zero handler cost (modeled as NIC-firmware work).
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.cluster.config import MachineParams, NotificationMechanism
from repro.memory.access_control import AccessControl
from repro.memory.storage import NodeStore
from repro.net.message import Message
from repro.sim.engine import Engine

#: app process states
IDLE = "idle"
COMPUTE = "compute"
BLOCKED = "blocked"

#: wait-kind names map onto NodeStats fields
WAIT_FAULT = "fault_wait_us"
WAIT_LOCK = "lock_wait_us"
WAIT_BARRIER = "barrier_wait_us"


class Cpu:
    """Debt-based CPU time accounting for one node."""

    __slots__ = ("state", "debt")

    def __init__(self) -> None:
        self.state = IDLE
        self.debt = 0.0


class Node:
    """One workstation of the simulated cluster."""

    def __init__(
        self,
        node_id: int,
        engine: Engine,
        params: MachineParams,
        stats,
        handle_message: Callable[["Node", Message], None],
        poll_dilation: float = 0.0,
    ):
        self.id = node_id
        self.engine = engine
        self.params = params
        self.stats = stats
        self.node_stats = stats.nodes[node_id]
        self._handle_message = handle_message
        self.cpu = Cpu()
        self.access = AccessControl()
        self.store = NodeStore(params.granularity)
        self.poll_dilation = poll_dilation
        self._handler_busy_until = 0.0
        self._polling = params.mechanism is NotificationMechanism.POLLING

    # ------------------------------------------------------------------
    # message arrival
    # ------------------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        """Called by the network at wire-arrival time."""
        now = self.engine.now
        p = self.params
        computing = self.cpu.state == COMPUTE
        if not computing:
            delay = p.blocked_poll_us
        elif self._polling:
            delay = p.poll_backedge_gap_us + p.poll_round_trip_us
        else:
            delay = p.interrupt_us
        cost = msg.handle_cost_us
        done = max(now + delay, self._handler_busy_until) + cost
        self._handler_busy_until = done
        self.node_stats.handler_us += cost
        if computing:
            # Steal cycles from the in-progress compute segment.
            self.cpu.debt += cost
        # The handler's effects become visible when it finishes; the
        # dispatch callback is scheduled directly (no wrapper frame).
        self.engine.post(done - now, self._handle_message, self, msg)

    # ------------------------------------------------------------------
    # application-side effects (generators run inside the app process)
    # ------------------------------------------------------------------
    def compute(self, us: float) -> Generator:
        """Burn ``us`` of useful CPU time (plus polling dilation and any
        handler debt accrued while computing)."""
        if us < 0:
            raise ValueError(f"negative compute time {us}")
        if us == 0:
            return
        if self._polling:
            us *= 1.0 + self.poll_dilation
        self.node_stats.compute_us += us
        prev_state = self.cpu.state
        self.cpu.state = COMPUTE
        remaining = us
        while remaining > 0:
            self.cpu.debt = 0.0
            yield remaining
            remaining = self.cpu.debt
        self.cpu.debt = 0.0
        self.cpu.state = prev_state

    def wait(self, waitable, kind: str) -> Generator:
        """Block the app process on a future/latch, accounting the wait
        time to the given NodeStats field (fault/lock/barrier)."""
        prev_state = self.cpu.state
        self.cpu.state = BLOCKED
        t0 = self.engine.now
        value = yield waitable
        waited = self.engine.now - t0
        setattr(self.node_stats, kind, getattr(self.node_stats, kind) + waited)
        self.cpu.state = prev_state
        return value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.id} state={self.cpu.state}>"
