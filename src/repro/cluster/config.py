"""Machine cost model, calibrated to the paper's Section 3 testbed.

Every constant here corresponds to a number reported in the paper:

* Myrinet round trips of 40 / 61 / 100 / 256 / 876 us for message sizes
  4 / 64 / 256 / 1024 / 4096 bytes, and ~17 MB/s large-message
  bandwidth (Section 3 microbenchmark).  We model one-way latency as
  ``base + per_byte * size`` with a discount for tiny control messages,
  which fits all five points within a few percent (see
  ``benchmarks/bench_micro_network.py``).
* 5 us Typhoon-0 fast access-fault exception.
* ~70 us interrupt (Solaris signal) notification; 1.5 us polling
  round trip, with a common-case poll check of 6-7 cycles on every
  control-flow backedge (modeled as a per-application compute dilation).
* ~150 us minimum synchronization handling time (Section 5.2.1).

Granularities supported: 64, 256, 1024, 4096 bytes (Section 2); the
virtual-memory page is always 4096 bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


#: The coherence granularities evaluated by the paper.
GRANULARITIES = (64, 256, 1024, 4096)

#: Extension granularities beyond the paper's largest (Section 7 lists
#: "block sizes greater than 4,096 bytes" as unexamined future work).
EXTENDED_GRANULARITIES = (8192, 16384)

#: Virtual-memory page size (bytes).
PAGE_SIZE = 4096


class NotificationMechanism(enum.Enum):
    """How a node learns that a message has arrived (Section 5.4)."""

    POLLING = "polling"
    INTERRUPT = "interrupt"


@dataclass
class MachineParams:
    """All tunable cost constants of the simulated testbed.

    Times are microseconds unless noted.  The defaults reproduce the
    paper's platform; tests pin the microbenchmark fit.
    """

    # ---- topology -------------------------------------------------------
    n_nodes: int = 16
    #: coherence granularity (block size) in bytes; one of GRANULARITIES
    granularity: int = 4096
    #: message notification mechanism
    mechanism: NotificationMechanism = NotificationMechanism.POLLING

    # ---- network (Myrinet + LANai LCP) ----------------------------------
    #: fixed one-way cost for messages larger than `small_message_bytes`
    net_base_us: float = 23.5
    #: fixed one-way cost for small (register-sized) control messages
    net_base_small_us: float = 19.6
    #: cutoff below which the small-message cost applies
    small_message_bytes: int = 16
    #: per-byte one-way cost (~9.8 MB/s round-trip-visible; DMA pipeline
    #: makes one-way streaming bandwidth ~17 MB/s, modeled separately in
    #: NIC occupancy below)
    net_per_byte_us: float = 0.1021
    #: extra latency per switch-to-switch hop (3x 8-port crossbars)
    switch_hop_us: float = 0.55
    #: sender NIC occupancy per byte (17 MB/s streaming: 0.0588 us/B) --
    #: back-to-back sends from one node serialize at this rate
    nic_occupancy_per_byte_us: float = 0.0588
    #: fixed sender NIC occupancy per message (host stores to LANai memory)
    nic_occupancy_base_us: float = 4.0

    # ---- access control (Typhoon-0) --------------------------------------
    #: fast-exception cost for an access-control violation
    fault_exception_us: float = 5.0
    #: cost of changing a block's access tag (uncached store to T0)
    tag_change_us: float = 0.6

    # ---- notification ----------------------------------------------------
    #: polling round trip once a message is present
    poll_round_trip_us: float = 1.5
    #: mean time to the next backedge poll while the app is computing
    poll_backedge_gap_us: float = 2.0
    #: delay to notice a message while blocked inside the runtime (both
    #: mechanisms spin-poll while blocked; interrupts are disabled)
    blocked_poll_us: float = 0.5
    #: Solaris signal delivery cost for the interrupt mechanism
    interrupt_us: float = 70.0

    # ---- protocol processing (runs on the host CPU) ----------------------
    #: fixed cost to run any protocol handler
    handler_base_us: float = 3.0
    #: per-byte cost of copying block data into/out of messages
    copy_per_byte_us: float = 0.02
    #: per-byte cost of creating a twin (block copy)
    twin_per_byte_us: float = 0.02
    #: fixed cost of creating a twin (allocation + bookkeeping) -- the
    #: component that does NOT amortize at fine granularity and makes
    #: "the extra overhead of the relaxed protocols not justified" at
    #: 64 bytes (Section 5.1), with HLRC paying more than SW-LRC
    twin_fixed_us: float = 5.0
    #: per-byte cost of word-comparing dirty copy against twin (diffing)
    diff_create_per_byte_us: float = 0.035
    #: fixed cost per diff operation (setup, run encoding, allocation)
    diff_create_fixed_us: float = 10.0
    #: per-byte cost of applying a diff at the home
    diff_apply_per_byte_us: float = 0.025
    #: fixed cost per diff application at the home
    diff_apply_fixed_us: float = 5.0
    #: fixed cost to record/apply one write notice at acquire time
    write_notice_us: float = 0.4
    #: fixed protocol bookkeeping at lock acquire/release and barriers
    #: for the LRC protocols (interval creation, timestamp bump)
    interval_us: float = 6.0
    #: fixed cost of lock/barrier manager handlers
    sync_handler_us: float = 8.0

    # ---- derived ----------------------------------------------------------
    def one_way_latency_us(self, size_bytes: int) -> float:
        """One-way wire+software latency for a message of this size.

        Excludes notification delay at the receiver and NIC queueing at
        the sender, which the network layer adds separately.
        """
        base = (
            self.net_base_small_us
            if size_bytes <= self.small_message_bytes
            else self.net_base_us
        )
        return base + self.net_per_byte_us * size_bytes

    def nic_occupancy_us(self, size_bytes: int) -> float:
        """How long the sender NIC is busy injecting this message."""
        return self.nic_occupancy_base_us + self.nic_occupancy_per_byte_us * size_bytes

    # ---- all-software presets (Section 7 future work) --------------------
    @classmethod
    def svm(cls, **overrides) -> "MachineParams":
        """An all-software shared-virtual-memory configuration.

        No Typhoon-0: access control comes from the virtual-memory
        mechanism, so the coherence unit is the 4096-byte page and an
        access violation costs a real page fault plus signal delivery
        (~100 us on the paper's platform instead of the 5 us fast
        exception), and tag changes are mprotect calls.  The paper
        predicts "all these performance differences would be larger on
        real SVM systems, where the overheads of access violations are
        higher" -- bench_extensions checks exactly that.
        """
        base = dict(
            granularity=PAGE_SIZE,
            fault_exception_us=100.0,
            tag_change_us=25.0,
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def fine_grain_software(cls, **overrides) -> "MachineParams":
        """All-software fine-grain access control through load/store
        instrumentation (Schoinas et al. style): fine blocks work, but
        every shared access pays an instrumented check, modeled as a
        higher polling-style dilation plus a slightly cheaper fault
        path (no device interaction).
        """
        base = dict(
            fault_exception_us=3.0,
            tag_change_us=0.2,
        )
        base.update(overrides)
        return cls(**base)

    def validate(self) -> None:
        allowed = GRANULARITIES + EXTENDED_GRANULARITIES
        if self.granularity not in allowed:
            raise ValueError(
                f"granularity {self.granularity} not in {allowed}"
            )
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        g = self.granularity
        if not (PAGE_SIZE % g == 0 or g % PAGE_SIZE == 0):
            raise ValueError(
                "granularity must divide the page size or be a multiple of it"
            )


def switch_of(node_id: int) -> int:
    """Which 8-port crossbar a node hangs off.

    The paper's 16 nodes connect to three 8-port switches, two ports of
    each switch used for switch-to-switch links.  That leaves 6 host
    ports per switch: nodes 0-5 on switch 0, 6-11 on switch 1, 12-15 on
    switch 2.  The same rule generalizes to the 32-node configuration
    the paper's footnote anticipates ("we hope to have 32-node runs for
    the final version"): six switches in a line.
    """
    return node_id // 6


#: widest machine the line-of-switches topology is kept for (the
#: paper's 16 nodes and its anticipated 32-node configuration); larger
#: machines switch to the tiered fabric below
LINE_TOPOLOGY_MAX_NODES = 32

#: leaf switches per spine group / spine groups per core group in the
#: tiered fabric (8-port crossbars throughout)
_LEAVES_PER_SPINE = 8


def hops_between(a: int, b: int, n_nodes: Optional[int] = None) -> int:
    """Number of switch-to-switch hops between two nodes.

    Up to 32 nodes (``n_nodes`` omitted or small) switches form a line
    and the hop count is the switch-index distance -- 0-2 for the
    paper's 16 nodes, up to 5 for 32, exactly as the seed modeled it.

    A line does not scale (1024 nodes would mean a 170-hop diameter no
    real Myrinet install ever had), so for larger machines the fabric
    grows fat-tree-ish tiers of the same 8-port crossbars: leaf
    switches of 6 hosts each, 8 leaves per spine switch, 8 spines per
    core switch.  Hop counts: same leaf 0, same spine group 2
    (leaf-spine-leaf), same core group 4, across core groups 6 --
    the diameter stays constant in N, as in real multistage fabrics.
    """
    sa, sb = switch_of(a), switch_of(b)
    if n_nodes is None or n_nodes <= LINE_TOPOLOGY_MAX_NODES:
        return abs(sa - sb)
    if sa == sb:
        return 0
    pa, pb = sa // _LEAVES_PER_SPINE, sb // _LEAVES_PER_SPINE
    if pa == pb:
        return 2
    if pa // _LEAVES_PER_SPINE == pb // _LEAVES_PER_SPINE:
        return 4
    return 6
