"""Happens-before data-race detector for simulated DSM programs.

The LRC protocols only promise coherent data to *data-race-free*
programs (paper Section 2): coherence information moves at acquires,
releases and barriers, so two conflicting accesses not ordered by the
synchronization graph read or clobber stale copies -- silently.  This
detector reconstructs the happens-before relation from the
instrumentation hooks (:mod:`repro.hooks`) and reports every
conflicting access pair it cannot order, in the DJIT+ style:

* each node carries a vector clock (through the
  :class:`~repro.core.timestamps.Clock` interface -- dense at paper
  scale, sparse on wide machines), advanced at releases and barrier
  entries;
* each lock carries a clock merged from every releaser and folded into
  each acquirer (the transitive lock-chain ordering);
* a barrier episode stashes every participant's entry clock and folds
  all of them into every participant on exit (all-to-all ordering);
* for every *detection unit* (byte / word / coherence block) the last
  read and last write of each node are kept as scalar epochs; an access
  conflicts with a stored epoch the accessor's clock has not seen.

Detection granularity vs. true races
------------------------------------
Tracking at coherence-block granularity reports every unordered pair
that the protocol could mis-handle, but lumps *false sharing* (disjoint
bytes in one unit) together with true races.  Each stored epoch
therefore remembers the byte ranges it covered: a conflicting pair
whose ranges overlap is a true race, a disjoint pair is reported
separately as false sharing.  Within one epoch the ranges of repeated
accesses are unioned (capped at :data:`MAX_RANGES` fragments, after
which the union collapses to its bounding box -- conservative: it can
only upgrade false sharing to a reported race, never hide one).

Reports carry *both* access sites (application source location via
frame inspection, simulated time, and the node's last synchronization
action) so a flagged pair reads like::

    node 2 write [0x1040, 0x1044) at t=812.4us, racy_app.py:31 in body
      (after acquire(lock 3) @t=640.0us)

The detector only observes -- it never yields simulated time or sends
messages, so a checked run is bit-identical to an unchecked one.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.timestamps import Clock, make_clock
from repro.hooks import Hooks

#: named detection units; "block" resolves to the machine's coherence
#: granularity at install time
GRANULARITIES = ("byte", "word", "block")

#: per-epoch cap on stored byte-range fragments (see module docstring)
MAX_RANGES = 16

#: source paths whose frames are skipped when attributing an access to
#: application code (the runtime plumbing between the app generator and
#: the hook callback); apps and test programs live outside these
_PLUMBING = ("/repro/runtime/", "/repro/check/", "/repro/sync/",
             "/repro/sim/", "/repro/cluster/", "/repro/hooks")


def resolve_unit(granularity, block_bytes: int) -> int:
    """Map a granularity name (or a positive int) to a unit size."""
    if isinstance(granularity, int):
        if granularity <= 0:
            raise ValueError(f"bad detection unit {granularity}")
        return granularity
    try:
        return {"byte": 1, "word": 4, "block": block_bytes}[granularity]
    except KeyError:
        raise ValueError(
            f"unknown race granularity {granularity!r}; "
            f"expected one of {GRANULARITIES} or a byte count"
        ) from None


def _app_location() -> str:
    """Source location of the innermost application frame.

    Generator resumption pushes the whole ``yield from`` chain onto the
    stack, so walking ``f_back`` from here passes through the runtime
    plumbing and reaches the app generator that issued the access.
    """
    f = sys._getframe(1)
    fallback = None
    while f is not None:
        filename = f.f_code.co_filename.replace("\\", "/")
        if not any(p in filename for p in _PLUMBING):
            return f"{filename.rsplit('/', 1)[-1]}:{f.f_lineno} in {f.f_code.co_name}"
        fallback = f
        f = f.f_back
    if fallback is not None:  # pragma: no cover - plumbing-only stack
        return (f"{fallback.f_code.co_filename.rsplit('/', 1)[-1]}:"
                f"{fallback.f_lineno} in {fallback.f_code.co_name}")
    return "<unknown>"  # pragma: no cover


@dataclass(frozen=True)
class AccessSite:
    """One side of a reported conflict."""

    node: int
    write: bool
    addr: int
    size: int
    time_us: float
    location: str
    sync_context: str

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        return (
            f"node {self.node} {kind} [{self.addr:#x}, {self.addr + self.size:#x}) "
            f"at t={self.time_us:.1f}us, {self.location}\n"
            f"      ({self.sync_context})"
        )


@dataclass(frozen=True)
class Race:
    """An unordered conflicting access pair on one detection unit."""

    unit: int            # unit index (addr // unit_bytes)
    unit_bytes: int
    earlier: AccessSite  # the stored epoch the new access conflicted with
    later: AccessSite
    true_race: bool      # byte ranges overlap (False = false sharing)

    def describe(self) -> str:
        lo = self.unit * self.unit_bytes
        kind = "data race" if self.true_race else "false sharing"
        return (
            f"{kind} on [{lo:#x}, {lo + self.unit_bytes:#x}) "
            f"({self.unit_bytes}-byte unit):\n"
            f"    {self.earlier.describe()}\n"
            f"    {self.later.describe()}"
        )


class _Epoch:
    """Last same-kind access of one node to one unit."""

    __slots__ = ("clock", "ranges", "site", "exempt")

    def __init__(
        self, clock: int, lo: int, hi: int, site: AccessSite, exempt: bool
    ):
        self.clock = clock
        self.ranges: List[Tuple[int, int]] = [(lo, hi)]
        self.site = site
        self.exempt = exempt

    def add_range(self, lo: int, hi: int) -> None:
        ranges = self.ranges
        last_lo, last_hi = ranges[-1]
        if lo <= last_hi and hi >= last_lo:  # touching/overlapping: extend
            ranges[-1] = (min(lo, last_lo), max(hi, last_hi))
        elif len(ranges) >= MAX_RANGES:
            # Collapse to the bounding box (conservative, see module doc).
            ranges[:] = [(min(lo, ranges[0][0]), max(hi, ranges[-1][1]))]
        else:
            ranges.append((lo, hi))

    def overlaps(self, lo: int, hi: int) -> bool:
        return any(a < hi and lo < b for a, b in self.ranges)


class RaceDetector(Hooks):
    """Vector-clock happens-before race detection over the hook stream.

    Install with :func:`repro.check.install_checkers` (or directly via
    ``machine.add_hooks``) *before* the program runs.
    """

    def __init__(
        self,
        n_nodes: int,
        unit_bytes: int,
        engine,
        max_reports: int = 100,
    ):
        self.unit_bytes = unit_bytes
        self.max_reports = max_reports
        self.engine = engine
        self._clock = [make_clock(n_nodes) for _ in range(n_nodes)]
        for i, c in enumerate(self._clock):
            # Epochs start at 1 so a first-epoch access is distinguishable
            # from "never synchronized with" (component 0).
            c.tick(i)
        self._lock_clock: Dict[int, Clock] = {}
        #: (barrier_id, episode) -> (entry clocks, exit countdown)
        self._episodes: Dict[Tuple[int, int], Tuple[List[Clock], List[int]]] = {}
        #: unit -> node -> last write / last read epoch
        self._writes: Dict[int, Dict[int, _Epoch]] = {}
        self._reads: Dict[int, Dict[int, _Epoch]] = {}
        #: human-readable last-sync description per node
        self._context = ["before any synchronization"] * n_nodes
        #: assume_disjoint scope nesting depth per node
        self._exempt_depth = [0] * n_nodes
        self.races: List[Race] = []
        self.false_sharing: List[Race] = []
        self.races_total = 0
        self.false_sharing_total = 0
        #: distinct conflicting pairs suppressed by assume_disjoint
        self.exempted_total = 0
        self._seen: set = set()

    # ------------------------------------------------------------------
    # hook interface: accesses
    # ------------------------------------------------------------------
    def on_region(self, node_id: int, addr: int, size: int, write: bool) -> None:
        if size <= 0:
            return
        clock = self._clock[node_id]
        my = clock[node_id]
        exempt = self._exempt_depth[node_id] > 0
        site = AccessSite(
            node=node_id,
            write=write,
            addr=addr,
            size=size,
            time_us=self.engine.now,
            location=_app_location(),
            sync_context=self._context[node_id],
        )
        ub = self.unit_bytes
        writes, reads = self._writes, self._reads
        for unit in range(addr // ub, (addr + size - 1) // ub + 1):
            lo = max(addr, unit * ub)
            hi = min(addr + size, (unit + 1) * ub)
            wmap = writes.get(unit)
            if wmap:
                for other, epoch in wmap.items():
                    if other != node_id and epoch.clock > clock[other]:
                        self._report(unit, epoch, site, lo, hi, exempt)
            if write:
                rmap = reads.get(unit)
                if rmap:
                    for other, epoch in rmap.items():
                        if other != node_id and epoch.clock > clock[other]:
                            self._report(unit, epoch, site, lo, hi, exempt)
            target = writes if write else reads
            umap = target.get(unit)
            if umap is None:
                umap = target[unit] = {}
            mine = umap.get(node_id)
            if mine is not None and mine.clock == my:
                mine.add_range(lo, hi)
                if not exempt:
                    # Mixed epochs stay reportable (conservative).
                    mine.exempt = False
            else:
                umap[node_id] = _Epoch(my, lo, hi, site, exempt)

    def _report(
        self,
        unit: int,
        epoch: _Epoch,
        site: AccessSite,
        lo: int,
        hi: int,
        exempt: bool,
    ) -> None:
        other = epoch.site
        key = (
            unit,
            other.node, other.write, other.location,
            site.node, site.write, site.location,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        if exempt or epoch.exempt:
            # Either side ran under assume_disjoint: the original
            # program keeps this pair conflict-free at element level.
            self.exempted_total += 1
            return
        true_race = epoch.overlaps(lo, hi)
        race = Race(
            unit=unit,
            unit_bytes=self.unit_bytes,
            earlier=other,
            later=site,
            true_race=true_race,
        )
        if true_race:
            self.races_total += 1
            if len(self.races) < self.max_reports:
                self.races.append(race)
        else:
            self.false_sharing_total += 1
            if len(self.false_sharing) < self.max_reports:
                self.false_sharing.append(race)

    def on_assume_disjoint(self, node_id: int, active: bool, reason: str) -> None:
        self._exempt_depth[node_id] += 1 if active else -1

    # ------------------------------------------------------------------
    # hook interface: synchronization (the happens-before edges)
    # ------------------------------------------------------------------
    def on_acquire(self, node_id: int, lock_id: int) -> None:
        lock_clock = self._lock_clock.get(lock_id)
        if lock_clock is not None:
            self._clock[node_id].merge(lock_clock)
        self._context[node_id] = (
            f"after acquire(lock {lock_id}) @t={self.engine.now:.1f}us"
        )

    def on_release(self, node_id: int, lock_id: int) -> None:
        clock = self._clock[node_id]
        lock_clock = self._lock_clock.get(lock_id)
        if lock_clock is None:
            lock_clock = self._lock_clock[lock_id] = make_clock(len(clock))
        lock_clock.merge(clock)
        clock.tick(node_id)
        self._context[node_id] = (
            f"after release(lock {lock_id}) @t={self.engine.now:.1f}us"
        )

    def on_barrier_enter(self, node_id: int, barrier_id: int, episode: int) -> None:
        key = (barrier_id, episode)
        rec = self._episodes.get(key)
        if rec is None:
            rec = self._episodes[key] = ([], [0])
        rec[0].append(self._clock[node_id].copy())

    def on_barrier_exit(self, node_id: int, barrier_id: int, episode: int) -> None:
        key = (barrier_id, episode)
        rec = self._episodes.get(key)
        if rec is None:  # pragma: no cover - exit without entry
            return
        entry_clocks, exits = rec
        clock = self._clock[node_id]
        for entry in entry_clocks:
            clock.merge(entry)
        clock.tick(node_id)
        # Every participant entered before the first exit (the manager
        # broadcasts only once all arrivals are in), so the entry list
        # is complete here and the countdown is exact.
        exits[0] += 1
        if exits[0] >= len(entry_clocks):
            del self._episodes[key]
        self._context[node_id] = (
            f"after barrier {barrier_id} (episode {episode}) "
            f"@t={self.engine.now:.1f}us"
        )

    # ------------------------------------------------------------------
    @property
    def report_count(self) -> int:
        return self.races_total + self.false_sharing_total
