"""Dynamic correctness checking for the DSM simulator.

The LRC protocols (SW-LRC, HLRC) only guarantee coherence for
data-race-free programs: coherence information moves exclusively at
acquire/release/barrier points, so an unsynchronized conflicting access
pair reads whatever happens to be cached.  Nothing in a performance
table reveals that -- the run completes, the speedup looks plausible,
the data is garbage.  This package is the mechanical backstop:

* :mod:`repro.check.race` -- a happens-before data-race detector
  (vector clocks over the instrumentation hooks);
* :mod:`repro.check.invariants` -- protocol-invariant sanitizer
  asserting SC directory discipline, HLRC twin/diff discipline and
  SW-LRC version rules while a simulation runs;
* :func:`install_checkers` / :func:`run_experiment(check=True)
  <repro.harness.experiment.run_experiment>` -- the wiring.

The static companion lives in ``tools/lint_sim.py``.  See
``docs/CHECKING.md`` for the full catalogue.
"""

from repro.check.api import (
    CheckFailure,
    Checkers,
    CheckReport,
    install_checkers,
)
from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.race import AccessSite, Race, RaceDetector

__all__ = [
    "AccessSite",
    "CheckFailure",
    "CheckReport",
    "Checkers",
    "InvariantChecker",
    "InvariantViolation",
    "Race",
    "RaceDetector",
    "install_checkers",
]
