"""Protocol-invariant sanitizer: asserts, while a simulation runs, the
state machine properties each protocol's correctness argument rests on.

The checks are drawn from the protocol descriptions (paper Section 2)
and run at the three kinds of quiescent points the protocols define:

**after every protocol message** (wired through
``CoherenceProtocol.checker`` in :meth:`on_message
<repro.core.protocol.CoherenceProtocol.on_message>`), for the touched
block only and skipping blocks with a transaction in flight:

* SC -- at most one RW copy; a writer excludes readers; the node
  holding RW is the directory's registered owner; a registered owner
  excludes other sharers.
* SW-LRC -- a single writable copy; node-local ownership
  (``owned``) is held by at most one node and covers every RW tag.
* Tardis -- ``wts <= rts`` on every settled entry; both timestamps
  monotonically non-decreasing (lease monotonicity); a single writable
  copy agreeing with the recorded owner; every read-only copy away
  from an unowned home is covered by a recorded lease bounded by the
  block's ``rts``.

**at every release boundary** (the ``on_release_done`` hook, firing
after ``release_prepare`` for both lock releases and barrier arrivals):

* HLRC -- no twin and no dirty block survives a release, and no block
  stays writable (every write of the next interval must fault so it is
  advertised); twin/diff discipline is what keeps home copies current.
* SW-LRC -- no dirty block survives; no block stays writable.
* both -- write-notice versions per (author, block) strictly increase
  in interval order (the versioning rule invalidation skipping relies
  on).

**after every sync application** (the ``on_sync_applied`` hook):

* SW-LRC -- write-notice coverage: after applying a grant, every
  noticed block is invalidated or locally versioned at least as high
  as the notice, and the hint table points at a writer at least as
  fresh (one-hop read service correctness).
* HLRC -- every noticed block is invalidated unless this node is the
  writer or the block's home.
* Tardis -- pts advance on acquire: the node's program timestamp is at
  least the granter's shipped ``pts``, and no cached lease older than
  the new ``pts`` survives the expiry scan.

``end_of_run`` re-scans the interval logs and sweeps the full SC
directory once.  Like every hook, the checker observes only: a checked
run is bit-identical to an unchecked one.

Transient windows
-----------------
Mid-transaction states are legal (a grant in flight, a deferred
recall): per-message checks skip a block when the directory entry is
busy/pending or any node has an in-flight, poisoned, deferred or
settling fault on it (the SC protocol exposes the zero-delay
post-install window through its ``_settling`` set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hooks import Hooks
from repro.memory.access_control import INV, RW, tag_name


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation of a protocol invariant."""

    rule: str
    protocol: str
    node: Optional[int]
    block: Optional[int]
    time_us: float
    detail: str

    def describe(self) -> str:
        where = f" block {self.block}" if self.block is not None else ""
        who = f" node {self.node}" if self.node is not None else ""
        return (
            f"[{self.protocol}:{self.rule}]{who}{where} "
            f"at t={self.time_us:.1f}us: {self.detail}"
        )


class InvariantChecker(Hooks):
    """Install via :func:`repro.check.install_checkers`; it registers
    both as an instrumentation hook and as ``protocol.checker``."""

    def __init__(self, machine, max_reports: int = 100):
        self.m = machine
        self.p = machine.protocol
        self.engine = machine.engine
        self.n = machine.params.n_nodes
        self.max_reports = max_reports
        self.violations: List[InvariantViolation] = []
        self.violations_total = 0
        self._seen: set = set()
        #: intervals already scanned for version monotonicity, per node
        self._scanned = [0] * self.n
        #: (author node, block) -> last notice version seen in its log
        self._last_version: Dict[Tuple[int, int], int] = {}
        #: (block) -> last settled (wts, rts) seen (tardis monotonicity)
        self._last_ts: Dict[int, Tuple[int, int]] = {}
        #: per-node last observed program timestamp (tardis)
        self._last_pts = [0] * self.n
        name = self.p.name
        self._per_message = {
            "sc": self._msg_sc,
            "swlrc": self._msg_swlrc,
            "tardis": self._msg_tardis,
        }.get(name)
        self._at_release = {
            "swlrc": self._release_swlrc,
            "hlrc": self._release_hlrc,
        }.get(name)
        self._at_sync = {
            "swlrc": self._sync_swlrc,
            "hlrc": self._sync_hlrc,
            "tardis": self._sync_tardis,
        }.get(name)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report(
        self,
        rule: str,
        detail: str,
        node: Optional[int] = None,
        block: Optional[int] = None,
    ) -> None:
        self.violations_total += 1
        key = (rule, node, block)
        if key in self._seen:
            return
        self._seen.add(key)
        if len(self.violations) < self.max_reports:
            self.violations.append(
                InvariantViolation(
                    rule=rule,
                    protocol=self.p.name,
                    node=node,
                    block=block,
                    time_us=self.engine.now,
                    detail=detail,
                )
            )

    def _tags(self, block: int) -> List[int]:
        return [n.access.tag(block) for n in self.m.nodes]

    # ------------------------------------------------------------------
    # per-message checks (called by CoherenceProtocol.on_message)
    # ------------------------------------------------------------------
    def after_message(self, protocol, node, msg) -> None:
        if self._per_message is not None and msg.block >= 0:
            self._per_message(msg.block)

    def _sc_in_flight(self, block: int) -> bool:
        p = self.p
        e = p.dir.get(block)
        if e is not None and (e.busy or e.pending):
            return True
        for i in range(self.n):
            key = (i, block)
            if (
                key in p._inflight
                or key in p._poisoned
                or key in p._settling
                or key in p._deferred_recalls
            ):
                return True
        return False

    def _msg_sc(self, block: int) -> None:
        if self._sc_in_flight(block):
            return
        p = self.p
        e = p.dir.get(block)
        tags = self._tags(block)
        rw = [i for i, t in enumerate(tags) if t == RW]
        ro = [i for i, t in enumerate(tags) if t not in (INV, RW)]
        if len(rw) > 1:
            self._report(
                "single-writer",
                f"multiple RW copies on nodes {rw}",
                block=block,
            )
        elif rw and ro:
            self._report(
                "writer-excludes-readers",
                f"node {rw[0]} holds RW while nodes {ro} hold RO",
                block=block,
            )
        if rw and (e is None or e.owner != rw[0]):
            self._report(
                "owner-tag-agreement",
                f"node {rw[0]} holds RW but directory owner is "
                f"{None if e is None else e.owner}",
                node=rw[0],
                block=block,
            )
        if e is not None and e.owner is not None and (e.sharers - {e.owner}):
            self._report(
                "owner-excludes-sharers",
                f"owner {e.owner} registered with extra sharers "
                f"{sorted(e.sharers - {e.owner})}",
                block=block,
            )

    def _msg_swlrc(self, block: int) -> None:
        p = self.p
        e = p.owners.get(block)
        if e is not None and (e.busy or e.pending):
            return
        tags = self._tags(block)
        rw = [i for i, t in enumerate(tags) if t == RW]
        if len(rw) > 1:
            self._report(
                "single-writable-copy",
                f"multiple RW copies on nodes {rw}",
                block=block,
            )
        holders = [i for i in range(self.n) if block in p.owned[i]]
        if len(holders) > 1:
            self._report(
                "unique-owner",
                f"multiple nodes believe they own the block: {holders}",
                block=block,
            )
        for i in rw:
            if block not in p.owned[i]:
                self._report(
                    "rw-implies-owned",
                    f"node {i} holds a writable copy without ownership",
                    node=i,
                    block=block,
                )

    def _msg_tardis(self, block: int) -> None:
        p = self.p
        e = p.entries.get(block)
        if e is None or e.busy or e.pending:
            return
        if e.wts > e.rts:
            self._report(
                "wts-le-rts",
                f"write timestamp {e.wts} above read lease {e.rts}",
                block=block,
            )
        last = self._last_ts.get(block)
        if last is not None and (e.wts < last[0] or e.rts < last[1]):
            self._report(
                "lease-monotonic",
                f"timestamps went backwards: {last} -> ({e.wts}, {e.rts})",
                block=block,
            )
        self._last_ts[block] = (e.wts, e.rts)
        tags = self._tags(block)
        rw = [i for i, t in enumerate(tags) if t == RW]
        if len(rw) > 1:
            self._report(
                "single-writable-copy",
                f"multiple RW copies on nodes {rw}",
                block=block,
            )
        if rw and e.owner != rw[0]:
            self._report(
                "owner-tag-agreement",
                f"node {rw[0]} holds RW but the recorded owner is {e.owner}",
                node=rw[0],
                block=block,
            )
        home_id = p.home.home_or_static(block)
        for i, t in enumerate(tags):
            if t in (INV, RW):
                continue
            lease = p.lease[i].get(block)
            if lease is None:
                if i == home_id and e.owner in (None, i):
                    # The unowned home reads its own memory -- always
                    # current, no lease needed.
                    continue
                self._report(
                    "reader-holds-lease",
                    "read-only copy without a recorded lease",
                    node=i,
                    block=block,
                )
            elif lease > e.rts:
                self._report(
                    "lease-bounded-by-rts",
                    f"node lease {lease} exceeds the block's rts {e.rts}",
                    node=i,
                    block=block,
                )

    # ------------------------------------------------------------------
    # release-boundary checks (on_release_done hook)
    # ------------------------------------------------------------------
    def on_release_done(self, node_id: int) -> None:
        if self._at_release is not None:
            self._at_release(node_id)

    def _writable_blocks(self, node_id: int) -> List[int]:
        return [
            b
            for b, t in self.m.nodes[node_id].access.blocks_with_access()
            if t == RW
        ]

    def _release_common(self, node_id: int) -> None:
        dirty = self.p.dirty[node_id]
        if dirty:
            self._report(
                "dirty-survives-release",
                f"{len(dirty)} dirty blocks after release "
                f"(e.g. {sorted(dirty)[:4]})",
                node=node_id,
            )
        writable = self._writable_blocks(node_id)
        if writable:
            self._report(
                "writable-after-release",
                f"blocks {writable[:4]} still RW after release "
                "(next interval's writes would go unadvertised)",
                node=node_id,
                block=writable[0],
            )
        self._scan_intervals(node_id)

    def _release_swlrc(self, node_id: int) -> None:
        self._release_common(node_id)

    def _release_hlrc(self, node_id: int) -> None:
        twins = self.p.twins[node_id]
        if twins:
            self._report(
                "twin-survives-release",
                f"{len(twins)} twins after release "
                f"(e.g. blocks {sorted(twins)[:4]}); diffs not flushed",
                node=node_id,
            )
        self._release_common(node_id)

    def _scan_intervals(self, node_id: int) -> None:
        """Write-notice version monotonicity, in interval order.

        Notices in a node's interval log are authored by that node;
        both protocols' invalidation-skipping arguments need the
        advertised version per (author, block) to strictly increase."""
        log = self.p.ilog._log[node_id]
        for k in range(self._scanned[node_id], len(log)):
            for wn in log[k]:
                if wn.owner != node_id:
                    self._report(
                        "notice-author",
                        f"interval {k} carries a notice authored by "
                        f"node {wn.owner}",
                        node=node_id,
                        block=wn.block,
                    )
                key = (node_id, wn.block)
                last = self._last_version.get(key)
                if last is not None and wn.version <= last:
                    self._report(
                        "notice-version-monotonic",
                        f"interval {k} advertises version {wn.version} "
                        f"after version {last}",
                        node=node_id,
                        block=wn.block,
                    )
                self._last_version[key] = wn.version
        self._scanned[node_id] = len(log)

    # ------------------------------------------------------------------
    # acquire-side checks (on_sync_applied hook)
    # ------------------------------------------------------------------
    def on_sync_applied(self, node_id: int, payload) -> None:
        if self._at_sync is not None and payload:
            self._at_sync(node_id, payload)

    def _sync_swlrc(self, node_id: int, payload) -> None:
        p = self.p
        access = self.m.nodes[node_id].access
        for wn in payload.get("notices") or ():
            if wn.owner == node_id:
                continue
            if access.tag(wn.block) != INV:
                version = p.version[node_id].get(wn.block)
                if version is None or version < wn.version:
                    self._report(
                        "notice-coverage",
                        f"copy kept with version {version} despite a "
                        f"notice for version {wn.version}",
                        node=node_id,
                        block=wn.block,
                    )
            hint = p.hint[node_id].get(wn.block)
            if hint is None or hint[0] < wn.version:
                self._report(
                    "hint-freshness",
                    f"hint {hint} older than applied notice "
                    f"(version {wn.version} by node {wn.owner})",
                    node=node_id,
                    block=wn.block,
                )

    def _sync_hlrc(self, node_id: int, payload) -> None:
        p = self.p
        access = self.m.nodes[node_id].access
        for wn in payload.get("notices") or ():
            if wn.owner == node_id or p._is_home(node_id, wn.block):
                continue
            tag = access.tag(wn.block)
            if tag != INV:
                self._report(
                    "notice-invalidation",
                    f"copy kept {tag_name(tag)} despite a notice by "
                    f"node {wn.owner}",
                    node=node_id,
                    block=wn.block,
                )

    def _sync_tardis(self, node_id: int, payload) -> None:
        p = self.p
        shipped = payload.get("pts")
        if shipped is None:
            return
        pts = p.pts[node_id]
        if pts < shipped:
            self._report(
                "pts-advance-on-acquire",
                f"program timestamp {pts} below the granter's shipped "
                f"pts {shipped}",
                node=node_id,
            )
        if pts < self._last_pts[node_id]:
            self._report(
                "pts-monotonic",
                f"program timestamp went backwards: "
                f"{self._last_pts[node_id]} -> {pts}",
                node=node_id,
            )
        self._last_pts[node_id] = pts
        for block, lease in p.lease[node_id].items():
            if lease < pts:
                self._report(
                    "stale-lease-expired",
                    f"lease {lease} survived the expiry scan past "
                    f"pts {pts}",
                    node=node_id,
                    block=block,
                )

    # ------------------------------------------------------------------
    # end of run
    # ------------------------------------------------------------------
    def end_of_run(self) -> None:
        """Final sweeps once the event queue has drained.

        Trailing intervals (writes after the last release) are legal
        under LRC, so no dirty/twin checks here -- only the interval
        logs and, for SC, one full-directory consistency pass."""
        if self._at_release is not None:
            for i in range(self.n):
                self._scan_intervals(i)
        if self.p.name == "sc":
            blocks = set(self.p.dir)
            for node in self.m.nodes:
                blocks.update(b for b, _ in node.access.blocks_with_access())
            for block in sorted(blocks):
                self._msg_sc(block)
        elif self.p.name == "tardis":
            for block in sorted(self.p.entries):
                self._msg_tardis(block)
