"""Installation and reporting surface of the checker subsystem.

Typical use (also what ``run_experiment(cfg, check=True)`` and the
``repro-dsm check`` CLI subcommand do)::

    machine = Machine(params, protocol="hlrc")
    checkers = install_checkers(machine, race_granularity="word")
    app.setup(machine)
    run_program(machine, app.program, ...)
    report = checkers.report()
    if not report.ok:
        print(report.describe())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.race import Race, RaceDetector, resolve_unit


@dataclass
class CheckReport:
    """Everything the checkers found in one run.

    ``races``/``false_sharing``/``violations`` are capped at the
    installer's ``max_reports``; the ``*_total`` counters keep the true
    (deduplicated) counts."""

    races: List[Race] = field(default_factory=list)
    false_sharing: List[Race] = field(default_factory=list)
    violations: List[InvariantViolation] = field(default_factory=list)
    races_total: int = 0
    false_sharing_total: int = 0
    violations_total: int = 0

    @property
    def ok(self) -> bool:
        """No races, no invariant violations (false sharing is a
        performance report, not a correctness failure)."""
        return self.races_total == 0 and self.violations_total == 0

    def describe(self) -> str:
        lines: List[str] = []
        if self.races_total:
            lines.append(f"{self.races_total} data race(s):")
            lines.extend(f"  {r.describe()}" for r in self.races)
            if self.races_total > len(self.races):
                lines.append(
                    f"  ... {self.races_total - len(self.races)} more"
                )
        if self.violations_total:
            lines.append(
                f"{self.violations_total} protocol-invariant violation(s), "
                f"{len(self.violations)} distinct:"
            )
            lines.extend(f"  {v.describe()}" for v in self.violations)
        if self.false_sharing_total:
            lines.append(
                f"{self.false_sharing_total} false-sharing pair(s) "
                "(unordered accesses to disjoint bytes of one unit; "
                "not a correctness failure):"
            )
            lines.extend(f"  {r.describe()}" for r in self.false_sharing)
        if not lines:
            return "check clean: no races, no invariant violations"
        return "\n".join(lines)


class CheckFailure(RuntimeError):
    """Raised by checked executions configured to fail on findings."""

    def __init__(self, report: CheckReport, label: str = ""):
        self.report = report
        self.label = label
        prefix = f"{label}: " if label else ""
        super().__init__(
            f"{prefix}{report.races_total} race(s), "
            f"{report.violations_total} invariant violation(s)\n"
            + report.describe()
        )


class Checkers:
    """Handle over the checkers installed on one machine."""

    def __init__(
        self,
        machine,
        race: Optional[RaceDetector],
        invariants: Optional[InvariantChecker],
    ):
        self.machine = machine
        self.race = race
        self.invariants = invariants
        self._finished = False

    def report(self) -> CheckReport:
        """Finalize (idempotently) and collect all findings."""
        if not self._finished:
            self._finished = True
            if self.invariants is not None:
                self.invariants.end_of_run()
        out = CheckReport()
        if self.race is not None:
            out.races = list(self.race.races)
            out.false_sharing = list(self.race.false_sharing)
            out.races_total = self.race.races_total
            out.false_sharing_total = self.race.false_sharing_total
        if self.invariants is not None:
            out.violations = list(self.invariants.violations)
            out.violations_total = self.invariants.violations_total
        return out


def install_checkers(
    machine,
    *,
    races: bool = True,
    invariants: bool = True,
    race_granularity="word",
    max_reports: int = 100,
) -> Checkers:
    """Install the race detector and/or invariant sanitizer on a
    machine (before the program runs).

    ``race_granularity`` is ``"byte"``, ``"word"``, ``"block"`` or a
    byte count: the detection-unit size that decides what counts as one
    conflict location (block-level detection also surfaces false
    sharing; see :mod:`repro.check.race`).
    """
    detector = None
    if races:
        unit = resolve_unit(race_granularity, machine.params.granularity)
        detector = RaceDetector(
            machine.params.n_nodes,
            unit,
            machine.engine,
            max_reports=max_reports,
        )
        machine.add_hooks(detector)
    sanitizer = None
    if invariants:
        sanitizer = InvariantChecker(machine, max_reports=max_reports)
        machine.add_hooks(sanitizer)
        if machine.protocol.checker is not None:
            raise RuntimeError("an invariant checker is already installed")
        machine.protocol.checker = sanitizer
    return Checkers(machine, detector, sanitizer)
