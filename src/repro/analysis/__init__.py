"""Robustness analysis: how the paper's conclusions move when the
platform cost model moves."""

from repro.analysis.sensitivity import (
    SweepPoint,
    granularity_preference,
    sweep_parameter,
)

__all__ = ["sweep_parameter", "granularity_preference", "SweepPoint"]
