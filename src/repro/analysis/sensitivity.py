"""Cost-model sensitivity sweeps.

The paper's conclusions ("SC-256 best on average for original versions,
HLRC-4096 once restructured versions are allowed") are statements about
one platform's cost ratios.  This module re-runs configurations with a
scaled cost constant and reports how the protocol/granularity
preference moves -- the robustness check a reviewer would ask for, and
the mechanism behind the paper's own prediction that "all these
performance differences would be larger on real SVM systems".

Example::

    from repro.analysis import sweep_parameter

    points = sweep_parameter(
        app="ocean-original", field="fault_exception_us",
        multipliers=[1, 4, 16], protocol="sc",
        granularities=[64, 4096],
    )

Every sweep point carries the modified parameter value and the speedups
measured at each granularity, plus which granularity won.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.apps import make_app
from repro.cluster.config import MachineParams
from repro.cluster.machine import Machine
from repro.runtime.program import run_program


@dataclass
class SweepPoint:
    """One (parameter value) -> (speedup per granularity) observation."""

    field_name: str
    multiplier: float
    value: float
    speedups: Dict[int, float] = field(default_factory=dict)

    @property
    def best_granularity(self) -> int:
        return max(self.speedups, key=self.speedups.get)

    def ratio(self, g_a: int, g_b: int) -> float:
        """speedup(g_a) / speedup(g_b) at this point."""
        return self.speedups[g_a] / self.speedups[g_b]


def _run_one(app_name: str, scale: str, protocol: str, params: MachineParams,
             poll_dilation_override=None):
    app = make_app(app_name, scale=scale)
    dil = (app.poll_dilation if poll_dilation_override is None
           else poll_dilation_override)
    machine = Machine(params, protocol=protocol, poll_dilation=dil)
    app.setup(machine)
    result = run_program(machine, app.program, nprocs=params.n_nodes,
                         sequential_time_us=app.sequential_time_us())
    return result.stats


def sweep_parameter(
    app: str,
    field: str,
    multipliers: Sequence[float],
    protocol: str = "sc",
    granularities: Sequence[int] = (64, 4096),
    scale: str = "default",
    nprocs: int = 16,
) -> List[SweepPoint]:
    """Scale one MachineParams cost field and measure speedups."""
    base = getattr(MachineParams(), field)
    if not isinstance(base, (int, float)):
        raise TypeError(f"{field!r} is not a numeric cost parameter")
    points: List[SweepPoint] = []
    for mult in multipliers:
        point = SweepPoint(field_name=field, multiplier=mult,
                           value=base * mult)
        for g in granularities:
            params = MachineParams(n_nodes=nprocs, granularity=g)
            setattr(params, field, base * mult)
            stats = _run_one(app, scale, protocol, params)
            point.speedups[g] = stats.speedup
        points.append(point)
    return points


def granularity_preference(points: Sequence[SweepPoint], fine: int,
                           coarse: int) -> List[float]:
    """The coarse/fine speedup ratio along the sweep: >1 means coarse
    granularity wins at that cost point.  A monotonic trend shows the
    conclusion's sensitivity to the swept cost."""
    return [p.ratio(coarse, fine) for p in points]
