"""Myrinet-like interconnect model: messages, NIC/latency model, and
the three-crossbar topology of the paper's testbed.
"""

from repro.net.message import CONTROL_BYTES, HEADER_BYTES, Message
from repro.net.myrinet import Network

__all__ = ["Message", "Network", "HEADER_BYTES", "CONTROL_BYTES"]
