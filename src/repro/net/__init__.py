"""Myrinet-like interconnect model: messages, NIC/latency model, the
three-crossbar topology of the paper's testbed, plus the chaos layer --
seeded fault injection (:mod:`repro.net.faultplan`) and the
reliable-delivery transport (:mod:`repro.net.reliable`) the protocols
run under when the wire is untrusted.
"""

from repro.net.faultplan import FaultPlan, FaultSpec
from repro.net.message import CONTROL_BYTES, HEADER_BYTES, Message
from repro.net.myrinet import Network
from repro.net.reliable import ReliableTransport, TransportError

__all__ = [
    "Message",
    "Network",
    "HEADER_BYTES",
    "CONTROL_BYTES",
    "FaultSpec",
    "FaultPlan",
    "ReliableTransport",
    "TransportError",
]
