"""Reliable-delivery transport over an unreliable interconnect.

Every protocol handler in :mod:`repro.core` was written against a
perfect Myrinet: exactly-once delivery and per-link FIFO.  When a
:class:`~repro.net.faultplan.FaultPlan` makes the wire lossy, this
transport restores those guarantees *underneath* the protocol dispatch,
the way the LANai control program would on real hardware:

* **sequence numbers** -- each (src, dst) link stamps outgoing
  messages with a monotonically increasing ``msg.seq``;
* **ack / timeout / retransmit** -- the sender holds every unacked
  message and retransmits on an exponentially backed-off, jittered
  timeout (``FaultSpec.rto_us`` / ``rto_backoff`` / ``rto_jitter_us``);
  a message still unacked after ``max_retransmits`` attempts raises
  :class:`TransportError`, failing the run the way a SimulationError
  does (deterministically, so the failure caches);
* **duplicate suppression** -- the receiver acks every arrival but
  hands each sequence number to the node exactly once, whether the
  duplicate came from the fault plan or from a retransmission racing
  its own ack;
* **resequencing** -- arrivals ahead of the expected sequence number
  are held until the gap fills, so each link delivers in send order.
  This also repairs the latency-model inversion the ordering audit
  found in the raw wire (a small message overtaking a large one on the
  same link -- see the ordering notes in :mod:`repro.net.myrinet`).

Cost model: the transport runs in the network interface, not on the
host CPU.  Sequencing, dedup and resequencing are free; acks are real
wire messages (they occupy the acker's NIC, pay wire latency, appear in
``stats.msg_count['xp_ack']``, and are themselves subject to the fault
plan) but are consumed at wire arrival without host handler cost.
Application-visible messages still pay the normal notification and
handler costs in :meth:`repro.cluster.node.Node.deliver`.

Node-local messages (``src == dst``) bypass the transport entirely,
mirroring how they bypass the wire.

Counters land in ``stats.transport`` (a
:class:`~repro.stats.counters.TransportStats`), which exists only on
chaos runs so fault-free stats stay byte-identical to pre-chaos builds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.net.faultplan import FaultPlan
from repro.net.message import Message, control_size
from repro.sim.engine import SimulationError
from repro.simcore import SeqRing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.myrinet import Network

#: transport-internal message type; never reaches protocol dispatch
ACK_MTYPE = "xp_ack"


class TransportError(SimulationError):
    """A message exhausted its retransmit budget (the link is as good
    as severed).  Subclasses SimulationError: deterministic for a given
    seed, so the failed record is cacheable like a livelock."""


class ReliableTransport:
    """Per-machine reliable-delivery layer (one instance per Machine).

    Sits between the protocol/sync services and the raw
    :class:`~repro.net.myrinet.Network`: ``Machine.send`` routes
    through :meth:`send`, and the network's delivery callback is
    :meth:`on_wire` instead of the machine's node dispatch.
    """

    def __init__(self, machine, network: "Network", plan: FaultPlan):
        self.m = machine
        self.net = network
        self.engine = machine.engine
        self.plan = plan
        self.spec = plan.spec
        #: TransportStats; Machine attaches it before building us
        self.tstats = machine.stats.transport
        n = machine.params.n_nodes
        #: next sequence number to stamp, per (src, dst) link
        self._next_seq: List[List[int]] = [[0] * n for _ in range(n)]
        #: next sequence number to deliver, per (src, dst) link
        self._expect: List[List[int]] = [[0] * n for _ in range(n)]
        #: out-of-order arrivals held for resequencing, per link --
        #: sequence-indexed rings (held seqs sit in the retransmit
        #: window just above the delivery cursor, so ``seq & mask``
        #: addressing is collision-free in practice)
        self._held: Dict[Tuple[int, int], SeqRing] = {}
        #: (src, dst, seq) -> retransmit timer handle (cancellable)
        self._timers: Dict[Tuple[int, int, int], object] = {}

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Stamp, remember, inject; arms the first retransmit timer."""
        if msg.src == msg.dst:
            self.net.send(msg)
            return
        seq = self._next_seq[msg.src][msg.dst]
        self._next_seq[msg.src][msg.dst] = seq + 1
        msg.seq = seq
        self.tstats.data_sent += 1
        self.net.send(msg)
        self._arm(msg, self.spec.rto_us, attempts=0)

    def _arm(self, msg: Message, rto_us: float, attempts: int) -> None:
        key = (msg.src, msg.dst, msg.seq)
        self._timers[key] = self.engine.schedule(
            rto_us, self._on_timeout, msg, rto_us, attempts
        )

    def _on_timeout(self, msg: Message, rto_us: float, attempts: int) -> None:
        key = (msg.src, msg.dst, msg.seq)
        if key not in self._timers:
            return  # acked in the same instant; timer raced the ack
        self.tstats.timeouts += 1
        if attempts + 1 > self.spec.max_retransmits:
            raise TransportError(
                f"message {msg.mtype} {msg.src}->{msg.dst} seq={msg.seq} "
                f"unacked after {attempts} retransmits "
                f"(rto reached {rto_us:.0f}us)"
            )
        self.tstats.retransmits += 1
        self.net.send(msg)
        self._arm(
            msg,
            rto_us * self.spec.rto_backoff + self.plan.rto_jitter_us(),
            attempts + 1,
        )

    # ------------------------------------------------------------------
    # receiver side (wire-arrival callback installed on the Network)
    # ------------------------------------------------------------------
    def on_wire(self, msg: Message) -> None:
        if msg.mtype == ACK_MTYPE:
            timer = self._timers.pop(msg.payload, None)
            if timer is not None:
                timer.cancel()
            return
        if msg.src == msg.dst:
            # Local channel: never sequenced, never acked.
            self.m.deliver_to_node(msg)
            return
        src, dst, seq = msg.src, msg.dst, msg.seq
        self._ack(msg)
        expect = self._expect[src][dst]
        if seq < expect:
            self.tstats.dup_suppressed += 1
            return
        link = (src, dst)
        held = self._held.get(link)
        if seq > expect:
            if held is None:
                held = self._held[link] = SeqRing()
            if held.put(seq, msg):
                self.tstats.reorder_buffered += 1
            else:
                self.tstats.dup_suppressed += 1
            return
        # In order: deliver, then drain anything the gap was holding.
        deliver = self.m.deliver_to_node
        deliver(msg)
        expect += 1
        if held:
            while expect in held:
                deliver(held.pop(expect))
                expect += 1
        self._expect[src][dst] = expect

    def _ack(self, msg: Message) -> None:
        """Ack every sequenced arrival (duplicates included: the sender
        may be retransmitting precisely because our first ack died)."""
        self.tstats.acks_sent += 1
        self.net.send(
            Message(
                src=msg.dst,
                dst=msg.src,
                mtype=ACK_MTYPE,
                size_bytes=control_size(),
                payload=(msg.src, msg.dst, msg.seq),
                handle_cost_us=0.0,
            )
        )

    # ------------------------------------------------------------------
    # Network facade bits some tests/diagnostics rely on
    # ------------------------------------------------------------------
    def nic_free_at(self, node: int) -> float:
        return self.net.nic_free_at(node)

    @property
    def in_flight(self) -> int:
        """Unacked sequenced messages (diagnostics/tests)."""
        return len(self._timers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReliableTransport unacked={self.in_flight}>"
