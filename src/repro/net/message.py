"""Protocol messages.

A message carries its own handler cost (set by the sending protocol
code, since the sender knows the message semantics) and an optional
in-simulation ``reply_to`` future used to correlate request/response
pairs without explicit transaction tables -- the future object travels
with the request, comes back inside the reply payload, and is resolved
by the receiver-side handler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.process import Future

#: bytes of header on every message (routing, type, block id)
HEADER_BYTES = 16
#: payload bytes of a plain control message (request, ack, invalidation)
CONTROL_BYTES = 8


@dataclass(slots=True)
class Message:
    """One network message."""

    src: int
    dst: int
    mtype: str
    size_bytes: int
    block: int = -1
    payload: Any = None
    #: CPU time the receiver's handler consumes
    handle_cost_us: float = 3.0
    #: future resolved by the receiver (request/response correlation)
    reply_to: Optional[Future] = None
    #: per-(src, dst)-link sequence number stamped by the reliable
    #: transport (repro.net.reliable); -1 on the trusted legacy wire
    seq: int = -1

    def __post_init__(self) -> None:
        if self.size_bytes < HEADER_BYTES:
            self.size_bytes = HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Msg {self.mtype} {self.src}->{self.dst} "
            f"block={self.block} {self.size_bytes}B>"
        )


def control_size() -> int:
    """Wire size of a small control message."""
    return HEADER_BYTES + CONTROL_BYTES


def data_size(granularity: int) -> int:
    """Wire size of a whole-block data message."""
    return HEADER_BYTES + granularity


def notice_size(n_notices: int) -> int:
    """Wire size of a write-notice batch (8 bytes per notice)."""
    return HEADER_BYTES + 8 * n_notices
