"""The interconnect: latency model, sender-NIC serialization, topology.

Latency model (fit to the paper's Section 3 microbenchmark)::

    arrival = depart + base(size) + per_byte * size + hops * hop_cost

where ``depart`` respects sender-NIC occupancy: a node injecting
back-to-back messages serializes them at the NIC streaming rate
(~17 MB/s for large transfers).  Receiver-side notification delay is
NOT part of the network -- the destination :class:`~repro.cluster.node.Node`
adds it according to the polling/interrupt mechanism.

Messages from a node to itself (the home happens to be local) bypass
the wire entirely: they are delivered after a small fixed delay and are
counted separately (``stats.local_msgs``), never as network traffic.
"""

from __future__ import annotations

from typing import Callable, List

from repro.cluster.config import MachineParams, hops_between
from repro.net.message import Message
from repro.sim.engine import Engine

#: delivery delay for node-local protocol transactions (a function call
#: plus queue manipulation, not a wire crossing)
LOCAL_DELIVERY_US = 0.5


class Network:
    """Connects the nodes; delivers messages with modeled latency."""

    def __init__(
        self,
        engine: Engine,
        params: MachineParams,
        stats,
        deliver: Callable[[Message], None],
    ):
        self.engine = engine
        self.params = params
        self.stats = stats
        self._deliver = deliver
        #: per-node time at which the NIC becomes free to inject
        self._nic_free: List[float] = [0.0] * params.n_nodes
        #: hop latency precomputed per (src, dst) -- the topology is
        #: static, so no reason to recompute switch distances per send
        n = params.n_nodes
        self._hop_us: List[List[float]] = [
            [hops_between(a, b) * params.switch_hop_us for b in range(n)]
            for a in range(n)
        ]

    def send(self, msg: Message) -> None:
        """Inject a message; schedules its delivery at the destination."""
        if not (0 <= msg.src < self.params.n_nodes):
            raise ValueError(f"bad src {msg.src}")
        if not (0 <= msg.dst < self.params.n_nodes):
            raise ValueError(f"bad dst {msg.dst}")

        now = self.engine.now
        if msg.src == msg.dst:
            self.stats.local_msgs += 1
            self.engine.post(LOCAL_DELIVERY_US, self._deliver, msg)
            return

        self.stats.record_message(msg.mtype, msg.size_bytes)

        p = self.params
        start = max(now, self._nic_free[msg.src])
        self._nic_free[msg.src] = start + p.nic_occupancy_us(msg.size_bytes)
        latency = p.one_way_latency_us(msg.size_bytes)
        latency += self._hop_us[msg.src][msg.dst]
        self.engine.post(start + latency - now, self._deliver, msg)

    def nic_free_at(self, node: int) -> float:
        """When the node's NIC can next inject (diagnostics/tests)."""
        return self._nic_free[node]
