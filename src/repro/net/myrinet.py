"""The interconnect: latency model, sender-NIC serialization, topology,
and (optionally) seeded fault injection.

Latency model (fit to the paper's Section 3 microbenchmark)::

    arrival = depart + base(size) + per_byte * size + hops * hop_cost

where ``depart`` respects sender-NIC occupancy: a node injecting
back-to-back messages serializes them at the NIC streaming rate
(~17 MB/s for large transfers).  Receiver-side notification delay is
NOT part of the network -- the destination :class:`~repro.cluster.node.Node`
adds it according to the polling/interrupt mechanism.

Messages from a node to itself (the home happens to be local) bypass
the wire entirely: they are delivered after a small fixed delay and are
counted separately (``stats.local_msgs``), never as network traffic.

Ordering semantics (audited; see tests/test_network.py)
-------------------------------------------------------
The raw wire makes **no cross-message ordering guarantees**:

* On one (src, dst) link, departures are NIC-serialized but arrival
  order can still invert because latency is size-dependent -- a small
  control message injected right behind a 4 KB data message arrives
  first (the audit found this happens routinely in real cells, e.g.
  ocean/sc/4096).
* A node-local message skips the NIC queue entirely (it is a function
  call, not a wire crossing), so it can overtake remote messages the
  same sender injected earlier.  Intra-node messages do deliver FIFO
  among themselves (equal delay + engine FIFO tie-break).

Both behaviors are *intended*: the protocols were audited to tolerate
them on the trusted wire, and the tests pin them.  Per-link FIFO and
exactly-once delivery become real guarantees only under the reliable
transport (:mod:`repro.net.reliable`), which resequences via per-link
sequence numbers whenever a :class:`~repro.net.faultplan.FaultPlan` is
active.

Fault injection
---------------
With a fault plan installed, every remote transmission consults
:meth:`FaultPlan.decide <repro.net.faultplan.FaultPlan.decide>`: the
message may be dropped after occupying the sender NIC (lost on the
wire), duplicated (a second arrival trails the first), or delayed
(bounded reorder).  Per-link latency inflation and receiver stall
windows stretch the arrival time.  Dropped and duplicated copies are
still recorded as wire traffic -- they were injected.  Local messages
are never perturbed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.config import MachineParams, hops_between, switch_of
from repro.net.faultplan import FaultPlan
from repro.net.message import Message
from repro.sim.engine import Engine

#: delivery delay for node-local protocol transactions (a function call
#: plus queue manipulation, not a wire crossing)
LOCAL_DELIVERY_US = 0.5


class Network:
    """Connects the nodes; delivers messages with modeled latency."""

    def __init__(
        self,
        engine: Engine,
        params: MachineParams,
        stats,
        deliver: Callable[[Message], None],
        faults: Optional[FaultPlan] = None,
    ):
        self.engine = engine
        self.params = params
        self.stats = stats
        self._deliver = deliver
        #: fault plan; None = the trusted wire (zero overhead)
        self._faults = faults
        #: per-node time at which the NIC becomes free to inject
        self._nic_free: List[float] = [0.0] * params.n_nodes
        #: hop latency precomputed per (src switch, dst switch) -- the
        #: topology is static, so no reason to recompute switch
        #: distances per send.  Indexing by switch keeps the table
        #: O((N/6)^2) instead of O(N^2): a 1024-node machine needs a
        #: 171x171 table, not a million-entry one.
        n = params.n_nodes
        self._switch: List[int] = [switch_of(a) for a in range(n)]
        n_switches = self._switch[-1] + 1 if n else 0
        self._hop_us: List[List[float]] = [
            # Representative hosts a*6 / b*6: hop count is a function
            # of the switch pair only.
            [hops_between(a * 6, b * 6, n) * params.switch_hop_us
             for b in range(n_switches)]
            for a in range(n_switches)
        ]
        #: per-size (latency, occupancy) -- both are pure functions of
        #: size and the static machine params, and a cell only ever sees
        #: a handful of distinct message sizes (control sizes, the
        #: granularity, diff sizes), so the cache stays tiny
        self._cost_by_size: Dict[int, Tuple[float, float]] = {}

    def send(self, msg: Message) -> None:
        """Inject a message; schedules its delivery at the destination."""
        if not (0 <= msg.src < self.params.n_nodes):
            raise ValueError(f"bad src {msg.src}")
        if not (0 <= msg.dst < self.params.n_nodes):
            raise ValueError(f"bad dst {msg.dst}")

        now = self.engine.now
        if msg.src == msg.dst:
            self.stats.local_msgs += 1
            self.engine.post(LOCAL_DELIVERY_US, self._deliver, msg)
            return

        self.stats.record_message(msg.mtype, msg.size_bytes)

        size = msg.size_bytes
        cost = self._cost_by_size.get(size)
        if cost is None:
            p = self.params
            cost = (p.one_way_latency_us(size), p.nic_occupancy_us(size))
            self._cost_by_size[size] = cost
        start = max(now, self._nic_free[msg.src])
        self._nic_free[msg.src] = start + cost[1]
        sw = self._switch
        latency = cost[0] + self._hop_us[sw[msg.src]][sw[msg.dst]]
        if self._faults is not None:
            self._faulty_send(msg, start, latency)
            return
        self.engine.post(start + latency - now, self._deliver, msg)

    def _faulty_send(self, msg: Message, start: float, latency: float) -> None:
        """Perturbed delivery path; only runs under a fault plan."""
        plan = self._faults
        ts = self.stats.transport
        latency *= plan.link_factor(msg.src, msg.dst)
        decision = plan.decide(msg.src, msg.dst)
        extra = 0.0 if decision is None else decision.extra_delay_us
        if extra:
            ts.delay_injected += 1
        arrival = start + latency + extra
        stall = plan.stall_delay(msg.dst, arrival)
        if stall:
            ts.stall_delays += 1
            arrival += stall
        now = self.engine.now
        if decision is not None and decision.duplicate:
            ts.dup_injected += 1
            dup_at = arrival + decision.dup_delay_us
            self.engine.post(dup_at - now, self._deliver, msg)
        if decision is not None and decision.drop:
            ts.drops += 1
            return
        self.engine.post(arrival - now, self._deliver, msg)

    def set_deliver(self, deliver: Callable[[Message], None]) -> None:
        """Swap the wire-arrival callback (the Machine points it at the
        reliable transport when a fault plan is active)."""
        self._deliver = deliver

    def nic_free_at(self, node: int) -> float:
        """When the node's NIC can next inject (diagnostics/tests)."""
        return self._nic_free[node]
