"""Seeded, deterministic fault injection for the interconnect.

The paper's evaluation assumes a perfectly reliable Myrinet: zero loss,
no duplication, per-link FIFO.  A :class:`FaultSpec` describes how far
to depart from that ideal; a :class:`FaultPlan` is the runtime object
the :class:`~repro.net.myrinet.Network` consults on every injected
message.  Everything is drawn from one ``random.Random(seed)`` stream:

* construction-time draws (per-link latency factors, straggler choice,
  stall phases) happen in a fixed order, and
* per-transmission draws happen in engine event order, which is itself
  deterministic,

so a given ``(RunConfig, FaultSpec)`` pair is bit-reproducible -- the
same seed produces the same drops, the same duplicates, the same
delays, and therefore the same stats.  That is what lets chaos cells
live in the on-disk result cache: the spec is folded into the cache key
(see :func:`repro.exec.serialize.config_to_dict`) exactly like any
other configuration axis.

Fault model
-----------
``drop_prob``/``dup_prob``
    Per-transmission loss and duplication.  Retransmissions (from the
    reliable transport) are independent transmissions and roll again.
``reorder_prob``/``reorder_max_us``
    With probability ``reorder_prob`` a message takes an extra uniform
    ``(0, reorder_max_us]`` of latency -- bounded reorder: a delayed
    message can be overtaken by later traffic on the same link.
``link_inflation_max``
    Per-(src, dst)-link latency factor drawn once, uniform in
    ``[1, 1 + link_inflation_max]`` -- models persistently slow routes.
``stall_nodes``/``stall_period_us``/``stall_duration_us``
    ``stall_nodes`` straggler nodes (chosen by the seed) freeze their
    message *reception* for ``stall_duration_us`` once every
    ``stall_period_us`` (per-node phase offsets are drawn from the
    seed): arrivals during a window are held to its end.  Models GC
    pauses / OS jitter / an overloaded receiver.

Node-local messages (``src == dst``) never touch the wire and are never
perturbed.

The remaining knobs (``rto_us``, ``rto_backoff``, ``rto_jitter_us``,
``max_retransmits``) tune the reliable transport
(:mod:`repro.net.reliable`) that any faulty configuration runs under.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of an unreliable interconnect.

    Frozen and hashable so it can ride inside
    :class:`~repro.harness.experiment.RunConfig` (and hence inside
    result-cache keys).  ``FaultSpec()`` describes a *fault-free but
    untrusted* network: nothing is dropped, yet the reliable transport
    is still engaged (sequence numbers, acks, per-link FIFO
    resequencing).  ``faults=None`` on a config means the legacy
    trusted wire -- bit-identical to builds that predate chaos.
    """

    seed: int = 0
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_max_us: float = 500.0
    link_inflation_max: float = 0.0
    stall_nodes: int = 0
    stall_period_us: float = 0.0
    stall_duration_us: float = 0.0
    # ---- reliable-transport tuning (see docs/CHAOS.md) ---------------
    #: initial ack timeout; must comfortably exceed one round trip of
    #: the largest message or every data block retransmits spuriously
    rto_us: float = 2500.0
    #: exponential backoff factor applied per timeout
    rto_backoff: float = 2.0
    #: uniform jitter added to each backed-off timeout (desynchronizes
    #: retransmit storms)
    rto_jitter_us: float = 100.0
    #: give up (fail the run) after this many retransmits of one message
    max_retransmits: int = 30

    def validate(self) -> None:
        # 1.0 is legal: a total-blackout link is how the transport's
        # retransmit-exhaustion path gets exercised.
        for name in ("drop_prob", "dup_prob", "reorder_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.reorder_max_us < 0 or self.link_inflation_max < 0:
            raise ValueError("reorder_max_us/link_inflation_max must be >= 0")
        if self.stall_nodes < 0:
            raise ValueError("stall_nodes must be >= 0")
        if self.stall_nodes and self.stall_period_us <= 0:
            raise ValueError("stall_nodes requires stall_period_us > 0")
        if self.stall_duration_us < 0:
            raise ValueError("stall_duration_us must be >= 0")
        if self.stall_period_us > 0 and self.stall_duration_us >= self.stall_period_us:
            raise ValueError("stall_duration_us must be < stall_period_us")
        if self.rto_us <= 0 or self.rto_backoff < 1.0:
            raise ValueError("rto_us must be > 0 and rto_backoff >= 1.0")
        if self.max_retransmits < 1:
            raise ValueError("max_retransmits must be >= 1")

    def to_dict(self) -> Dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultSpec":
        return cls(**d)

    def label(self) -> str:
        """Compact suffix for run labels: the axes that are active."""
        parts = [f"s{self.seed}"]
        if self.drop_prob:
            parts.append(f"drop{self.drop_prob:g}")
        if self.dup_prob:
            parts.append(f"dup{self.dup_prob:g}")
        if self.reorder_prob:
            parts.append(f"ro{self.reorder_prob:g}")
        if self.link_inflation_max:
            parts.append(f"li{self.link_inflation_max:g}")
        if self.stall_nodes:
            parts.append(f"st{self.stall_nodes}")
        return "chaos[" + ",".join(parts) + "]"


@dataclass(frozen=True)
class WireDecision:
    """Outcome of the per-transmission draws for one injected message."""

    drop: bool
    duplicate: bool
    extra_delay_us: float
    dup_delay_us: float


class FaultPlan:
    """Runtime fault source for one simulation.

    One plan per :class:`~repro.cluster.machine.Machine`; never share a
    plan between machines (the PRNG stream is part of the run's
    determinism contract).  All per-transmission draws consume a fixed
    number of variates regardless of outcome, so the stream position
    depends only on how many decisions were made -- which the
    deterministic engine fixes.
    """

    def __init__(self, spec: FaultSpec, n_nodes: int):
        spec.validate()
        self.spec = spec
        self.n_nodes = n_nodes
        rng = random.Random(spec.seed)
        # Construction-time draws, fixed order: link factors first,
        # then straggler selection, then per-straggler phases.
        lim = spec.link_inflation_max
        self._link_factor: List[List[float]] = [
            [1.0 + rng.random() * lim for _dst in range(n_nodes)]
            for _src in range(n_nodes)
        ]
        k = min(spec.stall_nodes, n_nodes)
        stalled = sorted(rng.sample(range(n_nodes), k)) if k else []
        self._stall_phase: Dict[int, float] = {
            node: rng.random() * spec.stall_period_us for node in stalled
        }
        self._rng = rng
        self._active = (
            spec.drop_prob > 0
            or spec.dup_prob > 0
            or spec.reorder_prob > 0
        )

    # ------------------------------------------------------------------
    # per-transmission decisions (called by Network.send)
    # ------------------------------------------------------------------
    def decide(self, src: int, dst: int) -> Optional[WireDecision]:
        """Draw this transmission's fate; None when nothing fires.

        Exactly five variates are consumed per call whenever any
        probabilistic axis is enabled (none when all are zero), keeping
        the stream position a pure function of the decision count.
        """
        if not self._active:
            return None
        rng = self._rng
        u_drop = rng.random()
        u_dup = rng.random()
        u_reorder = rng.random()
        u_mag = rng.random()
        u_dupmag = rng.random()
        spec = self.spec
        drop = u_drop < spec.drop_prob
        duplicate = u_dup < spec.dup_prob
        extra = (
            u_mag * spec.reorder_max_us
            if u_reorder < spec.reorder_prob
            else 0.0
        )
        if not (drop or duplicate or extra):
            return None
        # A duplicate is a second copy trailing the first by a bounded,
        # strictly positive gap (equal arrival would just be a tie).
        dup_delay = 1.0 + u_dupmag * max(spec.reorder_max_us, 1.0)
        return WireDecision(drop, duplicate, extra, dup_delay)

    def link_factor(self, src: int, dst: int) -> float:
        """Persistent latency inflation for the (src, dst) route."""
        return self._link_factor[src][dst]

    def stall_delay(self, node: int, arrival_us: float) -> float:
        """Extra hold time if ``node`` is inside a stall window when a
        message would arrive; 0.0 otherwise."""
        phase = self._stall_phase.get(node)
        if phase is None:
            return 0.0
        spec = self.spec
        pos = (arrival_us - phase) % spec.stall_period_us
        if pos < spec.stall_duration_us:
            return spec.stall_duration_us - pos
        return 0.0

    def rto_jitter_us(self) -> float:
        """One jitter draw for a backed-off retransmit timeout."""
        if self.spec.rto_jitter_us <= 0.0:
            return 0.0
        return self._rng.random() * self.spec.rto_jitter_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {self.spec.label()} n={self.n_nodes}>"
