"""Discrete-event simulation engine.

This package is the bottom layer of the reproduction: a small,
deterministic, generator-based discrete-event engine in the style of
SimPy, specialized for the DSM cluster simulation.

Time is a float measured in **microseconds**, matching the units the
paper uses for all of its cost figures (message round trips, fault
exception cost, interrupt cost, synchronization handling time).

Public API:

* :class:`~repro.sim.engine.Engine` -- the event loop.
* :class:`~repro.sim.process.Process` -- a generator-based process.
* :class:`~repro.sim.process.Future` -- a one-shot completion token.
* :class:`~repro.sim.process.CountdownLatch` -- resolves after *n* hits
  (used to collect invalidation acknowledgements and diff acks).
* :class:`~repro.sim.process.Signal` -- broadcast wakeup for many waiters.
* :class:`~repro.sim.engine.SchedulerPolicy` /
  :class:`~repro.sim.engine.DefaultPolicy` -- pluggable choice of which
  ready event dispatches next (the model-checking hook).
"""

from repro.sim.engine import (
    DefaultPolicy,
    Engine,
    ScheduledEvent,
    SchedulerPolicy,
    SimulationError,
)
from repro.sim.process import (
    CountdownLatch,
    Future,
    Process,
    ProcessCrashed,
    Signal,
)

__all__ = [
    "Engine",
    "ScheduledEvent",
    "SimulationError",
    "SchedulerPolicy",
    "DefaultPolicy",
    "Process",
    "Future",
    "CountdownLatch",
    "Signal",
    "ProcessCrashed",
]
