"""The discrete-event loop.

The engine maintains a priority queue of ``(time, sequence, callback)``
entries.  Ties in time are broken by insertion order (the ``sequence``
counter), which makes every simulation fully deterministic: two runs of
the same configuration produce bit-identical event orderings, fault
counts, and timings.  Determinism is essential for the reproduction --
the paper's tables are exact fault counts, and we want our own tables to
be exactly repeatable.

Performance notes
-----------------
The event loop is the hottest code in the repository -- every message,
sleep, and future resolution passes through it -- so it is written for
CPython speed at the cost of some repetition:

* Queue entries are plain ``(time, seq, handle, fn, args)`` tuples
  rather than rich-comparison objects.  Tuple comparison is a single C
  call, and because ``seq`` is unique the comparison never reaches the
  third element, so nothing on the hot path needs ``__lt__``.
* :meth:`post` is :meth:`schedule` without the cancellation handle.
  Nothing inside the simulator ever cancels (futures resolve exactly
  once, messages always arrive), so the internal callers avoid one
  object allocation per event; the ``handle`` slot of their entries is
  ``None``.
* Zero-delay events (the overwhelmingly common case: future
  resolutions, process kicks, local deliveries) skip the heap entirely
  and go through a FIFO deque.  Within one call to :meth:`run`,
  simulation time never decreases, so the deque stays sorted by
  ``(time, seq)`` and a two-way tuple compare against the heap head
  merges the two lanes in exactly the order a single heap would have
  produced.  (``schedule``/``post`` still verify the invariant and fall
  back to the heap, so pathological ``run(until=past)`` uses stay
  correct.)
* :meth:`run` keeps the queues and the event counter in locals and
  writes the counter back once, in a ``finally``.

Controllable scheduling
-----------------------
For model checking (``repro.mc``) the choice of *which* ready event
runs next can be delegated to a :class:`SchedulerPolicy` installed via
:meth:`Engine.set_policy`.  With a policy installed, :meth:`Engine.run`
switches to a slower loop that snapshots the ready set
(:meth:`Engine.ready_events`), asks the policy to choose, and dispatches
the chosen entry wherever it sits in either lane.  Without a policy
(the default, and every production run) the fast two-lane merge above
is untouched, and :class:`DefaultPolicy` is written to reproduce that
merge order exactly -- one event at a time, lowest ``(time, seq)``
first -- so installing it changes no schedules.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional, Tuple

#: a queued callback: (time, seq, cancellation handle or None, fn, args)
_Entry = Tuple[float, int, Optional["ScheduledEvent"], Callable[..., Any], tuple]


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside the simulation (deadlock,
    event-budget exhaustion, scheduling into the past)."""


#: The engine currently inside :meth:`Engine.run` in this process
#: (``None`` between runs).  Exists for asynchronous interruption: a
#: signal handler must not raise -- if the signal lands in a frame that
#: discards exceptions (a GC callback, a ``__del__``, the unraisable
#: hook's own formatting code) the raise is silently lost or escapes
#: through unrelated machinery.  A handler instead looks up the active
#: engine and calls :meth:`Engine.interrupt`; the event loop then
#: raises from its own dispatch frame, which always propagates to
#: whoever called ``run()``.
_ACTIVE: Optional["Engine"] = None


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is implemented by flagging, not by removing from the
    heap (removal from the middle of a binary heap is O(n)); the event
    loop skips flagged entries when it pops them.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.3f} seq={self.seq} {state} {self.fn!r}>"


def _entry_live(entry: _Entry) -> bool:
    """True unless the entry's cancellation handle has been flagged."""
    ev = entry[2]
    return ev is None or not ev.cancelled


def _entry_key(entry: _Entry) -> Tuple[float, int]:
    return (entry[0], entry[1])


class SchedulerPolicy:
    """Chooses which ready event the engine dispatches next.

    Installed with :meth:`Engine.set_policy`; the engine then calls
    :meth:`choose` once per dispatch with the full ready set (every
    queued, non-cancelled entry, sorted by ``(time, seq)``) and runs
    the returned entry.  ``choose`` must return one of the entries it
    was given.  After the callback has run, :meth:`executed` is called
    with the same entry -- the window between the two calls brackets
    everything the event did (new events it scheduled carry sequence
    numbers from the :attr:`Engine.next_seq` watermarks around the
    dispatch), which is what replay-based exploration builds on.
    """

    def choose(self, ready: "list[_Entry]") -> _Entry:
        raise NotImplementedError

    def executed(self, entry: _Entry) -> None:
        """Called after the chosen entry's callback has returned."""


class DefaultPolicy(SchedulerPolicy):
    """Reproduces the engine's native order: lowest ``(time, seq)``.

    ``ready_events`` is sorted, sequence numbers are unique, and the
    two-lane merge in the policy-free loop also always dispatches the
    globally lowest ``(time, seq)`` entry -- so runs under this policy
    are bit-identical to runs with no policy at all (the fingerprint
    matrix in ``tests/test_mc.py`` pins this).
    """

    def choose(self, ready: "list[_Entry]") -> _Entry:
        return ready[0]


class Engine:
    """Deterministic discrete-event loop with time in microseconds."""

    def __init__(self, *, max_events: int = 200_000_000):
        self._now: float = 0.0
        self._seq: int = 0
        self._queue: list[_Entry] = []
        self._fifo: deque[_Entry] = deque()
        self._max_events = max_events
        self._events_run = 0
        self._running = False
        self._policy: Optional[SchedulerPolicy] = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._events_run

    @property
    def next_seq(self) -> int:
        """Sequence number the next scheduled event will receive.

        Sequence assignment is deterministic given identical dispatch
        choices, so the watermark before/after a dispatch identifies
        exactly the events that dispatch created -- the mc scheduler
        uses this to track event parentage across replays.
        """
        return self._seq

    # ------------------------------------------------------------------
    # controllable scheduling (model checking)
    # ------------------------------------------------------------------
    def set_policy(self, policy: Optional[SchedulerPolicy]) -> None:
        """Install (or, with ``None``, remove) a scheduling policy.

        Not legal while :meth:`run` is executing.
        """
        if self._running:
            raise SimulationError("cannot change policy while running")
        self._policy = policy

    @property
    def policy(self) -> Optional[SchedulerPolicy]:
        return self._policy

    def ready_events(self) -> "list[_Entry]":
        """Snapshot of queued, non-cancelled entries, sorted by (time, seq).

        The returned list is fresh; mutating it does not affect the
        engine.  The entries themselves are the engine's live tuples --
        a :class:`SchedulerPolicy` hands one back from ``choose``.
        """
        entries = [e for e in self._fifo if _entry_live(e)]
        entries.extend(e for e in self._queue if _entry_live(e))
        entries.sort(key=_entry_key)
        return entries

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`schedule` without a cancellation handle.

        The internal fast path: one tuple, no event object.  Use it
        whenever the caller never cancels (which is everything inside
        the simulator).  Ordering is identical to ``schedule``.
        """
        now = self._now
        seq = self._seq
        if delay == 0.0:
            fifo = self._fifo
            if not fifo or fifo[-1][0] <= now:
                self._seq = seq + 1
                fifo.append((now, seq, None, fn, args))
                return
            time = now
        elif delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        else:
            time = now + delay
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, None, fn, args))

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all callbacks already scheduled for the current instant
        (FIFO within an instant).
        """
        now = self._now
        seq = self._seq
        if delay == 0.0:
            fifo = self._fifo
            if not fifo or fifo[-1][0] <= now:
                self._seq = seq + 1
                ev = ScheduledEvent(now, seq, fn, args)
                fifo.append((now, seq, ev, fn, args))
                return ev
            # Time moved backward under the deque (run(until=past));
            # keep the fast lane sorted by routing through the heap.
            time = now
        elif delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        else:
            time = now + delay
        self._seq = seq + 1
        ev = ScheduledEvent(time, seq, fn, args)
        heapq.heappush(self._queue, (time, seq, ev, fn, args))
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at an absolute simulation time.

        The comparison happens in absolute time: a ``time`` at -- or,
        through float arithmetic dust, a hair before -- the current
        instant is clamped to *now* and runs FIFO after the callbacks
        already scheduled for this instant, exactly like
        ``schedule(0.0, ...)``.  (Routing through ``schedule(time - now,
        ...)`` used to raise :class:`SimulationError` when the
        subtraction of two nearly equal floats went negative.)
        """
        now = self._now
        if time <= now:
            return self.schedule(0.0, fn, *args)
        seq = self._seq
        self._seq = seq + 1
        ev = ScheduledEvent(time, seq, fn, args)
        heapq.heappush(self._queue, (time, seq, ev, fn, args))
        return ev

    def interrupt(self, exc: BaseException) -> None:
        """Make the event loop raise ``exc`` at its next dispatch.

        Async-signal-safe: the only mutation is a single ``appendleft``
        on the zero-delay deque (atomic under the GIL), so this may be
        called from a signal handler while :meth:`run` is mid-event.
        The poison entry carries ``seq=-1``, sorting ahead of every
        real event at the current instant, so nothing else runs first.
        """

        def _raise() -> None:
            raise exc

        self._fifo.appendleft((self._now, -1, None, _raise, ()))

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or until time ``until``).

        Returns the final simulation time.  Raises
        :class:`SimulationError` if the event budget is exhausted, which
        almost always indicates a protocol livelock.
        """
        global _ACTIVE
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        if self._policy is not None:
            return self._run_policy(until)
        self._running = True
        prev_active = _ACTIVE
        _ACTIVE = self
        queue = self._queue
        fifo = self._fifo
        pop = heapq.heappop
        popleft = fifo.popleft
        events_run = self._events_run
        max_events = self._max_events
        try:
            if until is None:
                while True:
                    if fifo:
                        if queue and queue[0] < fifo[0]:
                            entry = pop(queue)
                        else:
                            # Batched same-instant dispatch: drain the
                            # FIFO run at this timestamp without
                            # re-arbitrating the lanes per event.
                            # During the drain every new entry lands
                            # either in the heap with time > tnow or at
                            # the FIFO tail with time == tnow.  Only a
                            # heap entry with (time, seq) below a FIFO
                            # entry at tnow could preempt the run, and
                            # no such entry can appear after the drain
                            # starts -- so comparing against the heap
                            # head captured here reproduces exactly the
                            # order the per-event merge would have
                            # produced.
                            entry = popleft()
                            tnow = entry[0]
                            qh = queue[0] if queue else None
                            while True:
                                ev = entry[2]
                                if ev is None or not ev.cancelled:
                                    self._now = tnow
                                    events_run += 1
                                    if events_run > max_events:
                                        raise SimulationError(
                                            f"event budget exhausted "
                                            f"({max_events} events); "
                                            "likely protocol livelock"
                                        )
                                    entry[3](*entry[4])
                                if fifo:
                                    entry = fifo[0]
                                    if entry[0] == tnow and (
                                        qh is None or entry < qh
                                    ):
                                        popleft()
                                        continue
                                break
                            continue
                    elif queue:
                        entry = pop(queue)
                    else:
                        break
                    ev = entry[2]
                    if ev is not None and ev.cancelled:
                        continue
                    self._now = entry[0]
                    events_run += 1
                    if events_run > max_events:
                        raise SimulationError(
                            f"event budget exhausted ({max_events} events); "
                            "likely protocol livelock"
                        )
                    entry[3](*entry[4])
                return self._now
            while True:
                if fifo:
                    if queue and queue[0] < fifo[0]:
                        entry = pop(queue)
                    else:
                        entry = popleft()
                elif queue:
                    entry = pop(queue)
                else:
                    break
                ev = entry[2]
                if ev is not None and ev.cancelled:
                    continue
                if entry[0] > until:
                    # Put it back; we stopped early.
                    heapq.heappush(queue, entry)
                    self._now = until
                    return until
                self._now = entry[0]
                events_run += 1
                if events_run > max_events:
                    raise SimulationError(
                        f"event budget exhausted ({max_events} events); "
                        "likely protocol livelock"
                    )
                entry[3](*entry[4])
            if until > self._now:
                self._now = until
            return self._now
        finally:
            _ACTIVE = prev_active
            self._events_run = events_run
            self._running = False

    def _remove_entry(self, entry: _Entry) -> None:
        """Remove one live entry from whichever lane holds it.

        Sequence numbers are unique, so tuple comparison in ``remove``
        short-circuits at element 1 for every non-matching entry and
        finds the match by identity -- event args are never compared.
        """
        try:
            self._fifo.remove(entry)
        except ValueError:
            self._queue.remove(entry)
            heapq.heapify(self._queue)

    def _run_policy(self, until: Optional[float]) -> float:
        """The policy-driven event loop (see :class:`SchedulerPolicy`).

        Deliberately not the fast path: it re-snapshots and re-sorts
        the ready set every dispatch so a policy sees all of its
        options.  Time is set to the chosen entry's timestamp but never
        moved backwards -- a policy that reorders events across
        timestamps keeps the clock monotonic.
        """
        global _ACTIVE
        self._running = True
        prev_active = _ACTIVE
        _ACTIVE = self
        policy = self._policy
        try:
            while True:
                ready = self.ready_events()
                if not ready:
                    break
                entry = policy.choose(ready)
                if until is not None and entry[0] > until:
                    self._now = until
                    return until
                self._remove_entry(entry)
                if entry[0] > self._now:
                    self._now = entry[0]
                self._events_run += 1
                if self._events_run > self._max_events:
                    raise SimulationError(
                        f"event budget exhausted ({self._max_events} events); "
                        "likely protocol livelock"
                    )
                entry[3](*entry[4])
                policy.executed(entry)
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            _ACTIVE = prev_active
            self._running = False

    def step(self) -> bool:
        """Run a single event in native (time, seq) order.

        Returns False when the queue is empty (the call is then a
        no-op: time does not advance and nothing is consumed).
        Installed policies are not consulted -- ``step`` is a debugging
        aid for walking the native schedule.
        """
        queue = self._queue
        fifo = self._fifo
        while queue or fifo:
            if fifo and not (queue and queue[0] < fifo[0]):
                entry = fifo.popleft()
            else:
                entry = heapq.heappop(queue)
            ev = entry[2]
            if ev is not None and ev.cancelled:
                continue
            self._now = entry[0]
            self._events_run += 1
            entry[3](*entry[4])
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of queued events that will actually run.

        Cancellation is lazy (flagged entries stay in the lanes until
        popped), so this walks both lanes and skips tombstones rather
        than reporting raw lane lengths.  O(pending); diagnostics and
        the mc ready-set precondition, not the hot path.
        """
        n = 0
        for e in self._fifo:
            if _entry_live(e):
                n += 1
        for e in self._queue:
            if _entry_live(e):
                n += 1
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.3f}us pending={self.pending}>"
