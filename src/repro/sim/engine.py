"""The discrete-event loop.

The engine maintains a priority queue of ``(time, sequence, callback)``
entries.  Ties in time are broken by insertion order (the ``sequence``
counter), which makes every simulation fully deterministic: two runs of
the same configuration produce bit-identical event orderings, fault
counts, and timings.  Determinism is essential for the reproduction --
the paper's tables are exact fault counts, and we want our own tables to
be exactly repeatable.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside the simulation (deadlock,
    event-budget exhaustion, scheduling into the past)."""


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is implemented by flagging, not by removing from the
    heap (removal from the middle of a binary heap is O(n)); the event
    loop skips flagged entries when it pops them.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.3f} seq={self.seq} {state} {self.fn!r}>"


class Engine:
    """Deterministic discrete-event loop with time in microseconds."""

    def __init__(self, *, max_events: int = 200_000_000):
        self._now: float = 0.0
        self._seq: int = 0
        self._queue: list[ScheduledEvent] = []
        self._max_events = max_events
        self._events_run = 0
        self._running = False

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._events_run

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all callbacks already scheduled for the current instant
        (FIFO within an instant).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        ev = ScheduledEvent(self._now + delay, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(time - self._now, fn, *args)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or until time ``until``).

        Returns the final simulation time.  Raises
        :class:`SimulationError` if the event budget is exhausted, which
        almost always indicates a protocol livelock.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        try:
            queue = self._queue
            while queue:
                ev = heapq.heappop(queue)
                if ev.cancelled:
                    continue
                if until is not None and ev.time > until:
                    # Put it back; we stopped early.
                    heapq.heappush(queue, ev)
                    self._now = until
                    return self._now
                self._now = ev.time
                self._events_run += 1
                if self._events_run > self._max_events:
                    raise SimulationError(
                        f"event budget exhausted ({self._max_events} events); "
                        "likely protocol livelock"
                    )
                ev.fn(*ev.args)
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False

    def step(self) -> bool:
        """Run a single event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            ev = heapq.heappop(queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._events_run += 1
            ev.fn(*ev.args)
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.3f}us pending={len(self._queue)}>"
