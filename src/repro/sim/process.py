"""Generator-based processes and waitable primitives.

A :class:`Process` wraps a Python generator.  The generator *yields
effects* to the engine:

* a ``float``/``int`` -- sleep that many microseconds;
* a :class:`Future` -- suspend until it resolves; ``yield`` evaluates to
  the future's value;
* a :class:`CountdownLatch` -- suspend until the latch count reaches 0;
* a :class:`Signal` -- suspend until the next broadcast.

Sub-routines compose with ``yield from``, which is how the DSM runtime
nests "application issues region write" -> "access control faults" ->
"protocol sends request and waits for reply" without callback spaghetti.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.engine import Engine, SimulationError


class ProcessCrashed(SimulationError):
    """A process generator raised; the original traceback is chained."""


class Future:
    """One-shot completion token.

    A future may be awaited by any number of processes (``yield fut``)
    and by callbacks (:meth:`add_callback`).  Resolving twice is an
    error -- protocol replies must be delivered exactly once.
    """

    __slots__ = ("engine", "value", "done", "_waiters")

    def __init__(self, engine: Engine):
        self.engine = engine
        self.value: Any = None
        self.done = False
        self._waiters: list[Callable[[Any], None]] = []

    def resolve(self, value: Any = None) -> None:
        if self.done:
            raise SimulationError("future resolved twice")
        self.done = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            # Zero-delay schedule keeps resolution ordering FIFO and
            # avoids unbounded recursion through chains of futures.
            self.engine.post(0.0, w, value)

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        if self.done:
            self.engine.post(0.0, fn, self.value)
        else:
            self._waiters.append(fn)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Future done={self.done}>"


class CountdownLatch:
    """Resolves after :attr:`count` hits; used to gather N acks.

    The latch with ``count == 0`` is already resolved, so code that
    "invalidates all sharers and waits" works unchanged when the sharer
    set is empty.
    """

    __slots__ = ("engine", "count", "done", "_waiters")

    def __init__(self, engine: Engine, count: int):
        if count < 0:
            raise ValueError("latch count must be >= 0")
        self.engine = engine
        self.count = count
        self.done = count == 0
        self._waiters: list[Callable[[Any], None]] = []

    def hit(self) -> None:
        if self.done:
            raise SimulationError("latch hit after completion")
        self.count -= 1
        if self.count == 0:
            self.done = True
            waiters, self._waiters = self._waiters, []
            for w in waiters:
                self.engine.post(0.0, w, None)

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        if self.done:
            self.engine.post(0.0, fn, None)
        else:
            self._waiters.append(fn)


class Signal:
    """Broadcast wakeup: every process currently waiting is resumed.

    Unlike :class:`Future`, a signal can fire many times; a waiter only
    observes broadcasts that happen after it started waiting.
    """

    __slots__ = ("engine", "_waiters")

    def __init__(self, engine: Engine):
        self.engine = engine
        self._waiters: list[Callable[[Any], None]] = []

    def broadcast(self, value: Any = None) -> None:
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            self.engine.post(0.0, w, value)

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        self._waiters.append(fn)


#: Types a process may yield and wait on (besides numeric sleeps).
_WAITABLE_TYPES = (Future, CountdownLatch, Signal)


class Process:
    """A running generator inside the engine.

    The process starts on the next zero-delay tick after construction
    (not synchronously), so a batch of processes created at t=0 all
    begin in creation order.
    """

    __slots__ = ("engine", "name", "_gen", "finished", "result", "_completion")

    def __init__(self, engine: Engine, gen: Generator, name: str = "proc"):
        self.engine = engine
        self.name = name
        self._gen = gen
        self.finished = False
        self.result: Any = None
        self._completion: Optional[Future] = None
        engine.post(0.0, self._step, None)

    @property
    def completion(self) -> Future:
        """Future resolved (with the generator's return value) at exit."""
        if self._completion is None:
            self._completion = Future(self.engine)
            if self.finished:
                self._completion.resolve(self.result)
        return self._completion

    def _step(self, sendval: Any) -> None:
        # This method runs once per generator resumption -- one of the
        # hottest frames in the simulator -- so the effect dispatch is
        # inlined rather than delegated to a helper call.
        if self.finished:
            return
        try:
            effect = self._gen.send(sendval)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            if self._completion is not None:
                self._completion.resolve(stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - rewrap with process name
            self.finished = True
            raise ProcessCrashed(f"process {self.name!r} crashed: {exc!r}") from exc
        if type(effect) is float:
            if effect < 0.0:
                raise SimulationError(f"process {self.name!r} slept negative time {effect}")
            self.engine.post(effect, self._step, None)
        elif isinstance(effect, _WAITABLE_TYPES):
            effect.add_callback(self._step)
        else:
            self._dispatch(effect)

    def _dispatch(self, effect: Any) -> None:
        # Slow path: numeric effects that are not exactly ``float``
        # (ints, numpy scalars) and the unsupported-effect error.
        if isinstance(effect, (int, float)):
            if effect < 0:
                raise SimulationError(f"process {self.name!r} slept negative time {effect}")
            self.engine.post(float(effect), self._step, None)
        elif isinstance(effect, _WAITABLE_TYPES):
            effect.add_callback(self._step)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported effect {effect!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Process {self.name} finished={self.finished}>"


def all_of(engine: Engine, futures: Iterable[Future]) -> Future:
    """A future that resolves once every input future has resolved.

    Resolves with ``None`` immediately when the input is empty.
    """
    futures = list(futures)
    out = Future(engine)
    latch = CountdownLatch(engine, len(futures))
    if latch.done:
        out.resolve(None)
        return out
    latch.add_callback(lambda _: out.resolve(None))
    for f in futures:
        f.add_callback(lambda _v: latch.hit())
    return out
