"""Run-level counters.

Everything the paper's tables report is derived from these counters:

* read/write fault counts (Tables 3-13),
* message counts and data traffic in bytes (Table 15 discussion),
* diff/twin/invalidation/write-notice activity (Section 5.2 analysis),
* per-node time breakdown (compute, fault wait, lock wait, barrier
  wait, handler time) used for the synchronization-cost analysis.

Counters are plain integers/floats in dictionaries -- cheap to update
from the hot path and trivially aggregated.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, fields
from typing import Dict


@dataclass(slots=True)
class TransportStats:
    """Fault-injection and reliable-transport counters (chaos runs).

    Attached as ``stats.transport`` only when a fault plan is active
    (:meth:`Stats.enable_transport`), so fault-free runs serialize
    byte-identically to builds that predate the chaos layer.
    """

    #: transmissions the fault plan dropped on the wire
    drops: int = 0
    #: duplicate copies the fault plan injected
    dup_injected: int = 0
    #: transmissions given bounded-reorder extra latency
    delay_injected: int = 0
    #: arrivals held to the end of a receiver stall window
    stall_delays: int = 0
    #: sequenced first transmissions (excludes retransmits and acks)
    data_sent: int = 0
    #: ack-timeout expirations at the sender
    timeouts: int = 0
    #: retransmissions issued (timeouts that had budget left)
    retransmits: int = 0
    #: acks injected by receivers
    acks_sent: int = 0
    #: arrivals discarded as duplicates (fault-plan dups + retransmit
    #: copies whose original made it)
    dup_suppressed: int = 0
    #: arrivals buffered because an earlier sequence number was missing
    reorder_buffered: int = 0

    def to_dict(self) -> Dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict) -> "TransportStats":
        return cls(**d)


@dataclass(slots=True)
class NodeStats:
    """Per-node accounting.

    Slotted: fault counters are bumped from the access-fault hot path,
    and slot access is both faster and leaner than a per-instance dict.
    """

    node_id: int
    read_faults: int = 0
    write_faults: int = 0
    #: cheap node-local tag re-opens (home writing home memory, an
    #: owner re-opening after a release-time write-protect); the paper's
    #: fault tables do not count these
    local_reopens: int = 0
    compute_us: float = 0.0
    fault_wait_us: float = 0.0
    lock_wait_us: float = 0.0
    barrier_wait_us: float = 0.0
    handler_us: float = 0.0
    lock_acquires: int = 0
    barriers: int = 0

    @property
    def sync_wait_us(self) -> float:
        return self.lock_wait_us + self.barrier_wait_us

    def to_dict(self) -> Dict:
        # vars() does not work on slotted instances.
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict) -> "NodeStats":
        return cls(**d)


class Stats:
    """Aggregated counters for one simulation run."""

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self.nodes = [NodeStats(i) for i in range(n_nodes)]
        #: messages by type -> count
        self.msg_count: Counter = Counter()
        #: messages by type -> total bytes on the wire
        self.msg_bytes: Counter = Counter()
        #: node-local protocol "messages" (home == self); no wire traffic
        self.local_msgs: int = 0
        self.diffs_created: int = 0
        self.diff_bytes: int = 0
        self.diffs_applied: int = 0
        self.twins_created: int = 0
        self.invalidations: int = 0
        self.write_notices_sent: int = 0
        self.write_notices_applied: int = 0
        self.home_migrations: int = 0
        self.forwarded_requests: int = 0
        self.writebacks: int = 0
        #: wall-clock simulation time of the timed parallel section
        self.parallel_time_us: float = 0.0
        #: modeled single-node execution time of the same work
        self.sequential_time_us: float = 0.0

    # ------------------------------------------------------------------
    # chaos (fault injection + reliable transport)
    # ------------------------------------------------------------------
    def enable_transport(self) -> "TransportStats":
        """Attach the chaos counter block (idempotent).

        Deliberately *not* done in ``__init__``: ``to_dict`` dumps every
        instance attribute, and the stats of a fault-free run must stay
        byte-identical to pre-chaos builds.
        """
        if getattr(self, "transport", None) is None:
            self.transport = TransportStats()
        return self.transport

    # ------------------------------------------------------------------
    # recording helpers
    # ------------------------------------------------------------------
    def record_message(self, mtype: str, size_bytes: int) -> None:
        # Called once per wire message.  After the first message of a
        # type these are plain dict item ops (Counter.__missing__ never
        # fires), and the membership test keeps it that way.
        mc = self.msg_count
        if mtype in mc:
            mc[mtype] += 1
            self.msg_bytes[mtype] += size_bytes
        else:
            mc[mtype] = 1
            self.msg_bytes[mtype] = size_bytes

    def record_read_fault(self, node: int) -> None:
        self.nodes[node].read_faults += 1

    def record_write_fault(self, node: int) -> None:
        self.nodes[node].write_faults += 1

    def record_local_reopen(self, node: int) -> None:
        self.nodes[node].local_reopens += 1

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def read_faults(self) -> int:
        return sum(n.read_faults for n in self.nodes)

    @property
    def write_faults(self) -> int:
        return sum(n.write_faults for n in self.nodes)

    @property
    def local_reopens(self) -> int:
        return sum(n.local_reopens for n in self.nodes)

    @property
    def total_messages(self) -> int:
        return sum(self.msg_count.values())

    @property
    def total_traffic_bytes(self) -> int:
        return sum(self.msg_bytes.values())

    @property
    def data_traffic_bytes(self) -> int:
        """Bytes moved in data-carrying messages (block data and diffs)."""
        return sum(
            b
            for t, b in self.msg_bytes.items()
            if t
            in (
                "read_reply",
                "write_reply",
                "fetch_reply",
                "rread_reply",
                "own_reply",
                "data",
                "diff",
                "writeback",
            )
        )

    @property
    def speedup(self) -> float:
        if self.parallel_time_us <= 0:
            return 0.0
        return self.sequential_time_us / self.parallel_time_us

    @property
    def total_compute_us(self) -> float:
        return sum(n.compute_us for n in self.nodes)

    @property
    def total_lock_acquires(self) -> int:
        return sum(n.lock_acquires for n in self.nodes)

    # ------------------------------------------------------------------
    # serialization (repro.exec: results must cross process boundaries
    # and live in the on-disk cache without dragging Machine along)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable dump of every counter, per-node included."""
        out: Dict = {}
        for k, v in vars(self).items():
            if k == "nodes":
                out[k] = [n.to_dict() for n in self.nodes]
            elif isinstance(v, Counter):
                out[k] = dict(v)
            elif isinstance(v, TransportStats):
                out[k] = v.to_dict()
            else:
                out[k] = v
        return out

    @classmethod
    def from_dict(cls, d: Dict) -> "Stats":
        """Inverse of :meth:`to_dict`; tolerates counters added after a
        dump was written (they keep their constructor defaults)."""
        st = cls(d["n_nodes"])
        for k, v in d.items():
            if k == "nodes":
                st.nodes = [NodeStats.from_dict(nd) for nd in v]
            elif k == "transport":
                st.transport = TransportStats.from_dict(v)
            elif isinstance(getattr(st, k, None), Counter):
                setattr(st, k, Counter(v))
            elif k != "n_nodes":
                setattr(st, k, v)
        return st

    def summary(self) -> Dict[str, float]:
        """Flat dictionary used by the harness report writers.

        Chaos runs gain ``retransmits``/``timeouts``/``drops`` keys;
        fault-free summaries are unchanged.
        """
        transport = getattr(self, "transport", None)
        extra = (
            {
                "drops": transport.drops,
                "retransmits": transport.retransmits,
                "timeouts": transport.timeouts,
                "dup_suppressed": transport.dup_suppressed,
            }
            if transport is not None
            else {}
        )
        return {
            "read_faults": self.read_faults,
            "write_faults": self.write_faults,
            "local_reopens": self.local_reopens,
            "messages": self.total_messages,
            "traffic_bytes": self.total_traffic_bytes,
            "data_traffic_bytes": self.data_traffic_bytes,
            "diffs_created": self.diffs_created,
            "diff_bytes": self.diff_bytes,
            "twins_created": self.twins_created,
            "invalidations": self.invalidations,
            "write_notices": self.write_notices_sent,
            "lock_acquires": self.total_lock_acquires,
            "parallel_time_us": self.parallel_time_us,
            "sequential_time_us": self.sequential_time_us,
            "speedup": self.speedup,
            **extra,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Stats rf={self.read_faults} wf={self.write_faults} "
            f"msgs={self.total_messages} speedup={self.speedup:.2f}>"
        )


@dataclass(slots=True)
class MetadataStats:
    """End-of-run coherence-metadata accounting for one protocol.

    ``meta_bytes`` is the honest storage cost of the *block-scaling*
    coherence state the run actually kept: structures that exist per
    tracked block (directory entries, version tables, epochs, tardis
    timestamps) or whose width is O(N) (vector clocks, interval logs).
    ``dense_bytes`` is what the classic dense representation of the
    same state would have cost at this node count (full-bitmap
    copysets, 8-byte-per-component vector clocks).  The scaling report
    plots both per block: the dense curve is the O(N) wall the paper's
    protocols hit, the actual curve is what the capacity-honest
    representations (and tardis's O(1) timestamps) achieve.

    ``node_bytes`` holds the O(1)-width per-node / per-cached-copy
    state that is *not* part of the per-block story: tardis's single
    program-timestamp register per node and one lease scalar per
    cached copy (the analog of the access tag every protocol keeps
    uncounted), and SW-LRC's per-copy hint cache.  It is reported so
    nothing is hidden, but excluded from ``per_block`` -- dividing a
    per-node register by however many blocks a tiny app touched would
    say nothing about how metadata scales.

    Computed *after* the run by :func:`protocol_metadata` -- never
    attached to :class:`Stats` in ``__init__``, so stats-shas of
    existing runs stay byte-identical (same discipline as
    :class:`TransportStats`).
    """

    protocol: str
    n_nodes: int
    #: distinct shared blocks with a cached copy anywhere (denominator)
    blocks: int
    #: honest bytes of the block-scaling coherence metadata
    meta_bytes: int
    #: bytes a dense representation would need at this node count
    dense_bytes: int
    #: O(1)-width per-node / per-cached-copy state (informational)
    node_bytes: int
    #: named breakdown of ``meta_bytes`` (directory/clocks/notices/...)
    components: Dict[str, int]
    #: named breakdown of ``node_bytes`` (pts/leases/hints)
    node_components: Dict[str, int]

    @property
    def per_block(self) -> float:
        return self.meta_bytes / self.blocks if self.blocks else 0.0

    @property
    def per_block_dense(self) -> float:
        return self.dense_bytes / self.blocks if self.blocks else 0.0

    def to_dict(self) -> Dict:
        return {
            "protocol": self.protocol,
            "n_nodes": self.n_nodes,
            "blocks": self.blocks,
            "meta_bytes": self.meta_bytes,
            "dense_bytes": self.dense_bytes,
            "node_bytes": self.node_bytes,
            "per_block": self.per_block,
            "per_block_dense": self.per_block_dense,
            "components": dict(self.components),
            "node_components": dict(self.node_components),
        }


#: modeled widths of the individual metadata fields (bytes)
_OWNER_BYTES = 4
_TS_FIELD_BYTES = 8
_NOTICE_BYTES = 12          # block 4 + version 4 + owner 4
_VERSION_ENTRY_BYTES = 12   # block 4 + version 8
_HINT_ENTRY_BYTES = 16      # block 4 + version 8 + writer 4
_LEASE_ENTRY_BYTES = 16     # block 4 + lease end 8 (+ padding)
_EPOCH_ENTRY_BYTES = 12     # block 4 + epoch 8


def protocol_metadata(machine) -> MetadataStats:
    """Measure the coherence metadata a finished run left behind.

    This is the measured curve behind the scaling study's O(N)-vs-O(1)
    claim: directory copysets and interval/vector-clock state grow
    with the node count, tardis's per-block timestamps do not.
    """
    p = machine.protocol
    n = machine.params.n_nodes
    blocks = len({b for nd in machine.nodes for b, _ in nd.store.blocks()})
    components: Dict[str, int] = {}
    node_components: Dict[str, int] = {}
    dense = 0

    directory = getattr(p, "dir", None)
    if directory is not None:  # sc / dc
        from repro.core.sc import copyset_bytes

        components["directory"] = sum(
            _OWNER_BYTES + 1 + copyset_bytes(e.sharers)
            for e in directory.values()
        )
        # Dense classic directory: a presence bitmap over all N nodes
        # per entry, plus the owner field.
        dense += len(directory) * (_OWNER_BYTES + 1 + (n + 7) // 8)

    copyset = getattr(p, "copyset", None)
    if copyset is not None:  # erc
        components["copysets"] = sum(
            _OWNER_BYTES * len(s) for s in copyset.values()
        )
        dense += len(copyset) * (n + 7) // 8

    vt = getattr(p, "vt", None)
    if vt is not None:  # swlrc / hlrc: per-node vector clocks
        components["clocks"] = sum(c.bytes_used() for c in vt)
        dense += n * n * _TS_FIELD_BYTES
        ilog = p.ilog
        notices = sum(
            len(interval) for log in ilog._log for interval in log
        )
        components["interval_log"] = notices * _NOTICE_BYTES
        dense += notices * _NOTICE_BYTES

    version = getattr(p, "version", None)
    if version is not None:  # swlrc
        components["versions"] = sum(
            _VERSION_ENTRY_BYTES * len(d) for d in version
        )
        node_components["hints"] = sum(
            _HINT_ENTRY_BYTES * len(d) for d in p.hint
        )
        components["owner_table"] = (_OWNER_BYTES + 1) * len(p.owners)
        dense += components["versions"] + components["owner_table"]

    epochs = getattr(p, "_epoch", None)
    if epochs is not None:  # hlrc
        components["epochs"] = sum(
            _EPOCH_ENTRY_BYTES * len(d) for d in epochs
        )
        dense += components["epochs"]

    entries = getattr(p, "entries", None)
    if entries is not None:  # tardis: two timestamps + owner per block
        components["timestamps"] = (
            (2 * _TS_FIELD_BYTES + _OWNER_BYTES) * len(entries)
        )
        # Per-node program-timestamp register (one scalar each) and the
        # per-cached-copy lease expiry: O(1) width, not block-scaling.
        node_components["pts"] = _TS_FIELD_BYTES * n
        node_components["leases"] = sum(
            _LEASE_ENTRY_BYTES * len(d) for d in p.lease
        )
        # Tardis *is* its own dense form -- the per-block timestamps
        # have no N-dependent width to compress.
        dense += components["timestamps"]

    meta = sum(components.values())
    return MetadataStats(
        protocol=p.name,
        n_nodes=n,
        blocks=blocks,
        meta_bytes=meta,
        dense_bytes=dense,
        node_bytes=sum(node_components.values()),
        components=components,
        node_components=node_components,
    )


def memory_utilization(machine) -> Dict[str, float]:
    """Memory footprint of the protocol state at the end of a run --
    the Section 7 limitation "we have not examined the memory
    utilization of different protocol and granularity combinations".

    Returns bytes of cached block copies, twins, and the replication
    factor (total cached bytes / distinct shared bytes touched).
    """
    g = machine.params.granularity
    cached_blocks = sum(len(n.store) for n in machine.nodes)
    distinct = len({b for n in machine.nodes for b, _ in n.store.blocks()})
    twin_bytes = 0
    twins = getattr(machine.protocol, "twins", None)
    if twins is not None:
        twin_bytes = sum(len(t) for t in twins) * g
    cached_bytes = cached_blocks * g
    return {
        "cached_bytes": float(cached_bytes),
        "twin_bytes": float(twin_bytes),
        "distinct_bytes": float(distinct * g),
        "replication_factor": cached_bytes / (distinct * g) if distinct else 0.0,
    }
