"""Execution-time breakdown reporting.

The paper's analysis constantly reasons about *where the time goes* --
"more than 50% of the total execution time" in Barnes-Original's extra
locks, ">35% of the time spent on barrier synchronization" in
Barnes-Spatial under SC-64.  This module turns the per-node counters
into that breakdown: compute, fault stall, lock stall, barrier stall,
and handler (protocol CPU) time, normalized per node and averaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.stats.counters import Stats

#: breakdown categories, in display order
CATEGORIES = ("compute", "fault", "lock", "barrier", "handler", "other")


@dataclass
class Breakdown:
    """Average per-node time split for one run (fractions sum to 1)."""

    fractions: Dict[str, float]
    total_us: float

    def __getitem__(self, key: str) -> float:
        return self.fractions[key]

    def dominant(self) -> str:
        return max(self.fractions, key=self.fractions.get)

    def bar(self, width: int = 50) -> str:
        """Render as a labeled ASCII stacked bar."""
        symbols = {"compute": "=", "fault": "f", "lock": "L",
                   "barrier": "B", "handler": "h", "other": "."}
        out = []
        for cat in CATEGORIES:
            n = int(round(self.fractions[cat] * width))
            out.append(symbols[cat] * n)
        return "".join(out)[:width]


def breakdown(stats: Stats, nprocs: int = None) -> Breakdown:
    """Compute the average time breakdown over the participating nodes.

    ``other`` absorbs whatever the explicit counters do not cover
    (send overheads, tag changes, twin/diff compute charged as plain
    sleeps, residual wait).
    """
    n = nprocs if nprocs is not None else stats.n_nodes
    total = stats.parallel_time_us * n
    if total <= 0:
        raise ValueError("run has no parallel time")
    nodes = stats.nodes[:n]
    sums = {
        "compute": sum(x.compute_us for x in nodes),
        "fault": sum(x.fault_wait_us for x in nodes),
        "lock": sum(x.lock_wait_us for x in nodes),
        "barrier": sum(x.barrier_wait_us for x in nodes),
        "handler": sum(x.handler_us for x in nodes),
    }
    other = max(0.0, total - sum(sums.values()))
    sums["other"] = other
    denom = max(total, sum(sums.values()))
    return Breakdown(
        fractions={k: v / denom for k, v in sums.items()},
        total_us=total,
    )


def breakdown_table(rows: List[tuple]) -> str:
    """Format ``(label, Breakdown)`` rows as an aligned text table."""
    header = f"{'configuration':28s} " + " ".join(
        f"{c:>8s}" for c in CATEGORIES
    )
    lines = [header, "-" * len(header)]
    for label, bd in rows:
        cells = " ".join(f"{bd[c] * 100:7.1f}%" for c in CATEGORIES)
        lines.append(f"{label:28s} {cells}")
    return "\n".join(lines)
