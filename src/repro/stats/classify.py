"""Sharing-pattern classifier: derives the paper's Table 2 columns
from measured run data rather than from prior knowledge.

* **writers per block** -- instrumented at the memory system: the
  maximum number of distinct writers of any block over the run
  (single vs multiple);
* **spatial access granularity** -- the average contiguous run length
  of application region accesses (coarse if accesses average >= one
  page);
* **temporal synchronization granularity** -- average computation time
  between consecutive synchronization events per processor, compared
  against the platform's ~150 us minimum synchronization handling time
  (the paper classifies "fine" when the ratio is within ~1-2 orders of
  magnitude).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.cluster.config import PAGE_SIZE
from repro.hooks import Hooks

#: Section 5.2.1: minimum time to handle a synchronization event
MIN_SYNC_HANDLING_US = 150.0
#: "if average computation time between two consecutive synchronization
#: events is less than several milliseconds, the application is
#: classified as having fine-grain synchronization"
FINE_SYNC_THRESHOLD_US = 5000.0
#: accesses of at least half a page (median) count as coarse-grained
COARSE_ACCESS_BYTES = PAGE_SIZE / 2
#: a quarter of written blocks having >1 writer marks an application
#: as genuinely multiple-writer (below that it is boundary artifact)
MULTI_WRITER_FRACTION = 0.25


@dataclass
class AccessTrace(Hooks):
    """Aggregated access observations for one run.

    Implemented as an instrumentation hook (see
    :mod:`repro.hooks`): region shapes arrive through
    ``on_region`` and distinct writers per block through
    ``on_write_fault`` (every writer of a block faults on it at least
    once, so fault-level observation identifies all writers).
    """

    writers_per_block: Dict[int, Set[int]] = field(default_factory=dict)
    read_accesses: int = 0
    read_bytes: int = 0
    write_accesses: int = 0
    write_bytes: int = 0
    #: histogram of region-access sizes (for the median)
    sizes: Counter = field(default_factory=Counter)
    #: histogram of read-access sizes (communication-inducing accesses)
    read_sizes: Counter = field(default_factory=Counter)

    # -- hook interface -------------------------------------------------
    def on_region(self, node_id: int, addr: int, size: int, write: bool) -> None:
        self.record_region(size, write)

    def on_write_fault(self, node_id: int, block: int) -> None:
        self.record_write(node_id, block)

    # -- recording ------------------------------------------------------
    def record_write(self, node: int, block: int) -> None:
        self.writers_per_block.setdefault(block, set()).add(node)

    def record_region(self, size: int, write: bool) -> None:
        self.sizes[size] += 1
        if write:
            self.write_accesses += 1
            self.write_bytes += size
        else:
            self.read_sizes[size] += 1
            self.read_accesses += 1
            self.read_bytes += size

    @property
    def max_writers(self) -> int:
        if not self.writers_per_block:
            return 0
        return max(len(w) for w in self.writers_per_block.values())

    @property
    def multi_writer_fraction(self) -> float:
        """Fraction of written blocks with more than one writer.

        The paper's single/multiple classification describes the
        application's *dominant* logical pattern: Ocean-Rowwise is
        "single writer" even though its partition-boundary blocks see
        two writers (that incidental false sharing is the artifact the
        protocols fight, not the application's character).  A block-
        fraction threshold separates dominant multi-writer sharing from
        boundary artifacts."""
        if not self.writers_per_block:
            return 0.0
        multi = sum(1 for w in self.writers_per_block.values() if len(w) > 1)
        return multi / len(self.writers_per_block)

    @property
    def mean_access_bytes(self) -> float:
        n = self.read_accesses + self.write_accesses
        if n == 0:
            return 0.0
        return (self.read_bytes + self.write_bytes) / n

    @staticmethod
    def _median(hist: Counter) -> float:
        total = sum(hist.values())
        if total == 0:
            return 0.0
        mid = (total + 1) // 2
        seen = 0
        for size in sorted(hist):
            seen += hist[size]
            if seen >= mid:
                return float(size)
        return 0.0  # pragma: no cover

    @property
    def median_access_bytes(self) -> float:
        """Median region-access size (all accesses)."""
        return self._median(self.sizes)

    @property
    def median_read_bytes(self) -> float:
        """Median *read* size.  Spatial access granularity is judged by
        the reads: they are the accesses that pull remote data in, and
        they are what the paper's fragmentation analysis is about.  (A
        program's writes land in its own partition and show up in the
        writers-per-block column instead.)"""
        return self._median(self.read_sizes)


@dataclass
class Classification:
    """One application's measured Table 2 row."""

    writers: str            # 'single' | 'multiple'
    access_grain: str       # 'coarse' | 'fine'
    sync_grain: str         # 'coarse' | 'fine'
    comp_per_sync_us: float
    barriers: int
    lock_acquires: int


def classify(trace: AccessTrace, stats) -> Classification:
    """Derive the classification from a trace plus run stats."""
    # Multiple-writer when a substantial fraction of blocks have >1
    # writer OR some block is written by many processors (a heavily
    # shared structure like a tree's top levels counts even when large
    # single-writer arrays dilute the block fraction).  Exactly two
    # writers on a few blocks is the partition-boundary artifact of a
    # logically single-writer program (Ocean-Rowwise).
    writers = (
        "multiple"
        if (
            trace.multi_writer_fraction > MULTI_WRITER_FRACTION
            or trace.max_writers >= 4
        )
        else "single"
    )
    access = (
        "coarse" if trace.median_read_bytes >= COARSE_ACCESS_BYTES else "fine"
    )

    # The paper's "computation time / synch" column divides per-
    # processor compute time by the total number of synchronization
    # events: lock calls (all processors) plus barrier episodes --
    # e.g. LU: (73.41s/16)/64 barriers = 71.69 ms, and Barnes-Original
    # under the LRC protocols: (33.787s/16)/17,167 locks ~ 0.12 ms.
    per_proc_compute = stats.total_compute_us / max(1, stats.n_nodes)
    barrier_episodes = max((n.barriers for n in stats.nodes), default=0)
    sync_events = stats.total_lock_acquires + barrier_episodes
    if sync_events == 0:
        comp_per_sync = float("inf")
        sync = "coarse"
    else:
        comp_per_sync = per_proc_compute / sync_events
        sync = "fine" if comp_per_sync < FINE_SYNC_THRESHOLD_US else "coarse"

    return Classification(
        writers=writers,
        access_grain=access,
        sync_grain=sync,
        comp_per_sync_us=comp_per_sync,
        barriers=max((n.barriers for n in stats.nodes), default=0),
        lock_acquires=stats.total_lock_acquires,
    )


def install_trace(machine) -> AccessTrace:
    """Attach an AccessTrace to a machine before running a program."""
    trace = AccessTrace()
    machine.add_hooks(trace)
    return trace
