"""Event timeline recording and rendering.

An optional tracing facility for debugging protocol behaviour: attach a
:class:`Timeline` to a machine and every message send/delivery, fault,
and synchronization event is recorded with its simulated timestamp.
The ASCII renderer draws a per-node lane chart -- the tool we reach for
when a transfer chain or a lock hand-off looks wrong.

Recording is strictly opt-in (zero overhead otherwise) and bounded
(`max_events`), so it can be left attached to long runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class TimelineEvent:
    time_us: float
    node: int
    kind: str          # 'send' | 'recv' | 'fault' | 'sync'
    label: str


class Timeline:
    """Bounded in-memory event log for one machine."""

    def __init__(self, machine, max_events: int = 100_000,
                 message_filter: Optional[Callable[[str], bool]] = None):
        self.machine = machine
        self.max_events = max_events
        self.events: List[TimelineEvent] = []
        self.dropped = 0
        self._filter = message_filter
        self._install(machine)

    # ------------------------------------------------------------------
    def record(self, node: int, kind: str, label: str) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TimelineEvent(self.machine.engine.now, node, kind, label)
        )

    def _install(self, machine) -> None:
        # Wrap the machine's send seam (not network.send directly):
        # protocol/sync code routes through machine.send, which under a
        # fault plan is the reliable transport's entry point.
        orig_send = machine.send

        def traced_send(msg):
            if self._filter is None or self._filter(msg.mtype):
                self.record(msg.src, "send",
                            f"{msg.mtype}->{msg.dst} b={msg.block}")
            orig_send(msg)

        machine.send = traced_send

        orig_deliver = machine.network._deliver

        def traced_deliver(msg):
            if self._filter is None or self._filter(msg.mtype):
                self.record(msg.dst, "recv",
                            f"{msg.mtype}<-{msg.src} b={msg.block}")
            orig_deliver(msg)

        machine.network._deliver = traced_deliver

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def for_node(self, node: int) -> List[TimelineEvent]:
        return [e for e in self.events if e.node == node]

    def between(self, t0: float, t1: float) -> List[TimelineEvent]:
        return [e for e in self.events if t0 <= e.time_us <= t1]

    def matching(self, substring: str) -> List[TimelineEvent]:
        return [e for e in self.events if substring in e.label]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, t0: float = 0.0, t1: Optional[float] = None,
               nodes: Optional[List[int]] = None, limit: int = 200) -> str:
        """A chronological, node-laned text dump of the window."""
        if t1 is None:
            t1 = self.machine.engine.now
        if nodes is None:
            nodes = list(range(self.machine.params.n_nodes))
        lanes = {n: i for i, n in enumerate(nodes)}
        lines = [f"timeline {t0:.1f}..{t1:.1f}us "
                 f"({len(self.events)} events, {self.dropped} dropped)"]
        shown = 0
        for e in self.events:
            if not t0 <= e.time_us <= t1 or e.node not in lanes:
                continue
            if shown >= limit:
                lines.append(f"... (+{len(self.between(t0, t1)) - shown} more)")
                break
            indent = "  " * lanes[e.node]
            mark = {"send": ">", "recv": "<", "fault": "!", "sync": "#"}.get(
                e.kind, "?"
            )
            lines.append(
                f"{e.time_us:10.2f} {indent}[n{e.node}] {mark} {e.label}"
            )
            shown += 1
        return "\n".join(lines)

    def summary(self) -> dict:
        from collections import Counter

        kinds = Counter(e.kind for e in self.events)
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            **{f"kind_{k}": v for k, v in sorted(kinds.items())},
        }
