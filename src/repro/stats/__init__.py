"""Measurement infrastructure: counters, time breakdowns, speedups,
relative-efficiency statistics, and the sharing-pattern classifier.
"""

from repro.stats.counters import NodeStats, Stats
from repro.stats.classify import (
    AccessTrace,
    Classification,
    classify,
    install_trace,
)
from repro.stats.relative_efficiency import (
    harmonic_mean,
    hm_table,
    relative_efficiency,
)

__all__ = [
    "Stats",
    "NodeStats",
    "relative_efficiency",
    "harmonic_mean",
    "hm_table",
    "AccessTrace",
    "Classification",
    "classify",
    "install_trace",
]
