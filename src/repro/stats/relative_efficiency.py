"""Relative-efficiency statistics of Section 5.5 (Tables 16 and 17).

For an application ``a``, protocol ``p`` and granularity ``g``::

    RE(a, p, g) = speedup(a, p, g) / MAX(a)

where ``MAX(a)`` is the best speedup over all combinations for ``a``.
``HM`` is the harmonic mean of RE over the application set.  The paper
also reports, per protocol, the HM obtained when the *best granularity
is chosen per application* (``g_best``) and, per granularity, the HM
when the *best protocol is chosen per application* (``p_best``).

Table 17 repeats the computation but lets each (protocol, granularity)
cell pick the best-performing *version* of each application.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

#: speedups[(app, protocol, granularity)] = speedup
SpeedupTable = Mapping[Tuple[str, str, int], float]


def harmonic_mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("harmonic mean of empty sequence")
    if any(v <= 0 for v in vals):
        # A zero speedup would make HM zero; guard against bad input.
        raise ValueError("harmonic mean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def relative_efficiency(
    speedups: SpeedupTable,
    apps: Sequence[str],
    protocols: Sequence[str],
    granularities: Sequence[int],
) -> Dict[Tuple[str, str, int], float]:
    """RE(a,p,g) for every combination present in *speedups*."""
    out: Dict[Tuple[str, str, int], float] = {}
    for a in apps:
        best = max(
            speedups[(a, p, g)]
            for p in protocols
            for g in granularities
            if (a, p, g) in speedups
        )
        for p in protocols:
            for g in granularities:
                key = (a, p, g)
                if key in speedups:
                    out[key] = speedups[key] / best
    return out


def hm_table(
    speedups: SpeedupTable,
    apps: Sequence[str],
    protocols: Sequence[str],
    granularities: Sequence[int],
) -> Dict[str, Dict[str, float]]:
    """Compute the full Table 16/17 grid.

    Returns ``{protocol: {str(g): HM, ..., 'g_best': HM}}`` plus a
    ``'p_best'`` row ``{str(g): HM, 'g_best': HM}``.  Missing cells
    (the paper's disk-swapping gaps) are simply excluded per-app.
    """
    re = relative_efficiency(speedups, apps, protocols, granularities)

    table: Dict[str, Dict[str, float]] = {}
    for p in protocols:
        row: Dict[str, float] = {}
        for g in granularities:
            cells = [re[(a, p, g)] for a in apps if (a, p, g) in re]
            if cells:
                row[str(g)] = harmonic_mean(cells)
        # g_best: per application, the best granularity for this protocol
        best_cells = []
        for a in apps:
            per_g = [re[(a, p, g)] for g in granularities if (a, p, g) in re]
            if per_g:
                best_cells.append(max(per_g))
        row["g_best"] = harmonic_mean(best_cells)
        table[p] = row

    p_best_row: Dict[str, float] = {}
    for g in granularities:
        best_cells = []
        for a in apps:
            per_p = [re[(a, p, g)] for p in protocols if (a, p, g) in re]
            if per_p:
                best_cells.append(max(per_p))
        if best_cells:
            p_best_row[str(g)] = harmonic_mean(best_cells)
    # best protocol AND best granularity per app => RE = 1 by definition
    p_best_row["g_best"] = 1.0
    table["p_best"] = p_best_row
    return table


def best_version_speedups(
    speedups: SpeedupTable,
    version_groups: Mapping[str, Sequence[str]],
    protocols: Sequence[str],
    granularities: Sequence[int],
) -> Dict[Tuple[str, str, int], float]:
    """Collapse application versions for the Table 17 computation.

    ``version_groups`` maps a canonical application name (e.g.
    ``"barnes"``) to the list of version names present in *speedups*.
    For each (protocol, granularity) cell, the best version's speedup is
    taken, per the paper's redefinition of RE in Section 5.5.
    """
    out: Dict[Tuple[str, str, int], float] = {}
    for canon, versions in version_groups.items():
        for p in protocols:
            for g in granularities:
                cells = [
                    speedups[(v, p, g)] for v in versions if (v, p, g) in speedups
                ]
                if cells:
                    out[(canon, p, g)] = max(cells)
    return out
