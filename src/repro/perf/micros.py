"""Micro-workloads for the simulator-core performance suite.

Each micro is a zero-argument callable that performs a fixed,
fully deterministic amount of work and returns ``(counts, sha)``:

* ``counts`` -- work units performed (``{"events": N}`` or
  ``{"ops": N}``), from which the harness derives throughput
  (events/sec, ops/sec, runs/sec) using the *median* wall time;
* ``sha`` -- a short digest of the workload's observable result for
  determinism checking, or ``None`` for pure-throughput micros.

The suite covers the four hot layers of the simulator:

* ``engine_churn`` -- the event loop alone: heap-lane scheduling,
  the zero-delay FIFO fast lane, and lazily-skipped cancellations;
* ``engine_policy`` -- the same workload through the policy-driven
  dispatch loop (``repro.mc``'s per-schedule cost);
* ``vc_merge`` -- vector-clock merge/dominates, the per-grant cost
  of the LRC protocols;
* ``diff_roundtrip`` -- twin/diff create+apply over the three block
  shapes that occur in practice (unchanged, one contiguous run,
  scattered runs);
* ``full_cell_{sc,swlrc,hlrc}`` -- one tiny LU cell end to end per
  protocol: the number every other table in the repo is built from.

Determinism is part of the contract: the full-cell micros hash their
final stats, and the harness refuses to report timings whose reps
disagree on the hash.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, Optional, Tuple

#: counts returned by a micro, e.g. {"events": 40000}
Counts = Dict[str, int]
MicroFn = Callable[[], Tuple[Counts, Optional[str]]]

#: full-cell configuration (one tiny LU cell, the PR-2 smoke shape)
FULL_CELL_APP = "lu"
FULL_CELL_GRANULARITY = 1024
FULL_CELL_NPROCS = 16
FULL_CELL_SCALE = "tiny"


# ----------------------------------------------------------------------
# engine churn
# ----------------------------------------------------------------------
def engine_churn(n_events: int = 40_000, chains: int = 16) -> Tuple[Counts, None]:
    """Pure event-loop throughput: no protocol, no numpy.

    ``chains`` self-rescheduling callbacks hop through simulated time
    with a cheap multiplicative hash choosing, per hop, between the
    zero-delay FIFO lane, a positive-delay heap push, and occasionally
    an extra schedule+cancel pair (exercising the lazy cancelled-entry
    skip).  Everything is derived from the (chain, step) pair, so the
    event sequence is bit-identical across runs.
    """
    from repro.sim.engine import Engine

    eng = Engine()
    budget = [n_events]

    def sink() -> None:
        pass

    def hop(chain: int, step: int) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        r = (chain * 2654435761 + step * 40503) & 0xFFFF
        if r % 4 == 0:
            eng.post(0.0, hop, chain, step + 1)
        else:
            eng.post((r % 97) / 8.0, hop, chain, step + 1)
        if r % 7 == 0:
            ev = eng.schedule((r % 13) / 4.0 + 0.5, sink)
            if r % 14 == 0:
                ev.cancel()

    for c in range(chains):
        eng.post(float(c), hop, c, 0)
    eng.run()
    return {"events": eng.events_run}, None


# ----------------------------------------------------------------------
# policy-driven dispatch (the repro.mc loop)
# ----------------------------------------------------------------------
def engine_policy(n_events: int = 8_000, chains: int = 16) -> Tuple[Counts, None]:
    """The controllable-scheduler dispatch path under ``DefaultPolicy``.

    Same deterministic hop workload as ``engine_churn`` but run through
    ``_run_policy``: every dispatch snapshots and sorts the ready set,
    removes the chosen entry from its lane, and notifies the policy.
    That is the loop every ``repro.mc`` exploration schedule pays per
    event, so regressions here multiply by the schedule count.  Fewer
    events than ``engine_churn``: the path is O(pending) per dispatch
    by design.
    """
    from repro.sim.engine import DefaultPolicy, Engine

    eng = Engine()
    eng.set_policy(DefaultPolicy())
    budget = [n_events]

    def sink() -> None:
        pass

    def hop(chain: int, step: int) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        r = (chain * 2654435761 + step * 40503) & 0xFFFF
        if r % 4 == 0:
            eng.post(0.0, hop, chain, step + 1)
        else:
            eng.post((r % 97) / 8.0, hop, chain, step + 1)
        if r % 7 == 0:
            ev = eng.schedule((r % 13) / 4.0 + 0.5, sink)
            if r % 14 == 0:
                ev.cancel()

    for c in range(chains):
        eng.post(float(c), hop, c, 0)
    eng.run()
    return {"events": eng.events_run}, None


# ----------------------------------------------------------------------
# vector clocks
# ----------------------------------------------------------------------
def vc_merge(n_nodes: int = 32, iterations: int = 20_000) -> Tuple[Counts, None]:
    """Vector-clock merge + dominance over a pool of seeded clocks."""
    from repro.core.timestamps import VectorClock

    pool = [VectorClock(n_nodes) for _ in range(8)]
    for i, c in enumerate(pool):
        for j in range(n_nodes):
            c.v[j] = (i * 37 + j * 11) % 50
    dominated = 0
    for k in range(iterations):
        a = pool[k % 8]
        b = pool[(k * 5 + 3) % 8]
        a.merge(b.v)
        if a.dominates(b.v):
            dominated += 1
        a.tick(k % n_nodes)
    # one merge + one dominates per iteration
    return {"ops": iterations * 2, "dominated": dominated}, None


# ----------------------------------------------------------------------
# twin/diff
# ----------------------------------------------------------------------
def diff_roundtrip(block_bytes: int = 4096, reps: int = 300) -> Tuple[Counts, None]:
    """create_diff + apply_diff over the three real-world block shapes."""
    from repro.core.diff import apply_diff, create_diff
    from repro.simcore import alloc_block, frombytes

    base = bytearray(i % 251 for i in range(block_bytes))
    twin = frombytes(base)
    identical = frombytes(base)
    sweep_b = bytearray(base)
    for i in range(64, min(1600, block_bytes)):
        sweep_b[i] += 1
    sweep = frombytes(sweep_b)
    scattered_b = bytearray(base)
    for i in range(0, block_bytes, 17):
        scattered_b[i] += 3
    scattered = frombytes(scattered_b)
    target = alloc_block(block_bytes)
    ops = 0
    for _ in range(reps):
        for dirty in (identical, sweep, scattered):
            d = create_diff(7, dirty, twin)
            apply_diff(target, d)
            ops += 1
    return {"ops": ops}, None


# ----------------------------------------------------------------------
# full cells
# ----------------------------------------------------------------------
def _stats_sha(result) -> str:
    blob = json.dumps(result.stats.to_dict(), sort_keys=True, default=float)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def full_cell(protocol: str) -> Tuple[Counts, str]:
    """One tiny LU cell end to end under ``protocol``."""
    from repro.harness.experiment import RunConfig, run_experiment

    cfg = RunConfig(
        app=FULL_CELL_APP,
        protocol=protocol,
        granularity=FULL_CELL_GRANULARITY,
        nprocs=FULL_CELL_NPROCS,
        scale=FULL_CELL_SCALE,
    )
    result = run_experiment(cfg)
    counts: Counts = {"runs": 1, "events": result.machine.engine.events_run}
    return counts, _stats_sha(result)


def full_cell_sc() -> Tuple[Counts, str]:
    return full_cell("sc")


def full_cell_swlrc() -> Tuple[Counts, str]:
    return full_cell("swlrc")


def full_cell_hlrc() -> Tuple[Counts, str]:
    return full_cell("hlrc")


#: Per-micro measurement overrides, applied on top of the suite-wide
#: reps/warmup by :func:`repro.perf.gate.run_suite`.  ``engine_churn``
#: is the one noisy micro: its first runs still pay allocator and
#: code-object warmup (the committed baseline shows 33-56 ms spread),
#: so it gets a longer warmup and a rep floor that keeps the median
#: robust against scheduler interference on shared CI runners.
MICRO_TUNING: Dict[str, Dict[str, int]] = {
    "engine_churn": {"warmup": 3, "min_reps": 9},
}

#: the suite, in run order
MICROS: Dict[str, MicroFn] = {
    "engine_churn": engine_churn,
    "engine_policy": engine_policy,
    "vc_merge": vc_merge,
    "diff_roundtrip": diff_roundtrip,
    "full_cell_sc": full_cell_sc,
    "full_cell_swlrc": full_cell_swlrc,
    "full_cell_hlrc": full_cell_hlrc,
}


def calibration_spin(n: int = 400_000) -> int:
    """A pure-Python interpreter-speed probe.

    The gate normalizes baseline medians by the ratio of calibration
    times, so a baseline recorded on a fast machine does not flag a
    slower CI runner (or vice versa) as a regression.  The loop touches
    only arithmetic and list indexing -- the same mix the simulator's
    hot loops are made of.
    """
    acc = 0
    buf = [0] * 64
    for i in range(n):
        acc = (acc + i * 2654435761) & 0xFFFFFFFF
        buf[i & 63] = acc
    return acc
