"""Tracked performance suite for the simulator core.

The micros (:mod:`repro.perf.micros`) measure the layers every result
table depends on -- the event loop, vector clocks, twin/diff, and one
tiny full LU cell per protocol.  The gate (:mod:`repro.perf.gate`)
compares a fresh run against the committed ``BENCH_simcore.json``
baseline, normalized by an interpreter-speed calibration so CI runners
of different speeds share one baseline.

Entry points::

    repro-dsm perf                      # measure and print
    repro-dsm perf --against BENCH_simcore.json   # gate (exit 2 on fail)
    repro-dsm perf --against BENCH_simcore.json --update  # re-baseline

See docs/PERFORMANCE.md for how to update the baseline honestly.
"""

from repro.perf.gate import (
    BASELINE_NAME,
    DEFAULT_TOLERANCE,
    SCHEMA_VERSION,
    GateReport,
    GateRow,
    MicroResult,
    PerfError,
    SuiteResult,
    compare,
    format_suite,
    load_baseline,
    measure_calibration,
    run_suite,
    save_baseline,
    subsystem_shares,
)
from repro.perf.micros import MICROS, calibration_spin

__all__ = [
    "BASELINE_NAME",
    "DEFAULT_TOLERANCE",
    "SCHEMA_VERSION",
    "MICROS",
    "GateReport",
    "GateRow",
    "MicroResult",
    "PerfError",
    "SuiteResult",
    "calibration_spin",
    "compare",
    "format_suite",
    "load_baseline",
    "measure_calibration",
    "run_suite",
    "save_baseline",
    "subsystem_shares",
]
