"""Run the perf suite, persist baselines, and gate regressions.

``run_suite`` times every micro in :data:`repro.perf.micros.MICROS`
(median + MAD over N reps after a warmup), derives throughputs, and
profiles one full cell to attribute wall time to subsystems.  The
result serializes to the ``BENCH_simcore.json`` schema:

.. code-block:: json

    {
      "schema": 1,
      "pyversion": "3.11.9",
      "reps": 5,
      "calibration": {"spin_ms": 21.4},
      "micros": {
        "engine_churn": {"median_ms": 55.1, "mad_ms": 0.4,
                         "times_ms": [...], "events_per_sec": 911000,
                         "stats_sha": null},
        "full_cell_hlrc": {"median_ms": 9.8, "...": "...",
                           "runs_per_sec": 102.0,
                           "stats_sha": "1f0c0a..."}
      },
      "subsystem_shares": {"engine": 0.24, "protocol": 0.31, "...": 0}
    }

``compare`` is the regression gate: per micro, the baseline median is
scaled by the ratio of *calibration* times (so a slower machine is not
a regression) and the current median must stay within ``tolerance``
(default 15%) of that expectation.  Differing ``stats_sha`` values are
reported as determinism failures regardless of timing.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.perf.micros import MICRO_TUNING, MICROS, MicroFn, calibration_spin

SCHEMA_VERSION = 1

#: default gate tolerance: >15% calibrated median slowdown fails
DEFAULT_TOLERANCE = 0.15

#: repo-root baseline file name
BASELINE_NAME = "BENCH_simcore.json"


class PerfError(RuntimeError):
    """A micro misbehaved (non-deterministic reps, unknown name...)."""


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
@dataclass
class MicroResult:
    name: str
    times_ms: List[float]
    counts: Dict[str, int]
    stats_sha: Optional[str]

    @property
    def median_ms(self) -> float:
        return statistics.median(self.times_ms)

    @property
    def mad_ms(self) -> float:
        med = self.median_ms
        return statistics.median(abs(t - med) for t in self.times_ms)

    def throughputs(self) -> Dict[str, float]:
        """events/sec, ops/sec, runs/sec -- whatever the counts allow."""
        out: Dict[str, float] = {}
        sec = self.median_ms / 1000.0
        for unit in ("events", "ops", "runs"):
            n = self.counts.get(unit)
            if n and sec > 0:
                out[f"{unit}_per_sec"] = n / sec
        return out

    def to_dict(self) -> Dict:
        d: Dict = {
            "median_ms": round(self.median_ms, 4),
            "mad_ms": round(self.mad_ms, 4),
            "times_ms": [round(t, 4) for t in self.times_ms],
            "stats_sha": self.stats_sha,
        }
        for k, v in sorted(self.throughputs().items()):
            d[k] = round(v, 2)
        return d


@dataclass
class SuiteResult:
    reps: int
    calibration_ms: float
    micros: Dict[str, MicroResult]
    subsystem_shares: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "schema": SCHEMA_VERSION,
            "pyversion": platform.python_version(),
            "reps": self.reps,
            "calibration": {"spin_ms": round(self.calibration_ms, 4)},
            "micros": {n: m.to_dict() for n, m in self.micros.items()},
            "subsystem_shares": {
                k: round(v, 4) for k, v in self.subsystem_shares.items()
            },
        }


def _time_once(fn: MicroFn):
    t0 = time.perf_counter()
    counts, sha = fn()
    return (time.perf_counter() - t0) * 1000.0, counts, sha


def _measure(name: str, fn: MicroFn, reps: int, warmup: int) -> MicroResult:
    for _ in range(warmup):
        fn()
    times: List[float] = []
    shas = set()
    counts: Dict[str, int] = {}
    for _ in range(reps):
        ms, counts, sha = _time_once(fn)
        times.append(ms)
        shas.add(sha)
    if len(shas) != 1:
        raise PerfError(
            f"micro {name!r} is non-deterministic: reps produced "
            f"{len(shas)} distinct result hashes {sorted(map(str, shas))}"
        )
    return MicroResult(name=name, times_ms=times, counts=counts,
                       stats_sha=shas.pop())


def measure_calibration(reps: int = 3) -> float:
    """Median wall time of the interpreter-speed probe, in ms."""
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        calibration_spin()
        times.append((time.perf_counter() - t0) * 1000.0)
    return statistics.median(times)


# ----------------------------------------------------------------------
# subsystem attribution
# ----------------------------------------------------------------------
_SUBSYSTEM_PREFIXES = (
    ("repro/sim/", "engine"),
    ("repro/core/", "protocol"),
    ("repro/net/", "network"),
    ("repro/runtime/", "runtime"),
    ("repro/cluster/", "runtime"),
    ("repro/memory/", "runtime"),
    ("repro/sync/", "runtime"),
    ("repro/apps/", "apps"),
)


def _classify(filename: str) -> str:
    path = filename.replace("\\", "/")
    for prefix, subsystem in _SUBSYSTEM_PREFIXES:
        if prefix in path:
            return subsystem
    return "other"


def subsystem_shares(workload=None) -> Dict[str, float]:
    """Fraction of self-time per subsystem for one profiled full cell."""
    import cProfile
    import pstats

    from repro.perf.micros import full_cell_swlrc

    workload = workload or full_cell_swlrc
    prof = cProfile.Profile()
    prof.enable()
    workload()
    prof.disable()
    totals: Dict[str, float] = {}
    for func, (_cc, _nc, tottime, _ct, _callers) in pstats.Stats(
        prof
    ).stats.items():
        totals[_classify(func[0])] = totals.get(_classify(func[0]), 0.0) + tottime
    grand = sum(totals.values()) or 1.0
    shares = {k: v / grand for k, v in totals.items()}
    for key in ("engine", "protocol", "network", "runtime", "apps", "other"):
        shares.setdefault(key, 0.0)
    return shares


# ----------------------------------------------------------------------
# suite
# ----------------------------------------------------------------------
def run_suite(
    reps: int = 5,
    warmup: int = 1,
    micros: Optional[List[str]] = None,
    shares: bool = True,
) -> SuiteResult:
    """Measure the (selected) micros and return a :class:`SuiteResult`."""
    selected = list(MICROS) if micros is None else list(micros)
    unknown = [n for n in selected if n not in MICROS]
    if unknown:
        raise PerfError(f"unknown micro(s): {', '.join(unknown)}")
    cal = measure_calibration()
    results = {}
    for n in selected:
        tune = MICRO_TUNING.get(n, {})
        results[n] = _measure(
            n,
            MICROS[n],
            max(reps, tune.get("min_reps", 0)),
            max(warmup, tune.get("warmup", 0)),
        )
    return SuiteResult(
        reps=reps,
        calibration_ms=cal,
        micros=results,
        subsystem_shares=subsystem_shares() if shares else {},
    )


# ----------------------------------------------------------------------
# baseline IO
# ----------------------------------------------------------------------
def save_baseline(result: SuiteResult, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(result.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> Dict:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA_VERSION:
        raise PerfError(
            f"baseline {path} has schema {data.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return data


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
@dataclass
class GateRow:
    micro: str
    baseline_ms: float
    expected_ms: float     # baseline scaled by the calibration ratio
    current_ms: float
    ratio: float           # current / expected; > 1 + tolerance fails
    regressed: bool
    determinism_broken: bool = False


@dataclass
class GateReport:
    tolerance: float
    scale: float           # current calibration / baseline calibration
    rows: List[GateRow]

    @property
    def regressions(self) -> List[GateRow]:
        return [r for r in self.rows if r.regressed or r.determinism_broken]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines = [
            f"perf gate: tolerance {self.tolerance:.0%}, "
            f"machine-speed scale {self.scale:.3f}"
        ]
        for r in self.rows:
            verdict = "ok"
            if r.determinism_broken:
                verdict = "DETERMINISM"
            elif r.regressed:
                verdict = "REGRESSED"
            lines.append(
                f"  {verdict:11s} {r.micro:18s} "
                f"base {r.baseline_ms:8.2f} ms  "
                f"expect <= {r.expected_ms * (1 + self.tolerance):8.2f} ms  "
                f"got {r.current_ms:8.2f} ms  (x{r.ratio:.3f})"
            )
        lines.append(
            "gate PASSED" if self.ok
            else f"gate FAILED: {len(self.regressions)} micro(s) out of bounds"
        )
        return "\n".join(lines)


def compare(
    current: Dict, baseline: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> GateReport:
    """Gate ``current`` suite output against a ``baseline`` dict.

    Both arguments use the serialized schema (pass
    ``SuiteResult.to_dict()`` for a fresh run).  Micros present in only
    one of the two are skipped: adding a micro must not fail old
    baselines, and retiring one must not require lockstep updates.
    """
    cal_base = baseline.get("calibration", {}).get("spin_ms") or 1.0
    cal_cur = current.get("calibration", {}).get("spin_ms") or cal_base
    scale = cal_cur / cal_base
    rows: List[GateRow] = []
    base_micros = baseline.get("micros", {})
    cur_micros = current.get("micros", {})
    for name in base_micros:
        if name not in cur_micros:
            continue
        b, c = base_micros[name], cur_micros[name]
        expected = b["median_ms"] * scale
        ratio = c["median_ms"] / expected if expected > 0 else float("inf")
        sha_b, sha_c = b.get("stats_sha"), c.get("stats_sha")
        rows.append(
            GateRow(
                micro=name,
                baseline_ms=b["median_ms"],
                expected_ms=expected,
                current_ms=c["median_ms"],
                ratio=ratio,
                regressed=ratio > 1.0 + tolerance,
                determinism_broken=(
                    sha_b is not None and sha_c is not None and sha_b != sha_c
                ),
            )
        )
    return GateReport(tolerance=tolerance, scale=scale, rows=rows)


def format_suite(result: SuiteResult) -> str:
    """Human-readable table of one suite run."""
    lines = [
        f"simulator-core perf suite: {result.reps} reps, "
        f"calibration spin {result.calibration_ms:.2f} ms",
        f"  {'micro':18s} {'median':>10s} {'MAD':>8s}  throughput",
    ]
    for name, m in result.micros.items():
        tps = m.throughputs()
        tp = "  ".join(
            f"{v:,.0f} {k.replace('_per_sec', '')}/s" for k, v in sorted(tps.items())
        )
        lines.append(
            f"  {name:18s} {m.median_ms:8.2f}ms {m.mad_ms:6.2f}ms  {tp}"
        )
    if result.subsystem_shares:
        shares = "  ".join(
            f"{k} {v:.0%}"
            for k, v in sorted(
                result.subsystem_shares.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"  subsystem self-time shares: {shares}")
    return "\n".join(lines)
