"""Dense per-node access-tag arrays (shared core of both backends).

One flat byte per coherence block, indexed by block id: 0 = INVALID,
1 = READ-ONLY, 2 = READ-WRITE.  The table grows geometrically on first
touch of a high block id and never shrinks.  Alongside the dense array
a plain ``set`` of readable block ids is maintained so the region hot
path keeps its one-C-call membership test (``set.__contains__``), while
bulk sweeps (checker audits, ``blocks_with_access``) run over the flat
array -- vectorized in the fast backend, scanned in the fallback.

Iteration order over tagged blocks is ascending block id in *both*
backends (part of the bit-identity contract).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

#: access tags, ordered by permission (mirrors repro.memory.access_control)
_INV, _RO, _RW = 0, 1, 2


class TagArrayBase:
    """Flat block-tag table; subclassed per backend for bulk scans."""

    __slots__ = ("_tags", "_readable", "permits_read")

    #: backend bulk kernel: indices of non-zero bytes, ascending
    _nonzero: Callable[[bytearray], List[int]]

    def __init__(self, capacity: int = 0) -> None:
        self._tags = bytearray(capacity)
        self._readable: set = set()
        #: bound fast path: a block permits reads iff it has any tag
        self.permits_read = self._readable.__contains__

    # ------------------------------------------------------------------
    # single-block operations (the hot path)
    # ------------------------------------------------------------------
    def tag(self, block: int) -> int:
        t = self._tags
        return t[block] if 0 <= block < len(t) else _INV

    def permits(self, block: int, write: bool) -> bool:
        """Does the current tag allow the access (no fault)?"""
        t = self._tags
        tg = t[block] if 0 <= block < len(t) else _INV
        return tg == _RW or (tg == _RO and not write)

    def set_tag(self, block: int, tag: int) -> None:
        if tag not in (_INV, _RO, _RW):
            raise ValueError(f"bad tag {tag}")
        t = self._tags
        if not 0 <= block < len(t):
            if tag == _INV:
                return
            self._grow(block)
            t = self._tags
        t[block] = tag
        if tag == _INV:
            self._readable.discard(block)
        else:
            self._readable.add(block)

    def invalidate(self, block: int) -> bool:
        """Drop to INVALID.  Returns True if the block had any access."""
        t = self._tags
        if 0 <= block < len(t) and t[block]:
            t[block] = _INV
            self._readable.discard(block)
            return True
        return False

    def downgrade(self, block: int) -> bool:
        """RW -> RO.  Returns True if the block was RW."""
        t = self._tags
        if 0 <= block < len(t) and t[block] == _RW:
            t[block] = _RO
            return True
        return False

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------
    def blocks_with_access(self) -> Iterator[Tuple[int, int]]:
        """All (block, tag) pairs with non-INVALID tags, ascending."""
        t = self._tags
        return ((b, t[b]) for b in self._nonzero(t))

    def __len__(self) -> int:
        return len(self._readable)

    @property
    def capacity(self) -> int:
        """Current dense-array extent (diagnostics/tests)."""
        return len(self._tags)

    def _grow(self, block: int) -> None:
        cap = max(len(self._tags), 64)
        while cap <= block:
            cap <<= 1
        self._tags.extend(bytes(cap - len(self._tags)))
