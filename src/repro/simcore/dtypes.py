"""Backend-neutral element-type descriptors.

The runtime's typed shared arrays describe their element type with a
:class:`DType` instead of a ``numpy.dtype`` so the pure-python backend
can serve the same API through ``memoryview.cast``/``struct``.  The
:func:`dtype` constructor accepts everything callers historically
passed: numpy dtypes and scalar types (when numpy is installed), the
python builtins ``float``/``int``, and string names in either numpy
(``"float64"``/``"f8"``) or struct (``"d"``) spelling.
"""

from __future__ import annotations

from typing import Any

#: canonical name -> (struct/memoryview format code, itemsize)
_TABLE = {
    "float64": ("d", 8),
    "float32": ("f", 4),
    "int64": ("q", 8),
    "uint64": ("Q", 8),
    "int32": ("i", 4),
    "uint32": ("I", 4),
    "int16": ("h", 2),
    "uint16": ("H", 2),
    "int8": ("b", 1),
    "uint8": ("B", 1),
}

_ALIASES = {
    "f8": "float64",
    "f4": "float32",
    "i8": "int64",
    "u8": "uint64",
    "i4": "int32",
    "u4": "uint32",
    "i2": "int16",
    "u2": "uint16",
    "i1": "int8",
    "u1": "uint8",
    "float": "float64",
    "int": "int64",
}
# struct codes name themselves too ("d" -> float64)
_ALIASES.update({code: name for name, (code, _) in _TABLE.items()})


class DType:
    """One element type: a struct format code plus its byte width."""

    __slots__ = ("name", "code", "itemsize")

    def __init__(self, name: str, code: str, itemsize: int):
        self.name = name
        self.code = code
        self.itemsize = itemsize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DType({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


_CACHE: dict = {name: DType(name, code, size) for name, (code, size) in _TABLE.items()}


def dtype(spec: Any) -> DType:
    """Resolve a dtype spec (numpy dtype/type, python type, or name)."""
    if isinstance(spec, DType):
        return spec
    if spec is float:
        return _CACHE["float64"]
    if spec is int:
        return _CACHE["int64"]
    if isinstance(spec, str):
        key = spec
    else:
        # numpy dtypes have .name ("float64"); numpy scalar types have
        # __name__ ("float64"); anything else falls through to str().
        key = getattr(spec, "name", None) or getattr(spec, "__name__", None) or str(spec)
    key = _ALIASES.get(key, key)
    dt = _CACHE.get(key)
    if dt is None:
        raise TypeError(f"unsupported simcore dtype {spec!r}")
    return dt
